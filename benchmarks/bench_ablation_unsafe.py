"""Ablation: what happens without WritersBlock (or squashing)?

Runs the paper's Table 1 race across a timing grid in all four commit
modes.  The protected modes never violate TSO; the OOO_UNSAFE ablation
does — which simultaneously demonstrates (i) the race is real in this
simulator, and (ii) the axiomatic checker that certifies the other
results has teeth.  Driver: ``repro.exp.drivers.ablation_unsafe_driver``.
"""

from repro.exp.drivers import ablation_unsafe_driver

from .conftest import worker_count


def bench_ablation_unsafe_commit(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(ablation_unsafe_driver,
                                args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds
                 if report.engine_run else 0.0, worker_count())
    violations = {r["mode"]: r["checker_violations"] for r in report.rows}
    for mode in ("in-order", "ooo", "ooo-wb"):
        assert violations[mode] == 0, (mode, violations)
    assert violations["ooo-unsafe"] > 0, violations
