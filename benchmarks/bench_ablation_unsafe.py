"""Ablation: what happens without WritersBlock (or squashing)?

Runs the paper's Table 1 race across a timing grid in all four commit
modes.  The protected modes never violate TSO; the OOO_UNSAFE ablation
does — which simultaneously demonstrates (i) the race is real in this
simulator, and (ii) the axiomatic checker that certifies the other
results has teeth.
"""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.litmus import run_litmus, table1_test

DELAY_GRID = [(d0, d1) for d0 in (0, 20, 40) for d1 in (0, 30, 60, 90)]


def run_ablation():
    test = table1_test()
    lines = []
    violation_counts = {}
    for mode in (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB,
                 CommitMode.OOO_UNSAFE):
        params = table6_system("SLM", num_cores=4, commit_mode=mode)
        violations = 0
        forbidden = 0
        for delays in DELAY_GRID:
            outcome = run_litmus(test, params, extra_delays=delays)
            violations += outcome.checker_violation is not None
            forbidden += outcome.forbidden_hit
        violation_counts[mode] = violations
        lines.append(f"{mode.value:10s} forbidden={forbidden:2d}/"
                     f"{len(DELAY_GRID)} checker_violations={violations:2d}")
    for mode in (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB):
        assert violation_counts[mode] == 0, mode
    assert violation_counts[CommitMode.OOO_UNSAFE] > 0
    return "\n".join(lines)


def bench_ablation_unsafe_commit(benchmark, report):
    text = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_unsafe", text)
