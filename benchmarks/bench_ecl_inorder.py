"""Use case beyond OoO commit (paper §1): in-order cores with ECL.

The paper motivates non-speculative load-load reordering for stall-on-use
in-order cores (DEC Alpha EV5-style Early Commit of Loads) that have *no*
squash capability.  Without WritersBlock such a core must serialize load
binding ("wait for it"); with it, loads bind and retire out of order.
This benchmark quantifies that gap on the workload suite.
"""

import dataclasses

from repro.analysis.experiments import make_workload
from repro.analysis.tables import format_table, geometric_mean
from repro.common.params import table6_system
from repro.sim.runner import run_workload

from .conftest import core_count, workload_scale

BENCHES = ("fft", "barnes", "freqmine", "streamcluster", "swaptions")


def run_comparison():
    rows = []
    speedups = []
    for bench in BENCHES:
        cycles = {}
        for core_type, wb in (("inorder", False), ("inorder-ecl", True)):
            params = table6_system("SLM", num_cores=core_count())
            params = dataclasses.replace(params, core_type=core_type,
                                         writers_block=wb)
            result = run_workload(
                make_workload(bench, core_count(), workload_scale()), params)
            cycles[core_type] = result.cycles
        speedup = cycles["inorder"] / cycles["inorder-ecl"]
        speedups.append(speedup)
        rows.append((bench, cycles["inorder"], cycles["inorder-ecl"],
                     speedup))
    table = format_table(
        ["workload", "blocking in-order", "ECL + WritersBlock", "speedup"],
        rows, title="§1 use case: Early Commit of Loads on in-order cores")
    # ECL must be a clear win — the whole point of irrevocable binding.
    assert geometric_mean(speedups) > 1.2, speedups
    return table


def bench_ecl_inorder_cores(benchmark, report):
    text = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report("ecl_inorder", text)
