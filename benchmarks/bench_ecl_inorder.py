"""Use case beyond OoO commit (paper §1): in-order cores with ECL.

The paper motivates non-speculative load-load reordering for stall-on-use
in-order cores (DEC Alpha EV5-style Early Commit of Loads) that have *no*
squash capability.  Without WritersBlock such a core must serialize load
binding ("wait for it"); with it, loads bind and retire out of order.
This benchmark quantifies that gap on the workload suite (driver:
``repro.exp.drivers.ecl_inorder_driver``).
"""

from repro.analysis.tables import geometric_mean
from repro.exp.drivers import ecl_inorder_driver

from .conftest import worker_count


def bench_ecl_inorder_cores(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(ecl_inorder_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # ECL must be a clear win — the whole point of irrevocable binding.
    speedups = [r["speedup"] for r in report.rows]
    assert geometric_mean(speedups) > 1.2, speedups
