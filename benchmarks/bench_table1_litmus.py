"""Tables 1 and 3 (plus the classic TSO litmus suite) on the simulator.

Regenerates the paper's forbidden-outcome claims: under every protected
commit mode (in-order, safe OoO, OoO+WritersBlock) the forbidden
register outcomes never appear and the axiomatic checker stays clean —
across a grid of timing offsets.  Driver:
``repro.exp.drivers.table1_driver``.
"""

from repro.exp.drivers import table1_driver

from .conftest import worker_count


def bench_table1_litmus_suite(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(table1_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds
                 if report.engine_run else 0.0, worker_count())
    assert report.rows, "litmus suite produced no rows"
    for row in report.rows:
        assert row["forbidden"] == 0, row
        assert row["checker_violations"] == 0, row
