"""Tables 1 and 3 (plus the classic TSO litmus suite) on the simulator.

Regenerates the paper's forbidden-outcome claims: under every protected
commit mode (in-order, safe OoO, OoO+WritersBlock) the forbidden
register outcomes never appear and the axiomatic checker stays clean —
across a grid of timing offsets.
"""

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.litmus import standard_suite, sweep_litmus

from .conftest import write_report

MODES = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB)
DELAYS = ((0, 0), (0, 40), (40, 0), (0, 80), (20, 60))


def run_suite():
    lines = []
    for test in standard_suite():
        cores = 16 if len(test.threads) > 4 else 4
        for mode in MODES:
            params = table6_system("SLM", num_cores=cores, commit_mode=mode)
            outcomes = sweep_litmus(test, params, delays=DELAYS)
            assert not any(o.forbidden_hit for o in outcomes), test.name
            assert all(o.checker_violation is None for o in outcomes), test.name
            sample = outcomes[0].registers
            lines.append(f"{test.name:24s} {mode.value:9s} "
                         f"clean over {len(outcomes)} timings; "
                         f"e.g. {sample}")
    return "\n".join(lines)


def bench_table1_litmus_suite(benchmark, report):
    text = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    report("table1_table3_litmus", text)
