"""Ablation (modelling choice): link contention in the mesh.

DESIGN.md models per-link flit serialization (one flit per cycle per
directed link).  This ablation quantifies how much that choice matters
versus a contention-free mesh, for both the base protocol and
WritersBlock — confirming WritersBlock's overhead conclusion does not
hinge on the contention model.  Driver:
``repro.exp.drivers.ablation_network_driver``.
"""

from repro.analysis.tables import geometric_mean
from repro.exp.drivers import ablation_network_driver

from .conftest import worker_count


def bench_ablation_network_contention(benchmark, config, engine,
                                      bench_report):
    report = benchmark.pedantic(ablation_network_driver,
                                args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # The WB-vs-OoO conclusion must agree across contention models.
    contended = geometric_mean([r["wb_over_ooo_contended"]
                                for r in report.rows])
    free = geometric_mean([r["wb_over_ooo_free"] for r in report.rows])
    assert abs(contended - free) < 0.05, (contended, free)
