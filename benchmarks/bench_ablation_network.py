"""Ablation (modelling choice): link contention in the mesh.

DESIGN.md models per-link flit serialization (one flit per cycle per
directed link).  This ablation quantifies how much that choice matters
versus a contention-free mesh, for both the base protocol and
WritersBlock — confirming WritersBlock's overhead conclusion does not
hinge on the contention model.
"""

import dataclasses

from repro.analysis.experiments import make_workload
from repro.analysis.tables import format_table, geometric_mean
from repro.common.params import NetworkParams, table6_system
from repro.common.types import CommitMode
from repro.sim.runner import run_workload

from .conftest import core_count, workload_scale

BENCHES = ("fft", "streamcluster", "radix")


def run_sweep():
    rows = []
    ratios = []
    for bench in BENCHES:
        cycles = {}
        for contention in (True, False):
            for wb in (False, True):
                params = table6_system(
                    "SLM", num_cores=core_count(),
                    commit_mode=CommitMode.OOO_WB if wb else CommitMode.OOO)
                params = dataclasses.replace(
                    params,
                    network=NetworkParams(model_contention=contention))
                result = run_workload(
                    make_workload(bench, core_count(), workload_scale()),
                    params)
                cycles[(contention, wb)] = result.cycles
        slowdown = cycles[(True, True)] / cycles[(False, True)]
        wb_effect_contended = cycles[(True, True)] / cycles[(True, False)]
        wb_effect_free = cycles[(False, True)] / cycles[(False, False)]
        ratios.append((wb_effect_contended, wb_effect_free))
        rows.append((bench, slowdown, wb_effect_contended, wb_effect_free))
    table = format_table(
        ["workload", "contention slowdown",
         "WB/OoO (contended)", "WB/OoO (contention-free)"],
        rows, title="Ablation: mesh link-contention model")
    # The WB-vs-OoO conclusion must agree across contention models.
    contended = geometric_mean([a for a, __ in ratios])
    free = geometric_mean([b for __, b in ratios])
    assert abs(contended - free) < 0.05, (contended, free)
    return table


def bench_ablation_network_contention(benchmark, report):
    text = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("ablation_network", text)
