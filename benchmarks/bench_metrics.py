"""Telemetry grid: sampled utilization metrics + mesh-scaling probe.

Runs the directed scenarios and the stratified litmus slice with the
``repro-metrics/1`` sampler attached and condenses every stream into
per-gauge occupancy/saturation rows, then probes throughput and
saturation at growing tile counts.  The scaling probe's events/sec
numbers are wall-clock and live only in ``BENCH_metrics.json`` — the
text table carries the deterministic columns.  Driver:
``repro.exp.drivers.metrics_driver``.
"""

from repro.exp.drivers import metrics_driver

from .conftest import worker_count


def bench_metrics_telemetry(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(metrics_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # Every sampled cell must have produced at least one sample, and
    # the probe must report host throughput per point.  The probe only
    # covers tile counts up to the configured core budget, so the quick
    # 4-core configuration gets a single point.
    assert all(row["samples"] >= 1 for row in report.rows)
    probe = report.totals["scale_probe"]
    assert len(probe) >= (2 if config.cores >= 8 else 1)
    assert all(point["events_per_sec"] > 0 for point in probe)
