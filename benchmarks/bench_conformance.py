"""TSO conformance corpus through the three-way differential checker.

Runs the committed herd-style litmus corpus (``tests/conformance/
corpus/``) against the simulator, the operational x86-TSO machine, and
the axiomatic enumerator — demanding sim ⊆ operational ⊆ axiomatic on
every test — then the POR-reduced exhaustive explorer over the 4-tile
``mp``/``sos`` protocol scenarios (deadlock freedom and
SoS-never-blocked on every reachable state).  Driver:
``repro.exp.drivers.conformance_driver``.
"""

from repro.exp.drivers import conformance_driver

from .conftest import worker_count


def bench_conformance(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(conformance_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds
                 if report.engine_run else 0.0, worker_count())
    assert report.rows, "conformance produced no rows"
    assert report.totals["violations"] == 0, report.totals
    assert report.totals["ok"], report.totals
    for row in report.rows:
        if "exploration" in row:
            assert row["ok"], row
        else:
            assert row["violations"] == 0, row
