"""Figure 9: WritersBlock protocol overhead with in-order commit.

Paper claims: enabling the WritersBlock protocol (without changing the
commit policy) has *imperceptible* execution-time and network-traffic
overhead versus the base directory protocol.
"""

from repro.analysis.experiments import fig9_overheads, fig9_table
from repro.analysis.tables import geometric_mean

from .conftest import core_count, selected_workloads, workload_scale


def bench_fig9_overheads(benchmark, report):
    rows = benchmark.pedantic(
        fig9_overheads,
        kwargs=dict(benches=selected_workloads(), num_cores=core_count(),
                    scale=workload_scale()),
        rounds=1, iterations=1,
    )
    report("fig9_overheads", fig9_table(rows))
    time_geo = geometric_mean([r.time_ratio for r in rows])
    traffic_geo = geometric_mean([r.traffic_ratio for r in rows])
    # "no perceptible difference": within a few percent on average.
    assert 0.95 < time_geo < 1.05, time_geo
    assert 0.95 < traffic_geo < 1.05, traffic_geo
