"""Figure 9: WritersBlock protocol overhead with in-order commit.

Paper claims: enabling the WritersBlock protocol (without changing the
commit policy) has *imperceptible* execution-time and network-traffic
overhead versus the base directory protocol.  Regenerated through the
experiment engine (``repro.exp``).
"""

from repro.analysis.tables import geometric_mean
from repro.exp.drivers import fig9_driver

from .conftest import worker_count


def bench_fig9_overheads(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(fig9_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    time_geo = geometric_mean([r["time_ratio"] for r in report.rows])
    traffic_geo = geometric_mean([r["traffic_ratio"] for r in report.rows])
    # "no perceptible difference": within a few percent on average.
    assert 0.95 < time_geo < 1.05, time_geo
    assert 0.95 < traffic_geo < 1.05, traffic_geo
