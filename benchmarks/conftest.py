"""Shared benchmark configuration.

The drivers themselves live in ``repro.exp.drivers`` (one
implementation serves ``pytest benchmarks/``, ``repro bench``, and CI);
these fixtures configure them and keep the historical environment
knobs:

``REPRO_BENCH_SCALE``   workload scale multiplier (default 2.0)
``REPRO_BENCH_CORES``   core count (default 16; must be a square)
``REPRO_BENCH_SET``     comma-separated workload names (default: the
                        representative subset in
                        ``repro.exp.bench.DEFAULT_BENCH_SET``)
``REPRO_BENCH_WORKERS`` engine worker processes (default 1 = serial)

Each figure benchmark writes its regenerated table to
``benchmarks/out/<name>.txt`` plus machine-readable
``BENCH_<name>.json``, so EXPERIMENTS.md can be refreshed from the
files.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.exp.bench import DEFAULT_BENCH_SET, bench_payload
from repro.exp.drivers import BenchConfig
from repro.exp.engine import ExperimentEngine

#: Backwards-compatible alias (pre-engine conftest exposed this name).
DEFAULT_SET = DEFAULT_BENCH_SET

OUT_DIR = pathlib.Path(__file__).parent / "out"


def workload_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "2.0"))


def core_count() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def worker_count() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def selected_workloads():
    names = os.environ.get("REPRO_BENCH_SET")
    if not names:
        return DEFAULT_SET
    if names.strip() == "all":
        from repro.workloads import ALL_WORKLOADS
        return tuple(sorted(ALL_WORKLOADS))
    return tuple(name.strip() for name in names.split(","))


def bench_config() -> BenchConfig:
    return BenchConfig(benches=selected_workloads(), cores=core_count(),
                       scale=workload_scale())


@pytest.fixture()
def engine():
    return ExperimentEngine(worker_count())


@pytest.fixture()
def config():
    return bench_config()


def write_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def write_bench_report(report, cfg, wall_seconds: float,
                       workers: int) -> None:
    """Persist a driver's text table and its BENCH_<name>.json."""
    write_report(report.txt_name, report.text)
    payload = bench_payload(report, cfg, wall_seconds, workers)
    (OUT_DIR / f"BENCH_{report.name}.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def report():
    return write_report


@pytest.fixture()
def bench_report():
    return write_bench_report
