"""Shared benchmark configuration.

Environment knobs (all optional):

``REPRO_BENCH_SCALE``   workload scale multiplier (default 1.0)
``REPRO_BENCH_CORES``   core count (default 16; must be a square)
``REPRO_BENCH_SET``     comma-separated workload names (default: the
                        representative subset below)

Each figure benchmark writes its regenerated table to
``benchmarks/out/<name>.txt`` in addition to stdout, so EXPERIMENTS.md
can be refreshed from the files.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Representative subset: covers every sharing-pattern family while
#: keeping the full `pytest benchmarks/` run to minutes.  Override with
#: REPRO_BENCH_SET=all for the complete suite.
DEFAULT_SET = (
    "fft", "lu_ncb", "ocean_ncp", "radix", "barnes",
    "bodytrack", "freqmine", "streamcluster", "swaptions",
)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def workload_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "2.0"))


def core_count() -> int:
    return int(os.environ.get("REPRO_BENCH_CORES", "16"))


def selected_workloads():
    names = os.environ.get("REPRO_BENCH_SET")
    if not names:
        return DEFAULT_SET
    if names.strip() == "all":
        from repro.workloads import ALL_WORKLOADS
        return tuple(sorted(ALL_WORKLOADS))
    return tuple(name.strip() for name in names.split(","))


def write_report(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def report():
    return write_report
