"""Ablation: Lockdown Table capacity (paper §4.2 picks 32 entries).

"A small number of lockdowns (e.g., 32) is kept in the LDT and in the
rare case we reach this limit, we stop committing M-speculative loads
out-of-order."  This ablation sweeps the LDT size and shows the paper's
choice is comfortably past the knee: a tiny LDT throttles OoO commit of
reordered loads, while 32 behaves like an unbounded table (driver:
``repro.exp.drivers.ablation_ldt_driver``).
"""

from repro.exp.drivers import LDT_BENCHES, ablation_ldt_driver

from .conftest import worker_count


def bench_ablation_ldt_capacity(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(ablation_ldt_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # 32 entries must perform within noise of an effectively unbounded
    # table (the paper's claim that 32 suffices).  The tolerance covers
    # deterministic-but-chaotic timing shifts: a different LDT size can
    # reorder lock acquisitions and shift barrier waits by a few percent.
    for bench in LDT_BENCHES:
        sized = {r["ldt_entries"]: r["cycles"] for r in report.rows
                 if r["workload"] == bench}
        assert sized[32] <= sized[128] * 1.06, (bench, sized)
