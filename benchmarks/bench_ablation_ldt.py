"""Ablation: Lockdown Table capacity (paper §4.2 picks 32 entries).

"A small number of lockdowns (e.g., 32) is kept in the LDT and in the
rare case we reach this limit, we stop committing M-speculative loads
out-of-order."  This ablation sweeps the LDT size and shows the paper's
choice is comfortably past the knee: a tiny LDT throttles OoO commit of
reordered loads, while 32 behaves like an unbounded table.
"""

import dataclasses

from repro.analysis.experiments import make_workload
from repro.analysis.tables import format_table
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.runner import run_workload

from .conftest import core_count, workload_scale

BENCHES = ("freqmine", "streamcluster")
LDT_SIZES = (1, 2, 8, 32, 128)


def run_sweep():
    rows = []
    for bench in BENCHES:
        cycles_by_size = {}
        exports_by_size = {}
        for size in LDT_SIZES:
            params = table6_system("SLM", num_cores=core_count(),
                                   commit_mode=CommitMode.OOO_WB)
            core = dataclasses.replace(params.core, ldt_entries=size)
            params = dataclasses.replace(params, core=core)
            result = run_workload(
                make_workload(bench, core_count(), workload_scale()), params)
            cycles_by_size[size] = result.cycles
            exports_by_size[size] = result.counter("core.ldt_exports")
        for size in LDT_SIZES:
            rows.append((bench, size, cycles_by_size[size],
                         exports_by_size[size],
                         cycles_by_size[size] / cycles_by_size[32]))
    table = format_table(
        ["workload", "LDT entries", "cycles", "lockdown exports",
         "time vs LDT=32"],
        rows, title="Ablation §4.2: LDT capacity sweep")
    # 32 entries must perform within noise of an effectively unbounded
    # table (the paper's claim that 32 suffices).  The tolerance covers
    # deterministic-but-chaotic timing shifts: a different LDT size can
    # reorder lock acquisitions and shift barrier waits by a few percent.
    for bench in BENCHES:
        sized = {r[1]: r[2] for r in rows if r[0] == bench}
        assert sized[32] <= sized[128] * 1.06, (bench, sized)
    return table


def bench_ablation_ldt_capacity(benchmark, report):
    text = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("ablation_ldt", text)
