"""Table 6: the simulated system configuration.

Regenerates the configuration table and asserts the exact paper values
(issue width 4; IQ/ROB/LQ/SQ sizes per class; 32KB L1 / 128KB L2 / 1MB
LLC bank; 4/12/35-cycle hits; 160-cycle memory; 6-cycle switches; 5/1
flit messages).  Driver: ``repro.exp.drivers.table6_driver``.
"""

from repro.common.params import CORE_CLASSES, CacheParams, NetworkParams
from repro.common.types import CTRL_MSG_FLITS, DATA_MSG_FLITS
from repro.exp.drivers import table6_driver

from .conftest import worker_count


def bench_table6_configuration(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(table6_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds
                 if report.engine_run else 0.0, worker_count())
    slm, nhm, hsw = (CORE_CLASSES[k] for k in ("SLM", "NHM", "HSW"))
    assert (slm.rob_entries, nhm.rob_entries, hsw.rob_entries) == (32, 128, 192)
    assert (slm.lq_entries, nhm.lq_entries, hsw.lq_entries) == (10, 48, 72)
    assert (slm.sq_entries, nhm.sq_entries, hsw.sq_entries) == (16, 36, 42)
    cache = CacheParams()
    assert cache.l1_hit_cycles == 4
    assert cache.l2_hit_cycles == 12
    assert cache.llc_hit_cycles == 35
    assert cache.memory_cycles == 160
    assert NetworkParams().switch_cycles == 6
    assert (DATA_MSG_FLITS, CTRL_MSG_FLITS) == (5, 1)
    by_class = {r["class"]: r for r in report.rows}
    assert by_class["SLM"]["ldt"] == 32
