"""Ablation (paper §3.8): silent vs non-silent shared evictions.

The paper chose silent evictions of shared lines for its baseline
(9.6% lower traffic).  This ablation re-runs a subset of workloads with
both policies and reports the traffic ratio, plus the consistency-squash
count difference for the squash-based baseline (non-silent evictions add
eviction-time squashes, §3.8).  Driver:
``repro.exp.drivers.ablation_evictions_driver``.
"""

from repro.analysis.tables import geometric_mean
from repro.exp.drivers import ablation_evictions_driver

from .conftest import worker_count


def bench_ablation_eviction_policy(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(ablation_evictions_driver,
                                args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # Silent evictions save traffic (paper: ~9.6% less): the ratio
    # silent/non-silent must be below 1.
    geo = geometric_mean([r["traffic_silent_over_nonsilent"]
                          for r in report.rows])
    assert geo < 1.0, geo
