"""Ablation (paper §3.8): silent vs non-silent shared evictions.

The paper chose silent evictions of shared lines for its baseline
(9.6% lower traffic).  This ablation re-runs a subset of workloads with
both policies and reports the traffic ratio, plus the consistency-squash
count difference for the squash-based baseline (non-silent evictions add
eviction-time squashes, §3.8).
"""

import dataclasses

from repro.common.params import CacheParams

from repro.analysis.experiments import make_workload
from repro.analysis.tables import format_table, geometric_mean
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.runner import run_workload

from .conftest import core_count, workload_scale

BENCHES = ("fft", "ocean_ncp", "streamcluster", "barnes")


def run_ablation():
    rows = []
    for bench in BENCHES:
        results = {}
        for silent in (True, False):
            params = table6_system("SLM", num_cores=core_count(),
                                   commit_mode=CommitMode.OOO)
            # Shrink the private hierarchy so capacity evictions of
            # shared lines actually happen (the full-size 128KB L2
            # never evicts under these working sets).
            cache = dataclasses.replace(params.cache,
                                        l1_sets=4, l1_ways=4,
                                        l2_sets=8, l2_ways=4,
                                        silent_shared_evictions=silent)
            params = dataclasses.replace(params, cache=cache)
            results[silent] = run_workload(
                make_workload(bench, core_count(), workload_scale()), params)
        ratio = (results[True].network_flit_hops
                 / max(results[False].network_flit_hops, 1))
        rows.append((bench, ratio,
                     results[True].consistency_squashes,
                     results[False].consistency_squashes))
    table = format_table(
        ["workload", "traffic silent/non-silent",
         "squashes (silent)", "squashes (non-silent)"],
        rows, title="Ablation §3.8: shared-line eviction policy")
    geo = geometric_mean([r[1] for r in rows])
    # Silent evictions save traffic (paper: ~9.6% less): the ratio
    # silent/non-silent must be below 1.
    assert geo < 1.0, geo
    return table


def bench_ablation_eviction_policy(benchmark, report):
    text = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_evictions", text)
