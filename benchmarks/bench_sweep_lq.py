"""LQ-depth sensitivity sweep (paper §5: "the performance of
WritersBlock may be sensitive to the depth of the load queue").

Sweeps the LQ size at fixed ROB on a contended benchmark and reports
WB's advantage over in-order commit per size.  The expected shape: with
a tiny LQ the in-order core is LQ-bound and WB's early load commit buys
the most; very large LQs dilute the advantage.
"""

import dataclasses

from repro.analysis.experiments import make_workload
from repro.analysis.tables import format_table
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.sim.runner import run_workload

from .conftest import core_count, workload_scale

LQ_SIZES = (6, 10, 16, 24, 48)
BENCH = "streamcluster"


def run_sweep():
    rows = []
    for lq in LQ_SIZES:
        cycles = {}
        for mode in (CommitMode.IN_ORDER, CommitMode.OOO_WB):
            params = table6_system("NHM", num_cores=core_count(),
                                   commit_mode=mode)
            core = dataclasses.replace(params.core, lq_entries=lq)
            params = dataclasses.replace(params, core=core)
            result = run_workload(
                make_workload(BENCH, core_count(), workload_scale()), params)
            cycles[mode] = result.cycles
        advantage = 100.0 * (cycles[CommitMode.IN_ORDER]
                             - cycles[CommitMode.OOO_WB]) \
            / cycles[CommitMode.IN_ORDER]
        rows.append((lq, cycles[CommitMode.IN_ORDER],
                     cycles[CommitMode.OOO_WB], advantage))
    table = format_table(
        ["LQ entries", "in-order cycles", "OoO+WB cycles", "WB advantage %"],
        rows, title=f"LQ-depth sensitivity ({BENCH}, NHM-class ROB)")
    return table


def bench_sweep_lq_depth(benchmark, report):
    text = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("sweep_lq", text)
