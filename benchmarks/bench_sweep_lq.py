"""LQ-depth sensitivity sweep (paper §5: "the performance of
WritersBlock may be sensitive to the depth of the load queue").

Sweeps the LQ size at fixed ROB on a contended benchmark and reports
WB's advantage over in-order commit per size (driver:
``repro.exp.drivers.sweep_lq_driver``).  The expected shape: with a
tiny LQ the in-order core is LQ-bound and WB's early load commit buys
the most; very large LQs dilute the advantage.
"""

from repro.exp.drivers import sweep_lq_driver

from .conftest import worker_count


def bench_sweep_lq_depth(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(sweep_lq_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
