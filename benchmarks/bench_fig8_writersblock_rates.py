"""Figure 8: WritersBlock event rates across core classes.

Paper claims: blocked write requests and uncacheable data responses are
*rare* — well under ~1 per kilo-store / kilo-load on average, growing
with LQ size (SLM < NHM < HSW), with streamcluster/freqmine the worst
cases.  This benchmark regenerates both panels.
"""

from repro.analysis.experiments import fig8_table, fig8_writersblock_rates

from .conftest import core_count, selected_workloads, workload_scale


def bench_fig8_rates(benchmark, report):
    rows = benchmark.pedantic(
        fig8_writersblock_rates,
        kwargs=dict(benches=selected_workloads(), num_cores=core_count(),
                    scale=workload_scale()),
        rounds=1, iterations=1,
    )
    report("fig8_writersblock_rates", fig8_table(rows))
    # Shape assertions (paper §5.1).  Absolute rates are higher than the
    # paper's (the synthetic kernels compress sharing activity into far
    # fewer instructions — see EXPERIMENTS.md) but the qualitative
    # claims must hold:
    by_bench = {}
    for row in rows:
        by_bench.setdefault(row.workload, []).append(row)
    # (i) private/partitioned benchmarks see (almost) no events at all;
    for quiet in ("fft", "lu_ncb", "radix", "swaptions"):
        if quiet in by_bench:
            for row in by_bench[quiet]:
                assert row.blocked_per_kstore < 2.0, row
                assert row.uncacheable_per_kload < 2.0, row
    # (ii) the paper's named worst cases are the worst cases here too;
    peak_blocked = max(rows, key=lambda r: r.blocked_per_kstore).workload
    peak_unc = max(rows, key=lambda r: r.uncacheable_per_kload).workload
    assert peak_blocked in ("streamcluster", "freqmine", "bodytrack"), peak_blocked
    assert peak_unc in ("streamcluster", "freqmine"), peak_unc
    # (iii) every run stayed TSO-clean (run_workload checks internally,
    #       so reaching this point is itself the assertion).
