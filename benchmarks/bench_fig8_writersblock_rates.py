"""Figure 8: WritersBlock event rates across core classes.

Paper claims: blocked write requests and uncacheable data responses are
*rare* — well under ~1 per kilo-store / kilo-load on average, growing
with LQ size (SLM < NHM < HSW), with streamcluster/freqmine the worst
cases.  This benchmark regenerates both panels through the experiment
engine (``repro.exp``) and asserts the paper's shape claims on the
machine-readable rows.
"""

from repro.exp.drivers import fig8_driver

from .conftest import worker_count


def bench_fig8_rates(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(fig8_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    # Shape assertions (paper §5.1).  Absolute rates are higher than the
    # paper's (the synthetic kernels compress sharing activity into far
    # fewer instructions — see EXPERIMENTS.md) but the qualitative
    # claims must hold:
    rows = report.rows
    by_bench = {}
    for row in rows:
        by_bench.setdefault(row["workload"], []).append(row)
    # (i) private/partitioned benchmarks see (almost) no events at all;
    for quiet in ("fft", "lu_ncb", "radix", "swaptions"):
        if quiet in by_bench:
            for row in by_bench[quiet]:
                assert row["blocked_per_kstore"] < 2.0, row
                assert row["uncacheable_per_kload"] < 2.0, row
    # (ii) the paper's named worst cases are the worst cases here too;
    peak_blocked = max(rows, key=lambda r: r["blocked_per_kstore"])
    peak_unc = max(rows, key=lambda r: r["uncacheable_per_kload"])
    assert peak_blocked["workload"] in ("streamcluster", "freqmine",
                                        "bodytrack"), peak_blocked
    assert peak_unc["workload"] in ("streamcluster", "freqmine"), peak_unc
    # (iii) every run stayed TSO-clean (cells run with check=True, so
    #       reaching this point is itself the assertion).
