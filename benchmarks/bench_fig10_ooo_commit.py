"""Figure 10 + §5.2 headline: out-of-order commit with WritersBlock.

Paper claims (shapes, not absolute numbers): OoO+WB is fastest, plain
safe OoO commit sits between it and in-order commit; the stall breakdown
shifts away from ROB-full under OoO commit; and WB further drains the
LQ by committing M-speculative loads early.  Regenerated through the
experiment engine (``repro.exp``).
"""

from repro.analysis.tables import geometric_mean
from repro.exp.drivers import fig10_driver

from .conftest import worker_count


def bench_fig10_commit_modes(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(fig10_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds,
                 worker_count())
    rows = [r for r in report.rows if "workload" in r]
    headline = next(r["headline"] for r in report.rows if "headline" in r)
    # Shape assertions:
    wb_geo = geometric_mean([r["norm_time"]["ooo-wb"] for r in rows])
    ooo_geo = geometric_mean([r["norm_time"]["ooo"] for r in rows])
    assert wb_geo < 1.0, f"OoO+WB must beat in-order on average ({wb_geo})"
    assert wb_geo <= ooo_geo + 0.005, (wb_geo, ooo_geo)
    assert headline["max_improvement_over_inorder_pct"] > 5.0
    # WB eliminates consistency squashes entirely.
    for row in rows:
        assert row["consistency_squashes"]["ooo-wb"] == 0
