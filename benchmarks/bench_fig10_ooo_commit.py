"""Figure 10 + §5.2 headline: out-of-order commit with WritersBlock.

Paper claims (shapes, not absolute numbers): OoO+WB is fastest, plain
safe OoO commit sits between it and in-order commit; the stall breakdown
shifts away from ROB-full under OoO commit; and WB further drains the
LQ by committing M-speculative loads early.
"""

from repro.analysis.experiments import (
    fig10_headline,
    fig10_ooo_commit,
    fig10_stall_table,
    fig10_time_table,
)
from repro.analysis.tables import geometric_mean
from repro.common.types import CommitMode

from .conftest import core_count, selected_workloads, workload_scale


def bench_fig10_commit_modes(benchmark, report):
    rows = benchmark.pedantic(
        fig10_ooo_commit,
        kwargs=dict(benches=selected_workloads(), num_cores=core_count(),
                    scale=workload_scale()),
        rounds=1, iterations=1,
    )
    headline = fig10_headline(rows)
    summary = "\n\n".join([
        fig10_time_table(rows),
        fig10_stall_table(rows),
        "Headline (§5.2): "
        f"OoO+WB over in-order: avg {headline['avg_improvement_over_inorder_pct']:.1f}% "
        f"(max {headline['max_improvement_over_inorder_pct']:.1f}%); "
        f"over safe OoO: avg {headline['avg_improvement_over_ooo_pct']:.1f}% "
        f"(max {headline['max_improvement_over_ooo_pct']:.1f}%)",
    ])
    report("fig10_ooo_commit", summary)
    # Shape assertions:
    wb_geo = geometric_mean([r.norm_time(CommitMode.OOO_WB) for r in rows])
    ooo_geo = geometric_mean([r.norm_time(CommitMode.OOO) for r in rows])
    assert wb_geo < 1.0, f"OoO+WB must beat in-order on average ({wb_geo})"
    assert wb_geo <= ooo_geo + 0.005, (wb_geo, ooo_geo)
    assert headline["max_improvement_over_inorder_pct"] > 5.0
    # WB eliminates consistency squashes entirely.
    for row in rows:
        assert row.results[CommitMode.OOO_WB].consistency_squashes == 0
