"""Table 2: exhaustive TSO interleavings of the running example.

Regenerates the paper's enumeration: six interleavings, five legal,
yielding exactly the outcome set {old,old}, {old,new}, {new,new} for
(ld y, ld x) — the sixth combination {new, old} is the illegal one that
WritersBlock must hide.  Driver: ``repro.exp.drivers.table2_driver``.
"""

from repro.exp.drivers import table2_driver

from .conftest import worker_count


def bench_table2_interleavings(benchmark, config, engine, bench_report):
    report = benchmark.pedantic(table2_driver, args=(config, engine),
                                rounds=1, iterations=1)
    bench_report(report, config, report.engine_run.wall_seconds
                 if report.engine_run else 0.0, worker_count())
    pairs = [tuple(p) for p in report.rows[-1]["legal_outcomes"]]
    assert pairs == [("new", "new"), ("old", "new"), ("old", "old")]
    assert ("new", "old") not in pairs  # the illegal interleaving (6)
