"""Table 2: exhaustive TSO interleavings of the running example.

Regenerates the paper's enumeration: six interleavings, five legal,
yielding exactly the outcome set {old,old}, {old,new}, {new,new} for
(ld y, ld x) — the sixth combination {new, old} is the illegal one that
WritersBlock must hide.
"""

from repro.consistency.litmus import (
    SimpleOp,
    enumerate_interleavings,
    legal_tso_outcomes,
)

READER = [SimpleOp(0, "ld", "y"), SimpleOp(0, "ld", "x")]
WRITER = [SimpleOp(1, "st", "x"), SimpleOp(1, "st", "y")]


def run_enumeration():
    interleavings = enumerate_interleavings([READER, WRITER])
    outcomes = legal_tso_outcomes([READER, WRITER])
    lines = [f"{len(interleavings)} interleavings, "
             f"{len(outcomes)} distinct outcomes:"]
    for i, (order, loads) in enumerate(interleavings, start=1):
        ops = " -> ".join(f"t{op.thread}:{op.kind} {op.var}" for op in order)
        lines.append(f"({i}) {ops}   loads={loads}")
    pairs = sorted({(o['t0:ld y'], o['t0:ld x']) for o in outcomes})
    lines.append(f"legal (ld y, ld x) outcomes: {pairs}")
    assert pairs == [("new", "new"), ("old", "new"), ("old", "old")]
    assert ("new", "old") not in pairs  # the illegal interleaving (6)
    return "\n".join(lines)


def bench_table2_interleavings(benchmark, report):
    text = benchmark.pedantic(run_enumeration, rounds=1, iterations=1)
    report("table2_interleavings", text)
