"""Regenerate src/repro/coherence/alphabet.py from observed transitions.

Runs the broadest deterministic battery we have — the FULL conformance
corpus across its delay grid, the directed scenarios, an extended fuzz
sweep, and the POR explorations — with the coverage probe attached for
every backend, then freezes every observed transition tuple into the
declared alphabet tables.  Run from the repo root::

    PYTHONPATH=src python tools/gen_alphabet.py

Deterministic by construction (pinned seeds, fixed grids), so the
output is byte-stable; re-run whenever a protocol or its
instrumentation changes and commit the result.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.coherence.backend import backend_names
from repro.conform.coverage import collect_coverage

OUT = Path(__file__).resolve().parents[1] / "src" / "repro" / "coherence" \
    / "alphabet.py"

#: Wider than the default collection sweep: the alphabet must contain
#: every tuple any later run can produce, so over-approximate the seeds.
ALPHABET_FUZZ_SEEDS = tuple(range(60))

HEADER = '''"""Declared transition alphabets for the shipped coherence backends.

Each alphabet is the exact set of ``(component, state, event,
next_state, action)`` tuples its protocol can produce — the denominator
for :func:`repro.obs.coverage.coverage_report`.  The tables are
generated empirically by ``tools/gen_alphabet.py``: it exhausts the
conformance corpus (all held-back delay placements), the differential
fuzz battery, the sleep-set POR explorer, and the directed scenarios
with the coverage probe attached, then freezes every tuple observed.
Tests pin observed ⊆ declared, so an instrumentation or protocol change
that produces a new tuple fails loudly until the table is regenerated.
"""

from __future__ import annotations

'''


def render_alphabet(name: str, transitions) -> str:
    lines = [f"{name}: frozenset = frozenset(("]
    for component, state, event, nxt, action in sorted(transitions):
        lines.append(f"    ({component!r}, {state!r}, {event!r}, "
                     f"{nxt!r}, {action!r}),")
    lines.append("))")
    return "\n".join(lines)


def main() -> int:
    blocks = []
    for backend in backend_names():
        print(f"collecting {backend} ...", flush=True)
        cmap, info = collect_coverage(
            backend, full=True, fuzz_seeds=ALPHABET_FUZZ_SEEDS)
        transitions = cmap.transitions(backend)
        print(f"  {len(transitions)} transitions "
              f"({info['sources']})", flush=True)
        blocks.append(render_alphabet(f"{backend.upper()}_ALPHABET",
                                      transitions))
    OUT.write_text(HEADER + "\n\n".join(blocks) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
