"""Packaging entry point.

This project deliberately ships a setup.py/setup.cfg combination (rather
than pyproject.toml) so that ``pip install -e .`` works in offline
environments without the ``wheel`` package, via the legacy develop path.
"""

from setuptools import setup

setup()
