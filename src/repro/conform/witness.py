"""Replayable forbidden-outcome witnesses.

A witness (schema ``repro-witness/1``) freezes everything needed to
re-execute a failing conformance run: the full ``.litmus`` text, the
commit mode / core class / core count, and the exact per-thread delay
schedule.  :func:`replay_witness` re-runs it deterministically, checks
the registers reproduce, and attaches a causal-blame trace
(:mod:`repro.obs.blame`) so a forbidden outcome arrives with the chain
of events that produced it, not just the final valuation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..common.types import CommitMode
from ..common.params import table6_system
from ..consistency.models import check_execution
from ..common.errors import MemoryModelViolationError
from ..workloads.trace import AddressSpace

WITNESS_SCHEMA = "repro-witness/1"


def witness_payload(test, *, kind: str, detail: str, mode: CommitMode,
                    core_class: str, num_cores: int,
                    extra_delays: Sequence[int],
                    registers: Dict[str, int],
                    model: str = "tso",
                    backend: str = "baseline") -> Dict:
    from .litmus_format import write_litmus

    return {
        "schema": WITNESS_SCHEMA,
        "test": test.name,
        "family": test.family,
        "kind": kind,
        "detail": detail,
        "model": model,
        "backend": backend,
        "litmus": write_litmus(test),
        "commit_mode": mode.value,
        "core_class": core_class,
        "num_cores": num_cores,
        "extra_delays": list(extra_delays),
        "registers": dict(sorted(registers.items())),
    }


def save_witness(payload: Dict, directory: Union[str, Path]) -> Path:
    """Write the witness as ``<test>__<kind>[.N].json``; returns path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"{payload['test']}__{payload['kind']}"
    path = directory / f"{stem}.json"
    suffix = 0
    while path.exists():
        suffix += 1
        path = directory / f"{stem}.{suffix}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_witness(path: Union[str, Path]) -> Dict:
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != WITNESS_SCHEMA:
        raise ValueError(f"{path}: not a {WITNESS_SCHEMA} payload "
                         f"(schema={payload.get('schema')!r})")
    return payload


def replay_witness(payload: Union[Dict, str, Path], *,
                   blame_top: int = 5) -> Dict:
    """Re-execute a witness; returns the replay report.

    The report carries ``match`` (did the registers reproduce byte for
    byte), the replayed ``registers``, whether the axiomatic checker
    still rejects the execution, and the causal ``blame`` payload
    (schema ``repro-blame/1``) of the replayed run.
    """
    from ..consistency.litmus import litmus_traces
    from ..obs.blame import build_blame
    from ..obs.causal import CausalObserver
    from ..sim.system import MulticoreSystem
    from .litmus_format import parse_litmus
    from .model import to_litmus

    if not isinstance(payload, dict):
        payload = load_witness(payload)
    test = parse_litmus(payload["litmus"])
    litmus = to_litmus(test)
    params = table6_system(payload["core_class"],
                           num_cores=int(payload["num_cores"]),
                           commit_mode=CommitMode(payload["commit_mode"]),
                           backend=payload.get("backend", "baseline"))
    space = AddressSpace(params.cache.line_bytes)
    traces, out_regs, var_addr = litmus_traces(
        test=litmus, space=space, extra_delays=payload["extra_delays"])
    system = MulticoreSystem(params)
    system.observe()
    observer = CausalObserver(system.bus)
    system.load_program(traces)
    result = system.run()
    registers = {
        name: system.cores[tid].reg_values.get(reg, 0)
        for tid, reg, name in out_regs
    }
    model = payload.get("model", "tso")
    replayed = {key: registers.get(key, 0) for key in test.load_keys()}
    for var in test.mem_keys():
        versions = result.log.coherence_order.get(var_addr[var], [])
        replayed[var] = (result.log.value_of(versions[-1])
                         if versions else 0)
    recorded = {key: int(value)
                for key, value in payload["registers"].items()}
    violation: Optional[str] = None
    try:
        check_execution(result.log, model)
    except MemoryModelViolationError as exc:
        violation = str(exc)
    blame = build_blame(observer.graph, cycles=result.cycles,
                        meta={"witness": payload["test"],
                              "kind": payload["kind"]})
    blame["top"] = list(blame.get("critical_path") or [])[:blame_top]
    forbidden_hit = any(
        all(replayed.get(k) == v for k, v in clause.items())
        for clause in test.exists) and test.expect_for(model) == "forbidden"
    return {
        "schema": "repro-witness-replay/1",
        "test": payload["test"],
        "kind": payload["kind"],
        "model": model,
        "backend": payload.get("backend", "baseline"),
        "mode": payload["commit_mode"],
        "num_cores": int(payload["num_cores"]),
        "match": replayed == recorded,
        "registers": replayed,
        "recorded": recorded,
        "forbidden_hit": forbidden_hit,
        "checker_violation": violation,
        "cycles": result.cycles,
        "blame": blame,
    }
