"""Three-way differential checking: sim ⊆ operational ⊆ axiomatic.

For one :class:`~repro.conform.model.ConformTest` the checker

1. enumerates the operational x86-TSO machine and the axiomatic
   store-buffer relaxation and asserts every operational outcome is
   axiomatically legal (``operational ⊆ axiomatic``);
2. cross-checks the hand-encoded expectation: an expect-``forbidden``
   test must have *no* operationally reachable ``exists`` clause, an
   expect-``allowed`` test must have at least one;
3. runs the full simulator across a deterministic grid of per-thread
   start offsets (plus seeded random perturbations) and asserts every
   observed valuation is operationally reachable (``sim ⊆
   operational``), no forbidden outcome fires, and the axiomatic TSO
   checker that rides along every run stays silent.

Any violation carries a replayable witness payload
(:mod:`repro.conform.witness`): the full litmus text, commit mode and
the exact delay schedule, enough to re-run the execution and attach a
causal-blame trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..common.params import SystemParams, table6_system
from ..common.types import CommitMode
from ..consistency.litmus import perturbation_delays, run_litmus
from .model import (ConformTest, Outcome, axiomatic_outcomes,
                    exists_reachable, operational_outcomes, outcome_matches,
                    to_litmus)
from .witness import witness_payload

DEFAULT_CORE = "SLM"


@dataclass
class Violation:
    """One conformance failure, with an optional replayable witness."""

    kind: str  # "sim-not-operational" | "operational-not-axiomatic"
    #          | "forbidden-outcome" | "checker-violation"
    #          | "expectation-mismatch"
    test: str
    detail: str
    witness: Optional[Dict] = None


@dataclass
class TestReport:
    """The outcome of checking one test."""

    name: str
    family: str
    expect: str
    sim_runs: int = 0
    sim_outcomes: List[Dict[str, int]] = field(default_factory=list)
    operational_count: int = 0
    axiomatic_count: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def conform_params(test: ConformTest, *,
                   core_class: str = DEFAULT_CORE,
                   mode: CommitMode = CommitMode.OOO_WB) -> SystemParams:
    cores = 4 if len(test.threads) <= 4 else 16
    return table6_system(core_class, num_cores=cores, commit_mode=mode)


def default_delays(num_threads: int) -> List[Tuple[int, ...]]:
    """The deterministic offset grid: all-synchronous plus one run with
    each single thread held back (the classic race windows)."""
    grid: List[Tuple[int, ...]] = [tuple(0 for __ in range(num_threads))]
    for tid in range(num_threads):
        grid.append(tuple(40 if t == tid else 0
                          for t in range(num_threads)))
    return grid


def check_test(test: ConformTest, *,
               params: Optional[SystemParams] = None,
               mode: CommitMode = CommitMode.OOO_WB,
               core_class: str = DEFAULT_CORE,
               delays: Optional[Sequence[Sequence[int]]] = None,
               perturb: int = 2, seed: int = 0) -> TestReport:
    """Run the full three-way differential check on one test."""
    report = TestReport(name=test.name, family=test.family,
                        expect=test.expect)
    op_set = operational_outcomes(test)
    ax_set = axiomatic_outcomes(test)
    report.operational_count = len(op_set)
    report.axiomatic_count = len(ax_set)

    for outcome in sorted(op_set - ax_set,
                          key=lambda o: tuple(sorted(o))):
        report.violations.append(Violation(
            kind="operational-not-axiomatic", test=test.name,
            detail=f"operationally reachable but axiomatically illegal: "
                   f"{dict(sorted(outcome))}"))

    if test.expect == "forbidden" and exists_reachable(op_set, test.exists):
        report.violations.append(Violation(
            kind="expectation-mismatch", test=test.name,
            detail="expect: forbidden, but an exists clause is "
                   "operationally reachable"))
    elif test.expect == "allowed" and not exists_reachable(op_set,
                                                           test.exists):
        report.violations.append(Violation(
            kind="expectation-mismatch", test=test.name,
            detail="expect: allowed, but no exists clause is "
                   "operationally reachable"))

    if params is None:
        params = conform_params(test, core_class=core_class, mode=mode)
    litmus = to_litmus(test)
    keys = test.load_keys()
    combos = ([tuple(combo) for combo in delays] if delays is not None
              else default_delays(len(test.threads)))
    if perturb:
        combos = combos + perturbation_delays(litmus, perturb,
                                              random.Random(seed))
    seen_sim: Set[Outcome] = set()
    for combo in combos:
        outcome = run_litmus(litmus, params, extra_delays=combo)
        report.sim_runs += 1
        regs = {key: outcome.registers.get(key, 0) for key in keys}
        fingerprint: Outcome = frozenset(regs.items())
        if fingerprint not in seen_sim:
            seen_sim.add(fingerprint)
            report.sim_outcomes.append(regs)

        def _witness(kind: str, detail: str) -> Dict:
            return witness_payload(test, kind=kind, detail=detail,
                                   mode=mode, core_class=core_class,
                                   num_cores=params.num_cores,
                                   extra_delays=combo, registers=regs)

        if fingerprint not in op_set:
            detail = (f"simulated outcome {regs} not operationally "
                      f"reachable (delays={combo})")
            report.violations.append(Violation(
                kind="sim-not-operational", test=test.name, detail=detail,
                witness=_witness("sim-not-operational", detail)))
        if outcome.forbidden_hit:
            hit = next((clause for clause in test.exists
                        if outcome_matches(fingerprint, clause)), {})
            detail = (f"forbidden outcome {hit} observed on the simulator "
                      f"(delays={combo})")
            report.violations.append(Violation(
                kind="forbidden-outcome", test=test.name, detail=detail,
                witness=_witness("forbidden-outcome", detail)))
        if outcome.checker_violation:
            detail = (f"axiomatic TSO checker rejected the execution "
                      f"(delays={combo}): {outcome.checker_violation}")
            report.violations.append(Violation(
                kind="checker-violation", test=test.name, detail=detail,
                witness=_witness("checker-violation", detail)))
    return report
