"""Three-way differential checking: sim ⊆ operational ⊆ axiomatic.

For one :class:`~repro.conform.model.ConformTest` and one memory model
(``tso`` default, ``sc``, ``rmo``) the checker

1. enumerates the model's operational machine and the model's axiomatic
   enumeration and asserts every operational outcome is axiomatically
   legal (``operational ⊆ axiomatic``);
2. cross-checks the hand-encoded per-model expectation: an
   expect-``forbidden`` test must have *no* operationally reachable
   ``exists`` clause, an expect-``allowed`` test must have at least one;
3. runs the full simulator across a deterministic grid of per-thread
   start offsets (plus seeded random perturbations) and asserts every
   observed valuation is operationally reachable (``sim ⊆
   operational``), no forbidden outcome fires, and the axiomatic TSO
   checker that rides along every run stays silent.

Step 3 only makes sense for models the simulated hardware satisfies:
the simulator is an x86-TSO machine, so sim inclusion runs under
``tso`` and the (weaker) ``rmo`` but is skipped under ``sc`` — a store
buffer legitimately exceeds SC.

Any violation carries a replayable witness payload
(:mod:`repro.conform.witness`): the full litmus text, commit mode,
model and the exact delay schedule, enough to re-run the execution and
attach a causal-blame trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..common.params import SystemParams, table6_system
from ..common.types import CommitMode
from ..consistency.litmus import perturbation_delays, run_litmus
from ..consistency.models import MemoryModel, get_model
from .model import (ConformTest, Outcome, axiomatic_outcomes,
                    exists_reachable, operational_outcomes, outcome_matches,
                    to_litmus)
from .witness import witness_payload

DEFAULT_CORE = "SLM"

#: Models whose guarantees the simulated (x86-TSO) hardware satisfies,
#: i.e. for which the sim-inclusion phase is sound.
SIM_SOUND_MODELS = ("tso", "rmo")


@dataclass
class Violation:
    """One conformance failure, with an optional replayable witness."""

    kind: str  # "sim-not-operational" | "operational-not-axiomatic"
    #          | "forbidden-outcome" | "checker-violation"
    #          | "expectation-mismatch"
    test: str
    detail: str
    witness: Optional[Dict] = None


@dataclass
class TestReport:
    """The outcome of checking one test under one model."""

    name: str
    family: str
    expect: str
    model: str = "tso"
    backend: str = "baseline"
    sim_runs: int = 0
    sim_outcomes: List[Dict[str, int]] = field(default_factory=list)
    operational_count: int = 0
    axiomatic_count: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def conform_params(test: ConformTest, *,
                   core_class: str = DEFAULT_CORE,
                   mode: CommitMode = CommitMode.OOO_WB,
                   backend: str = "baseline") -> SystemParams:
    cores = 4 if len(test.threads) <= 4 else 16
    return table6_system(core_class, num_cores=cores, commit_mode=mode,
                         backend=backend)


def default_delays(num_threads: int) -> List[Tuple[int, ...]]:
    """The deterministic offset grid: all-synchronous plus one run with
    each single thread held back (the classic race windows)."""
    grid: List[Tuple[int, ...]] = [tuple(0 for __ in range(num_threads))]
    for tid in range(num_threads):
        grid.append(tuple(40 if t == tid else 0
                          for t in range(num_threads)))
    return grid


def check_test(test: ConformTest, *,
               model="tso",
               params: Optional[SystemParams] = None,
               mode: CommitMode = CommitMode.OOO_WB,
               core_class: str = DEFAULT_CORE,
               backend: str = "baseline",
               delays: Optional[Sequence[Sequence[int]]] = None,
               perturb: int = 2, seed: int = 0) -> TestReport:
    """Run the full differential check on one test under one model.

    ``backend`` selects the coherence protocol the simulated hardware
    runs (the operational and axiomatic references are protocol-
    independent — whatever the protocol, its executions must stay
    inside the model).  Callers must pair the backend with a commit
    mode it supports (tardis has no WritersBlock, so no OOO_WB).
    """
    spec: MemoryModel = get_model(model)
    expect = test.expect_for(spec)
    report = TestReport(name=test.name, family=test.family,
                        expect=expect, model=spec.name, backend=backend)
    op_set = operational_outcomes(test, spec)
    ax_set = axiomatic_outcomes(test, spec)
    report.operational_count = len(op_set)
    report.axiomatic_count = len(ax_set)

    for outcome in sorted(op_set - ax_set,
                          key=lambda o: tuple(sorted(o))):
        report.violations.append(Violation(
            kind="operational-not-axiomatic", test=test.name,
            detail=f"[{spec.name}] operationally reachable but "
                   f"axiomatically illegal: {dict(sorted(outcome))}"))

    if expect == "forbidden" and exists_reachable(op_set, test.exists):
        report.violations.append(Violation(
            kind="expectation-mismatch", test=test.name,
            detail=f"[{spec.name}] expect: forbidden, but an exists "
                   f"clause is operationally reachable"))
    elif expect == "allowed" and not exists_reachable(op_set, test.exists):
        report.violations.append(Violation(
            kind="expectation-mismatch", test=test.name,
            detail=f"[{spec.name}] expect: allowed, but no exists "
                   f"clause is operationally reachable"))

    if spec.name not in SIM_SOUND_MODELS:
        return report

    if params is None:
        params = conform_params(test, core_class=core_class, mode=mode,
                                backend=backend)
    litmus = to_litmus(test)
    load_keys = test.load_keys()
    mem_keys = test.mem_keys()
    combos = ([tuple(combo) for combo in delays] if delays is not None
              else default_delays(len(test.threads)))
    if perturb:
        combos = combos + perturbation_delays(litmus, perturb,
                                              random.Random(seed))
    seen_sim: Set[Outcome] = set()
    for combo in combos:
        outcome = run_litmus(litmus, params, extra_delays=combo)
        report.sim_runs += 1
        regs = {key: outcome.registers.get(key, 0) for key in load_keys}
        values = dict(regs)
        for var in mem_keys:
            values[var] = outcome.memory.get(var, 0)
        fingerprint: Outcome = frozenset(values.items())
        if fingerprint not in seen_sim:
            seen_sim.add(fingerprint)
            report.sim_outcomes.append(values)

        def _witness(kind: str, detail: str) -> Dict:
            return witness_payload(test, kind=kind, detail=detail,
                                   mode=mode, core_class=core_class,
                                   num_cores=params.num_cores,
                                   extra_delays=combo, registers=values,
                                   model=spec.name, backend=backend)

        if fingerprint not in op_set:
            detail = (f"[{spec.name}] simulated outcome {values} not "
                      f"operationally reachable (delays={combo})")
            report.violations.append(Violation(
                kind="sim-not-operational", test=test.name, detail=detail,
                witness=_witness("sim-not-operational", detail)))
        # Evaluated here (not via outcome.forbidden_hit) so memory atoms
        # count and the *model's* expectation decides, not always TSO's.
        forbidden_hit = (
            expect == "forbidden"
            and any(outcome_matches(fingerprint, clause)
                    for clause in test.exists))
        if forbidden_hit:
            hit = next((clause for clause in test.exists
                        if outcome_matches(fingerprint, clause)), {})
            detail = (f"[{spec.name}] forbidden outcome {hit} observed on "
                      f"the simulator (delays={combo})")
            report.violations.append(Violation(
                kind="forbidden-outcome", test=test.name, detail=detail,
                witness=_witness("forbidden-outcome", detail)))
        if outcome.checker_violation:
            detail = (f"axiomatic TSO checker rejected the execution "
                      f"(delays={combo}): {outcome.checker_violation}")
            report.violations.append(Violation(
                kind="checker-violation", test=test.name, detail=detail,
                witness=_witness("checker-violation", detail)))
    return report
