"""Memory-model conformance subsystem.

A herd7-style litmus corpus plus a model-parametric three-way
differential checker (``tso`` / ``sc`` / ``rmo`` — the specs in
:mod:`repro.consistency.models`):

* :mod:`model` — the shared litmus IR (:class:`COp` /
  :class:`ConformTest`, with per-model expectations) and adapters onto
  the full simulator (:mod:`repro.consistency.litmus`) and the
  per-model operational machines
  (:mod:`repro.consistency.operational`);
* :mod:`axiomatic` — the value-aware per-model axiomatic enumeration
  (linearizations + merge);
* :mod:`litmus_format` — the ``.litmus`` text parser and writer;
* :mod:`generator` — the diy-style shape generator behind the committed
  corpus under ``tests/conformance/corpus/``;
* :mod:`differential` — per-test three-way checking under a chosen
  model (sim ⊆ operational ⊆ axiomatic, sim phase only where the
  hardware satisfies the model) plus expectation checks;
* :mod:`witness` — replayable forbidden-outcome witnesses with causal
  blame traces;
* :mod:`runner` — corpus loading, tier-1 slicing and batch runs (the
  engine driver and ``repro conform`` sit on top of this).
"""

from .model import COp, ConformTest, cld, cld_dep, cld_slow, cmf, cst  # noqa: F401
from .litmus_format import parse_litmus, write_litmus  # noqa: F401
from .generator import generate_corpus  # noqa: F401
from .differential import check_test  # noqa: F401
from .runner import (default_mode_for, load_corpus,  # noqa: F401
                     run_conformance, tier1_slice)
