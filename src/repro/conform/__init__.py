"""TSO conformance subsystem.

A herd7-style litmus corpus plus a three-way differential checker that
pins the whole stack to x86-TSO:

* :mod:`model` — the shared litmus IR (:class:`COp` /
  :class:`ConformTest`) with adapters onto the full simulator
  (:mod:`repro.consistency.litmus`), the operational x86-TSO abstract
  machine (:mod:`repro.consistency.operational`) and the axiomatic
  enumeration (:func:`repro.consistency.litmus.legal_tso_outcomes`);
* :mod:`litmus_format` — the ``.litmus`` text parser and writer;
* :mod:`generator` — the diy-style shape generator behind the committed
  corpus under ``tests/conformance/corpus/``;
* :mod:`differential` — per-test three-way checking
  (sim ⊆ operational ⊆ axiomatic) plus expectation checks;
* :mod:`witness` — replayable forbidden-outcome witnesses with causal
  blame traces;
* :mod:`runner` — corpus loading, tier-1 slicing and batch runs (the
  engine driver and ``repro conform`` sit on top of this).
"""

from .model import COp, ConformTest, cld, cld_dep, cld_slow, cmf, cst  # noqa: F401
from .litmus_format import parse_litmus, write_litmus  # noqa: F401
from .generator import generate_corpus  # noqa: F401
from .differential import check_test  # noqa: F401
from .runner import load_corpus, run_conformance, tier1_slice  # noqa: F401
