"""diy-style litmus shape generator.

Each family is a fixed skeleton of loads/stores over 2-4 threads with
*gap decorations*: every interesting program-order gap between two
accesses of one thread gets one variant from

* ``po``   — nothing between them (plain program order),
* ``mf``   — an MFENCE between them,
* ``dep``  — the younger load's address depends on the older load
  (only offered for load→load gaps), and
* ``slow`` — the *older* load's address resolves late (only for
  load→load gaps; the paper's dangerous case, where an OoO core wants
  to perform the younger load first).

``dep`` and ``slow`` never change legality under any shipped model —
they are timing variants the differential checker uses to probe the
microarchitecture — so the hand-encoded expectations of each family
depend only on which gaps carry fences.  The full cross product over
the base shapes and their multi-thread extensions yields the committed
344-test corpus across 21 families.

Every test carries three *hand-derived* expectations (double-checked
against the operational machines and the axiomatic enumeration by the
test suite), one per :mod:`repro.consistency.models` spec:

===========  ==========================================================
family       ``exists`` clause forbidden under x86-TSO iff ...
===========  ==========================================================
mp           always (R→R and W→W both preserved)
sb, sb3,     every thread's store→load gap carries ``mf`` (the store
sb4          buffer is the one TSO relaxation)
lb, lb3,     always (load→store never reorders)
lb4
corr, corr3, always (per-location coherence)
corr4
wrc          always (W→R causality is transitive through cores)
iriw, iriw3  always (stores hit a single memory order)
isa2, isa24  always (chained message passing)
rwc, irrwiw  the writer-reader thread's store→load gap carries ``mf``
r            the store→load gap on the reading thread carries ``mf``
             (the W→W half of the cycle is free under TSO)
s, 2+2w,     always (only W→W / R→W / R→R edges in the cycle)
wrwc
===========  ==========================================================

Under **SC** every corpus shape is forbidden — each family's condition
is a classic non-SC valuation by construction (this is asserted
programmatically by the model-matrix tests).  Under **RMO** (our
RMO-ish spec: empty ppo, fences only — address dependencies are
deliberately *not* ordering, so ``dep``/``slow`` stay timing-only)
the per-location families ``corr``/``corr3``/``corr4`` remain forbidden
(SC-per-location holds under every model) and every other family is
forbidden exactly when **all** of its decorated gaps carry ``mf``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .model import COp, ConformTest, cld, cmf, cst

_REGS = ("EAX", "EBX", "ECX", "EDX", "ESI", "EDI")

LD_GAPS = ("po", "mf", "dep", "slow")  # load -> load gaps
ST_GAPS = ("po", "mf")  # gaps ending (or starting) at a store


def _reads(tid: int, variables: Sequence[str], gaps: Sequence[str]
           ) -> Tuple[List[COp], List[str]]:
    """A reader thread: loads of *variables* with decorated gaps.

    ``gaps[i]`` decorates the gap between load ``i`` and load ``i+1``.
    Returns (ops, load keys in order).
    """
    assert len(gaps) == len(variables) - 1
    ops: List[COp] = []
    keys: List[str] = []
    for index, var in enumerate(variables):
        dep = ""
        if index > 0:
            gap = gaps[index - 1]
            if gap == "mf":
                ops.append(cmf())
            elif gap == "dep":
                dep = "dep"
            elif gap == "slow":
                # decorate the *older* load: rewrite it in place
                older = ops[-1]
                ops[-1] = COp("ld", older.var, reg=older.reg, dep="slow")
        ops.append(cld(var, _REGS[index], dep=dep))
        keys.append(f"{tid}:{_REGS[index]}")
    return ops, keys


def _writes(variables: Sequence[str], gaps: Sequence[str]) -> List[COp]:
    assert len(gaps) == len(variables) - 1
    ops: List[COp] = [cst(variables[0], 1)]
    for var, gap in zip(variables[1:], gaps):
        if gap == "mf":
            ops.append(cmf())
        ops.append(cst(var, 1))
    return ops


def _name(family: str, gaps: Sequence[str]) -> str:
    return family.upper() + "+" + "+".join(gaps)


def _rmo_expect(gaps: Sequence[str]) -> str:
    """RMO verdict for every non-coherence family: the cycle only closes
    when *all* decorated gaps are fenced (dep/slow are timing-only)."""
    return "forbidden" if all(gap == "mf" for gap in gaps) else "allowed"


def _product(choices: Sequence[Sequence[str]]) -> Iterable[Tuple[str, ...]]:
    if not choices:
        yield ()
        return
    for head in choices[0]:
        for tail in _product(choices[1:]):
            yield (head,) + tail


# ------------------------------------------------------------- families
def _mp() -> List[ConformTest]:
    tests = []
    for w, r in _product([ST_GAPS, LD_GAPS]):
        reads, keys = _reads(1, ["y", "x"], [r])
        tests.append(ConformTest(
            name=_name("mp", (w, r)),
            threads=[_writes(["x", "y"], [w]), reads],
            exists=[{keys[0]: 1, keys[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((w, r)), family="mp",
            description="message passing: flag read 1 but data stale"))
    return tests


def _sb_ring(family: str, variables: Sequence[str]) -> List[ConformTest]:
    """SB and its 3/4-thread rings: Pi does W v_i ; R v_{i+1}."""
    n = len(variables)
    tests = []
    for gaps in _product([ST_GAPS] * n):
        threads = []
        clause: Dict[str, int] = {}
        for tid in range(n):
            ops: List[COp] = [cst(variables[tid], 1)]
            if gaps[tid] == "mf":
                ops.append(cmf())
            ops.append(cld(variables[(tid + 1) % n], _REGS[0]))
            threads.append(ops)
            clause[f"{tid}:{_REGS[0]}"] = 0
        expect = "forbidden" if all(g == "mf" for g in gaps) else "allowed"
        tests.append(ConformTest(
            name=_name(family, gaps), threads=threads, exists=[clause],
            expect=expect, expect_sc="forbidden",
            expect_rmo=_rmo_expect(gaps), family=family,
            description="store-buffering ring: every load reads 0"))
    return tests


def _lb_ring(family: str, variables: Sequence[str]) -> List[ConformTest]:
    """LB rings: Pi does R v_i ; W v_{i+1}; all-1 forbidden (ld→st)."""
    n = len(variables)
    tests = []
    for gaps in _product([ST_GAPS] * n):
        threads = []
        clause: Dict[str, int] = {}
        for tid in range(n):
            ops = [cld(variables[tid], _REGS[0])]
            if gaps[tid] == "mf":
                ops.append(cmf())
            ops.append(cst(variables[(tid + 1) % n], 1))
            threads.append(ops)
            clause[f"{tid}:{_REGS[0]}"] = 1
        tests.append(ConformTest(
            name=_name(family, gaps), threads=threads, exists=[clause],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect(gaps), family=family,
            description="load-buffering ring: every load sees the later "
                        "store"))
    return tests


def _corr() -> List[ConformTest]:
    tests = []
    for (r,) in _product([LD_GAPS]):
        reads, keys = _reads(0, ["x", "x"], [r])
        tests.append(ConformTest(
            name=_name("corr", (r,)),
            threads=[reads, [cst("x", 1)]],
            exists=[{keys[0]: 1, keys[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo="forbidden", family="corr",
            description="coherence: same-location reads go backwards"))
    return tests


def _corr3() -> List[ConformTest]:
    tests = []
    for gaps in _product([LD_GAPS, LD_GAPS]):
        reads, keys = _reads(0, ["x", "x", "x"], list(gaps))
        tests.append(ConformTest(
            name=_name("corr3", gaps),
            threads=[reads, [cst("x", 1)]],
            exists=[{keys[1]: 1, keys[2]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo="forbidden", family="corr3",
            description="coherence: three same-location reads, middle "
                        "pair goes backwards"))
    return tests


def _wrc() -> List[ConformTest]:
    tests = []
    for g1, g2 in _product([ST_GAPS, LD_GAPS]):
        middle: List[COp] = [cld("x", _REGS[0])]
        if g1 == "mf":
            middle.append(cmf())
        middle.append(cst("y", 1))
        reads, keys = _reads(2, ["y", "x"], [g2])
        tests.append(ConformTest(
            name=_name("wrc", (g1, g2)),
            threads=[[cst("x", 1)], middle, reads],
            exists=[{f"1:{_REGS[0]}": 1, keys[0]: 1, keys[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g1, g2)), family="wrc",
            description="write-read causality through a middleman core"))
    return tests


def _iriw() -> List[ConformTest]:
    tests = []
    for g2, g3 in _product([LD_GAPS, LD_GAPS]):
        r2, k2 = _reads(2, ["x", "y"], [g2])
        r3, k3 = _reads(3, ["y", "x"], [g3])
        tests.append(ConformTest(
            name=_name("iriw", (g2, g3)),
            threads=[[cst("x", 1)], [cst("y", 1)], r2, r3],
            exists=[{k2[0]: 1, k2[1]: 0, k3[0]: 1, k3[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g2, g3)), family="iriw",
            description="independent readers disagree on the write order"))
    return tests


def _isa2() -> List[ConformTest]:
    tests = []
    for g0, g1, g2 in _product([ST_GAPS, ST_GAPS, LD_GAPS]):
        middle: List[COp] = [cld("y", _REGS[0])]
        if g1 == "mf":
            middle.append(cmf())
        middle.append(cst("z", 1))
        reads, keys = _reads(2, ["z", "x"], [g2])
        tests.append(ConformTest(
            name=_name("isa2", (g0, g1, g2)),
            threads=[_writes(["x", "y"], [g0]), middle, reads],
            exists=[{f"1:{_REGS[0]}": 1, keys[0]: 1, keys[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g0, g1, g2)), family="isa2",
            description="two-hop message passing (ISA2)"))
    return tests


def _isa24() -> List[ConformTest]:
    tests = []
    for g0, g1, g2, g3 in _product([ST_GAPS, ST_GAPS, ST_GAPS, LD_GAPS]):
        hop1: List[COp] = [cld("y", _REGS[0])]
        if g1 == "mf":
            hop1.append(cmf())
        hop1.append(cst("z", 1))
        hop2: List[COp] = [cld("z", _REGS[0])]
        if g2 == "mf":
            hop2.append(cmf())
        hop2.append(cst("w", 1))
        reads, keys = _reads(3, ["w", "x"], [g3])
        tests.append(ConformTest(
            name=_name("isa24", (g0, g1, g2, g3)),
            threads=[_writes(["x", "y"], [g0]), hop1, hop2, reads],
            exists=[{f"1:{_REGS[0]}": 1, f"2:{_REGS[0]}": 1,
                     keys[0]: 1, keys[1]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g0, g1, g2, g3)), family="isa24",
            description="three-hop message passing (ISA2 on 4 cores)"))
    return tests


def _rwc() -> List[ConformTest]:
    tests = []
    for g1, g2 in _product([LD_GAPS, ST_GAPS]):
        reads, keys = _reads(1, ["x", "y"], [g1])
        writer: List[COp] = [cst("y", 1)]
        if g2 == "mf":
            writer.append(cmf())
        writer.append(cld("x", _REGS[0]))
        expect = "forbidden" if g2 == "mf" else "allowed"
        tests.append(ConformTest(
            name=_name("rwc", (g1, g2)),
            threads=[[cst("x", 1)], reads, writer],
            exists=[{keys[0]: 1, keys[1]: 0, f"2:{_REGS[0]}": 0}],
            expect=expect, expect_sc="forbidden",
            expect_rmo=_rmo_expect((g1, g2)), family="rwc",
            description="read-to-write causality: store buffer may hide "
                        "P2's write unless fenced"))
    return tests


def _r() -> List[ConformTest]:
    """R: the co half of SB.  P1's later write loses the coherence race
    (final ``y=2``) yet its load still misses P0's first write."""
    tests = []
    for g0, g1 in _product([ST_GAPS, ST_GAPS]):
        writer1: List[COp] = [cst("y", 2)]
        if g1 == "mf":
            writer1.append(cmf())
        writer1.append(cld("x", _REGS[0]))
        expect = "forbidden" if g1 == "mf" else "allowed"
        tests.append(ConformTest(
            name=_name("r", (g0, g1)),
            threads=[_writes(["x", "y"], [g0]), writer1],
            exists=[{"y": 2, f"1:{_REGS[0]}": 0}],
            expect=expect, expect_sc="forbidden",
            expect_rmo=_rmo_expect((g0, g1)), family="r",
            description="R: co-losing writer still reads stale x unless "
                        "its store drains first"))
    return tests


def _s() -> List[ConformTest]:
    """S: P1 reads P0's flag yet its own write loses the coherence race
    against P0's first write (final ``x=2``)."""
    tests = []
    for g0, g1 in _product([ST_GAPS, ST_GAPS]):
        writer0: List[COp] = [cst("x", 2)]
        if g0 == "mf":
            writer0.append(cmf())
        writer0.append(cst("y", 1))
        reader1: List[COp] = [cld("y", _REGS[0])]
        if g1 == "mf":
            reader1.append(cmf())
        reader1.append(cst("x", 1))
        tests.append(ConformTest(
            name=_name("s", (g0, g1)),
            threads=[writer0, reader1],
            exists=[{"x": 2, f"1:{_REGS[0]}": 1}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g0, g1)), family="s",
            description="S: flag observed but the reply write is "
                        "co-before the observed thread's first write"))
    return tests


def _2p2w() -> List[ConformTest]:
    """2+2W: two threads cross-write two variables; both first writes
    win the coherence race only if W→W reorders."""
    tests = []
    for g0, g1 in _product([ST_GAPS, ST_GAPS]):
        threads = []
        for tid, (mine, theirs) in enumerate((("x", "y"), ("y", "x"))):
            ops: List[COp] = [cst(mine, 1)]
            if (g0, g1)[tid] == "mf":
                ops.append(cmf())
            ops.append(cst(theirs, 2))
            threads.append(ops)
        tests.append(ConformTest(
            name=_name("2+2w", (g0, g1)), threads=threads,
            exists=[{"x": 1, "y": 1}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g0, g1)), family="2+2w",
            description="2+2W: both first writes end up coherence-last"))
    return tests


def _wrwc() -> List[ConformTest]:
    """W+RWC: a reader chains an external write into an RWC-style
    coherence edge back to the same variable (final ``x=2``)."""
    tests = []
    for g1, g2 in _product([LD_GAPS, ST_GAPS]):
        reads, keys = _reads(1, ["x", "y"], [g1])
        writer2: List[COp] = [cst("y", 1)]
        if g2 == "mf":
            writer2.append(cmf())
        writer2.append(cst("x", 1))
        tests.append(ConformTest(
            name=_name("wrwc", (g1, g2)),
            threads=[[cst("x", 2)], reads, writer2],
            exists=[{keys[0]: 2, keys[1]: 0, "x": 2}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect((g1, g2)), family="wrwc",
            description="W+RWC: observed write is coherence-after the "
                        "writer the reader missed"))
    return tests


def _irrwiw() -> List[ConformTest]:
    """IRRWIW: IRIW stretched to five threads — two pure readers chain
    three writes, and a writer-reader closes the cycle through its own
    store buffer."""
    tests = []
    for g2, g3, g4 in _product([LD_GAPS, LD_GAPS, ST_GAPS]):
        r2, k2 = _reads(2, ["x", "y"], [g2])
        r3, k3 = _reads(3, ["y", "z"], [g3])
        writer4: List[COp] = [cst("z", 1)]
        if g4 == "mf":
            writer4.append(cmf())
        writer4.append(cld("x", _REGS[0]))
        expect = "forbidden" if g4 == "mf" else "allowed"
        tests.append(ConformTest(
            name=_name("irrwiw", (g2, g3, g4)),
            threads=[[cst("x", 1)], [cst("y", 1)], r2, r3, writer4],
            exists=[{k2[0]: 1, k2[1]: 0, k3[0]: 1, k3[1]: 0,
                     f"4:{_REGS[0]}": 0}],
            expect=expect, expect_sc="forbidden",
            expect_rmo=_rmo_expect((g2, g3, g4)), family="irrwiw",
            description="five-thread IRIW variant closed by a "
                        "writer-reader"))
    return tests


def _iriw3() -> List[ConformTest]:
    """IRIW3: three writers, three readers (six threads) — the readers
    chain x→y→z→x and must agree on one memory order."""
    tests = []
    variables = ("x", "y", "z")
    for gaps in _product([LD_GAPS] * 3):
        threads: List[List[COp]] = [[cst(var, 1)] for var in variables]
        clause: Dict[str, int] = {}
        for index in range(3):
            older = variables[index]
            newer = variables[(index + 1) % 3]
            reads, keys = _reads(3 + index, [older, newer], [gaps[index]])
            threads.append(reads)
            clause[keys[0]] = 1
            clause[keys[1]] = 0
        tests.append(ConformTest(
            name=_name("iriw3", gaps), threads=threads, exists=[clause],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo=_rmo_expect(gaps), family="iriw3",
            description="six-thread IRIW: three readers chain three "
                        "independent writes into a cycle"))
    return tests


def _corr4() -> List[ConformTest]:
    tests = []
    for gaps in _product([LD_GAPS] * 3):
        reads, keys = _reads(0, ["x", "x", "x", "x"], list(gaps))
        tests.append(ConformTest(
            name=_name("corr4", gaps),
            threads=[reads, [cst("x", 1)]],
            exists=[{keys[2]: 1, keys[3]: 0}],
            expect="forbidden", expect_sc="forbidden",
            expect_rmo="forbidden", family="corr4",
            description="coherence: four same-location reads, last "
                        "pair goes backwards"))
    return tests


FAMILIES = ("mp", "sb", "lb", "corr", "corr3", "wrc", "iriw",
            "isa2", "isa24", "sb3", "sb4", "lb3", "lb4", "rwc",
            "r", "s", "2+2w", "wrwc", "irrwiw", "iriw3", "corr4")


def generate_corpus() -> List[ConformTest]:
    """The full committed corpus: 344 tests across 21 families."""
    tests: List[ConformTest] = []
    tests += _mp()
    tests += _sb_ring("sb", ["x", "y"])
    tests += _lb_ring("lb", ["x", "y"])
    tests += _corr()
    tests += _corr3()
    tests += _wrc()
    tests += _iriw()
    tests += _isa2()
    tests += _isa24()
    tests += _sb_ring("sb3", ["x", "y", "z"])
    tests += _sb_ring("sb4", ["x", "y", "z", "w"])
    tests += _lb_ring("lb3", ["x", "y", "z"])
    tests += _lb_ring("lb4", ["x", "y", "z", "w"])
    tests += _rwc()
    tests += _r()
    tests += _s()
    tests += _2p2w()
    tests += _wrwc()
    tests += _irrwiw()
    tests += _iriw3()
    tests += _corr4()
    names = set()
    for test in tests:
        test.validate()
        if test.name in names:
            raise AssertionError(f"duplicate test name {test.name}")
        names.add(test.name)
    return tests


def write_corpus(directory) -> List[str]:
    """Write every generated test as ``<name>.litmus``; returns names."""
    from pathlib import Path

    from .litmus_format import write_litmus

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for test in generate_corpus():
        (directory / f"{test.name}.litmus").write_text(write_litmus(test))
        names.append(test.name)
    return names
