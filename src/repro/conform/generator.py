"""diy-style litmus shape generator.

Each family is a fixed skeleton of loads/stores over 2-4 threads with
*gap decorations*: every interesting program-order gap between two
accesses of one thread gets one variant from

* ``po``   — nothing between them (plain program order),
* ``mf``   — an MFENCE between them,
* ``dep``  — the younger load's address depends on the older load
  (only offered for load→load gaps), and
* ``slow`` — the *older* load's address resolves late (only for
  load→load gaps; the paper's dangerous case, where an OoO core wants
  to perform the younger load first).

``dep`` and ``slow`` never change TSO legality — they are timing
variants the differential checker uses to probe the microarchitecture —
so the hand-encoded expectation of each family depends only on which
gaps carry fences.  The full cross product over the six base shapes and
their 3- and 4-thread extensions yields the committed 164-test corpus.

Expectations are *hand-derived* from the axiomatic model (and
double-checked against the operational machine by the test suite):

===========  ==========================================================
family       ``exists`` clause forbidden under x86-TSO iff ...
===========  ==========================================================
mp           always (R→R and W→W both preserved)
sb, sb3,     every thread's store→load gap carries ``mf`` (the store
sb4          buffer is the one TSO relaxation)
lb, lb3,     always (load→store never reorders)
lb4
corr, corr3  always (per-location coherence)
wrc          always (W→R causality is transitive through cores)
iriw         always (stores hit a single memory order)
isa2, isa24  always (chained message passing)
rwc          the writer-reader thread's store→load gap carries ``mf``
===========  ==========================================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .model import COp, ConformTest, cld, cmf, cst

_REGS = ("EAX", "EBX", "ECX", "EDX", "ESI", "EDI")

LD_GAPS = ("po", "mf", "dep", "slow")  # load -> load gaps
ST_GAPS = ("po", "mf")  # gaps ending (or starting) at a store


def _reads(tid: int, variables: Sequence[str], gaps: Sequence[str]
           ) -> Tuple[List[COp], List[str]]:
    """A reader thread: loads of *variables* with decorated gaps.

    ``gaps[i]`` decorates the gap between load ``i`` and load ``i+1``.
    Returns (ops, load keys in order).
    """
    assert len(gaps) == len(variables) - 1
    ops: List[COp] = []
    keys: List[str] = []
    for index, var in enumerate(variables):
        dep = ""
        if index > 0:
            gap = gaps[index - 1]
            if gap == "mf":
                ops.append(cmf())
            elif gap == "dep":
                dep = "dep"
            elif gap == "slow":
                # decorate the *older* load: rewrite it in place
                older = ops[-1]
                ops[-1] = COp("ld", older.var, reg=older.reg, dep="slow")
        ops.append(cld(var, _REGS[index], dep=dep))
        keys.append(f"{tid}:{_REGS[index]}")
    return ops, keys


def _writes(variables: Sequence[str], gaps: Sequence[str]) -> List[COp]:
    assert len(gaps) == len(variables) - 1
    ops: List[COp] = [cst(variables[0], 1)]
    for var, gap in zip(variables[1:], gaps):
        if gap == "mf":
            ops.append(cmf())
        ops.append(cst(var, 1))
    return ops


def _name(family: str, gaps: Sequence[str]) -> str:
    return family.upper() + "+" + "+".join(gaps)


def _product(choices: Sequence[Sequence[str]]) -> Iterable[Tuple[str, ...]]:
    if not choices:
        yield ()
        return
    for head in choices[0]:
        for tail in _product(choices[1:]):
            yield (head,) + tail


# ------------------------------------------------------------- families
def _mp() -> List[ConformTest]:
    tests = []
    for w, r in _product([ST_GAPS, LD_GAPS]):
        reads, keys = _reads(1, ["y", "x"], [r])
        tests.append(ConformTest(
            name=_name("mp", (w, r)),
            threads=[_writes(["x", "y"], [w]), reads],
            exists=[{keys[0]: 1, keys[1]: 0}],
            expect="forbidden", family="mp",
            description="message passing: flag read 1 but data stale"))
    return tests


def _sb_ring(family: str, variables: Sequence[str]) -> List[ConformTest]:
    """SB and its 3/4-thread rings: Pi does W v_i ; R v_{i+1}."""
    n = len(variables)
    tests = []
    for gaps in _product([ST_GAPS] * n):
        threads = []
        clause: Dict[str, int] = {}
        for tid in range(n):
            ops: List[COp] = [cst(variables[tid], 1)]
            if gaps[tid] == "mf":
                ops.append(cmf())
            ops.append(cld(variables[(tid + 1) % n], _REGS[0]))
            threads.append(ops)
            clause[f"{tid}:{_REGS[0]}"] = 0
        expect = "forbidden" if all(g == "mf" for g in gaps) else "allowed"
        tests.append(ConformTest(
            name=_name(family, gaps), threads=threads, exists=[clause],
            expect=expect, family=family,
            description="store-buffering ring: every load reads 0"))
    return tests


def _lb_ring(family: str, variables: Sequence[str]) -> List[ConformTest]:
    """LB rings: Pi does R v_i ; W v_{i+1}; all-1 forbidden (ld→st)."""
    n = len(variables)
    tests = []
    for gaps in _product([ST_GAPS] * n):
        threads = []
        clause: Dict[str, int] = {}
        for tid in range(n):
            ops = [cld(variables[tid], _REGS[0])]
            if gaps[tid] == "mf":
                ops.append(cmf())
            ops.append(cst(variables[(tid + 1) % n], 1))
            threads.append(ops)
            clause[f"{tid}:{_REGS[0]}"] = 1
        tests.append(ConformTest(
            name=_name(family, gaps), threads=threads, exists=[clause],
            expect="forbidden", family=family,
            description="load-buffering ring: every load sees the later "
                        "store"))
    return tests


def _corr() -> List[ConformTest]:
    tests = []
    for (r,) in _product([LD_GAPS]):
        reads, keys = _reads(0, ["x", "x"], [r])
        tests.append(ConformTest(
            name=_name("corr", (r,)),
            threads=[reads, [cst("x", 1)]],
            exists=[{keys[0]: 1, keys[1]: 0}],
            expect="forbidden", family="corr",
            description="coherence: same-location reads go backwards"))
    return tests


def _corr3() -> List[ConformTest]:
    tests = []
    for gaps in _product([LD_GAPS, LD_GAPS]):
        reads, keys = _reads(0, ["x", "x", "x"], list(gaps))
        tests.append(ConformTest(
            name=_name("corr3", gaps),
            threads=[reads, [cst("x", 1)]],
            exists=[{keys[1]: 1, keys[2]: 0}],
            expect="forbidden", family="corr3",
            description="coherence: three same-location reads, middle "
                        "pair goes backwards"))
    return tests


def _wrc() -> List[ConformTest]:
    tests = []
    for g1, g2 in _product([ST_GAPS, LD_GAPS]):
        middle: List[COp] = [cld("x", _REGS[0])]
        if g1 == "mf":
            middle.append(cmf())
        middle.append(cst("y", 1))
        reads, keys = _reads(2, ["y", "x"], [g2])
        tests.append(ConformTest(
            name=_name("wrc", (g1, g2)),
            threads=[[cst("x", 1)], middle, reads],
            exists=[{f"1:{_REGS[0]}": 1, keys[0]: 1, keys[1]: 0}],
            expect="forbidden", family="wrc",
            description="write-read causality through a middleman core"))
    return tests


def _iriw() -> List[ConformTest]:
    tests = []
    for g2, g3 in _product([LD_GAPS, LD_GAPS]):
        r2, k2 = _reads(2, ["x", "y"], [g2])
        r3, k3 = _reads(3, ["y", "x"], [g3])
        tests.append(ConformTest(
            name=_name("iriw", (g2, g3)),
            threads=[[cst("x", 1)], [cst("y", 1)], r2, r3],
            exists=[{k2[0]: 1, k2[1]: 0, k3[0]: 1, k3[1]: 0}],
            expect="forbidden", family="iriw",
            description="independent readers disagree on the write order"))
    return tests


def _isa2() -> List[ConformTest]:
    tests = []
    for g0, g1, g2 in _product([ST_GAPS, ST_GAPS, LD_GAPS]):
        middle: List[COp] = [cld("y", _REGS[0])]
        if g1 == "mf":
            middle.append(cmf())
        middle.append(cst("z", 1))
        reads, keys = _reads(2, ["z", "x"], [g2])
        tests.append(ConformTest(
            name=_name("isa2", (g0, g1, g2)),
            threads=[_writes(["x", "y"], [g0]), middle, reads],
            exists=[{f"1:{_REGS[0]}": 1, keys[0]: 1, keys[1]: 0}],
            expect="forbidden", family="isa2",
            description="two-hop message passing (ISA2)"))
    return tests


def _isa24() -> List[ConformTest]:
    tests = []
    for g0, g1, g2, g3 in _product([ST_GAPS, ST_GAPS, ST_GAPS, LD_GAPS]):
        hop1: List[COp] = [cld("y", _REGS[0])]
        if g1 == "mf":
            hop1.append(cmf())
        hop1.append(cst("z", 1))
        hop2: List[COp] = [cld("z", _REGS[0])]
        if g2 == "mf":
            hop2.append(cmf())
        hop2.append(cst("w", 1))
        reads, keys = _reads(3, ["w", "x"], [g3])
        tests.append(ConformTest(
            name=_name("isa24", (g0, g1, g2, g3)),
            threads=[_writes(["x", "y"], [g0]), hop1, hop2, reads],
            exists=[{f"1:{_REGS[0]}": 1, f"2:{_REGS[0]}": 1,
                     keys[0]: 1, keys[1]: 0}],
            expect="forbidden", family="isa24",
            description="three-hop message passing (ISA2 on 4 cores)"))
    return tests


def _rwc() -> List[ConformTest]:
    tests = []
    for g1, g2 in _product([LD_GAPS, ST_GAPS]):
        reads, keys = _reads(1, ["x", "y"], [g1])
        writer: List[COp] = [cst("y", 1)]
        if g2 == "mf":
            writer.append(cmf())
        writer.append(cld("x", _REGS[0]))
        expect = "forbidden" if g2 == "mf" else "allowed"
        tests.append(ConformTest(
            name=_name("rwc", (g1, g2)),
            threads=[[cst("x", 1)], reads, writer],
            exists=[{keys[0]: 1, keys[1]: 0, f"2:{_REGS[0]}": 0}],
            expect=expect, family="rwc",
            description="read-to-write causality: store buffer may hide "
                        "P2's write unless fenced"))
    return tests


FAMILIES = ("mp", "sb", "lb", "corr", "corr3", "wrc", "iriw",
            "isa2", "isa24", "sb3", "sb4", "lb3", "lb4", "rwc")


def generate_corpus() -> List[ConformTest]:
    """The full committed corpus: 164 tests across 14 families."""
    tests: List[ConformTest] = []
    tests += _mp()
    tests += _sb_ring("sb", ["x", "y"])
    tests += _lb_ring("lb", ["x", "y"])
    tests += _corr()
    tests += _corr3()
    tests += _wrc()
    tests += _iriw()
    tests += _isa2()
    tests += _isa24()
    tests += _sb_ring("sb3", ["x", "y", "z"])
    tests += _sb_ring("sb4", ["x", "y", "z", "w"])
    tests += _lb_ring("lb3", ["x", "y", "z"])
    tests += _lb_ring("lb4", ["x", "y", "z", "w"])
    tests += _rwc()
    names = set()
    for test in tests:
        test.validate()
        if test.name in names:
            raise AssertionError(f"duplicate test name {test.name}")
        names.add(test.name)
    return tests


def write_corpus(directory) -> List[str]:
    """Write every generated test as ``<name>.litmus``; returns names."""
    from pathlib import Path

    from .litmus_format import write_litmus

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = []
    for test in generate_corpus():
        (directory / f"{test.name}.litmus").write_text(write_litmus(test))
        names.append(test.name)
    return names
