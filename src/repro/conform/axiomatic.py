"""Value-aware axiomatic outcome enumeration, parametric in the model.

The third leg of the differential (besides the simulator and the
operational machines): enumerate every final state a
:class:`~repro.conform.model.ConformTest` program can reach under a
:class:`~repro.consistency.models.MemoryModel`, by a construction that
is deliberately *not* another step machine:

1. **Per-thread linearizations** — for each thread, every reordering of
   its ops the model admits.  Op *j* may be emitted once every po-earlier
   op it is ordered after has been emitted; ordering comes from the
   model's ppo matrix, fences (which order everything), and the
   same-location coherence rules (same-location pairs never reorder —
   except a load hoisting above its own thread's store, which is
   annotated with a *pin*: the value it must forward).
2. **Merge** — interleave one linearization per thread over a single
   memory, reading pinned loads from their pin and plain loads from
   memory.  Memoized on (positions, memory, registers).

Because a model with fewer preserved pairs admits a superset of
linearizations, outcome sets are monotone by construction:
``ax(sc) ⊆ ax(tso) ⊆ ax(rmo)`` — the inclusion the model-matrix tests
check programmatically.

This replaces the old/new-vocabulary ``legal_tso_outcomes`` path for
conformance (which could not express several stores to one variable and
knew nothing of final memory); that enumeration remains in
:mod:`repro.consistency.litmus` for the paper-table benches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..consistency.models import MemoryModel, get_model
from .model import COp

#: One op of a linearization: (kind, var, value, regkey, pin).
#: ``pin`` is the forwarded value for a hoisted load, else None.
LinOp = Tuple[str, str, int, str, Optional[int]]
Valuation = FrozenSet[Tuple[str, int]]
FinalState = Tuple[Valuation, Valuation]  # (registers, memory)


def _ordered(prev: COp, op: COp, model: MemoryModel) -> bool:
    """Must *prev* stay before *op* in the thread's linearization?"""
    if prev.kind == "mf" or op.kind == "mf":
        return True
    if prev.var == op.var:
        # Same location: coherence pins every pair except st→ld, which
        # may hoist (the load then forwards — see the pin annotation).
        return not (prev.kind == "st" and op.kind == "ld")
    kinds = {"ld": ("R",), "st": ("W",)}
    return any((a, b) in model.ppo
               for a in kinds[prev.kind] for b in kinds[op.kind])


def _pin_value(thread: Sequence[COp], emitted: FrozenSet[int],
               j: int) -> Optional[int]:
    """The forwarding pin for load *j*: the youngest po-earlier
    same-location store still unemitted, if any."""
    for i in range(j - 1, -1, -1):
        prev = thread[i]
        if prev.kind == "st" and prev.var == thread[j].var:
            return prev.value if i not in emitted else None
    return None


def _linearizations(tid: int, thread: Sequence[COp],
                    model: MemoryModel) -> List[Tuple[LinOp, ...]]:
    results: List[Tuple[LinOp, ...]] = []

    def extend(emitted: FrozenSet[int], prefix: Tuple[LinOp, ...]) -> None:
        if len(emitted) == len(thread):
            results.append(prefix)
            return
        for j, op in enumerate(thread):
            if j in emitted:
                continue
            if any(i not in emitted and _ordered(thread[i], op, model)
                   for i in range(j)):
                continue
            if op.kind == "mf":
                lin: LinOp = ("mf", "", 0, "", None)
            elif op.kind == "st":
                lin = ("st", op.var, op.value, "", None)
            else:
                lin = ("ld", op.var, 0, f"{tid}:{op.reg}",
                       _pin_value(thread, emitted, j))
            extend(emitted | {j}, prefix + (lin,))

    extend(frozenset(), ())
    # Distinct emission orders can collapse to the same linearization
    # (mf placement); dedupe to keep the merge honest.
    return sorted(set(results))


def _merge(sequences: Sequence[Tuple[LinOp, ...]]) -> Set[FinalState]:
    """All final (registers, memory) of interleaving the sequences."""
    outcomes: Set[FinalState] = set()
    seen: Set[Tuple] = set()
    initial = (tuple(0 for __ in sequences), (), ())
    stack = [initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        positions, memory, registers = state
        done = True
        for tid, seq in enumerate(sequences):
            if positions[tid] >= len(seq):
                continue
            done = False
            kind, var, value, regkey, pin = seq[positions[tid]]
            new_positions = (positions[:tid] + (positions[tid] + 1,)
                             + positions[tid + 1:])
            if kind == "st":
                items = dict(memory)
                items[var] = value
                stack.append((new_positions,
                              tuple(sorted(items.items())), registers))
            elif kind == "ld":
                observed = pin if pin is not None else dict(memory).get(var, 0)
                items = dict(registers)
                items[regkey] = observed
                stack.append((new_positions, memory,
                              tuple(sorted(items.items()))))
            else:  # mf: ordering was resolved per thread already
                stack.append((new_positions, memory, registers))
        if done:
            outcomes.add((frozenset(registers), frozenset(memory)))
    return outcomes


def axiomatic_final_states(threads: Sequence[Sequence[COp]],
                           model="tso") -> Set[FinalState]:
    """Every (registers, memory) final state the model admits."""
    spec = get_model(model)
    per_thread = [_linearizations(tid, thread, spec)
                  for tid, thread in enumerate(threads)]
    outcomes: Set[FinalState] = set()
    chosen: List[Tuple[LinOp, ...]] = []

    def pick(tid: int) -> None:
        if tid == len(per_thread):
            outcomes.update(_merge(chosen))
            return
        for sequence in per_thread[tid]:
            chosen.append(sequence)
            pick(tid + 1)
            chosen.pop()

    pick(0)
    return outcomes
