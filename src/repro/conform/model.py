"""The conformance litmus IR and its backend adapters.

A :class:`ConformTest` is one litmus test in a tiny x86-flavoured
vocabulary — plain/dependent/slow loads, constant stores, MFENCE — with
its interesting final-state valuation (``exists``) and a hand-encoded
expectation **per memory model** (``forbidden`` / ``allowed`` under
x86-TSO, SC and RMO).  The same test lowers to all three oracles:

* :func:`to_litmus` — the full microarchitectural simulator via
  :class:`repro.consistency.litmus.LitmusTest`;
* :func:`to_operational` — the per-model abstract machines in
  :mod:`repro.consistency.operational`;
* :mod:`repro.conform.axiomatic` — the per-model value-aware
  linearization/merge enumeration.

Outcomes from every backend are normalised to the same shape: a mapping
from ``"{tid}:{REG}"`` (final load values) and bare variable names
(final memory — used by families like R and 2+2W whose condition
constrains the coherence-last write) to integers, so inclusion
(sim ⊆ operational ⊆ axiomatic) is a set comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..consistency import litmus as lit
from ..consistency import operational as opmodel
from ..consistency.litmus import LitmusTest
from ..consistency.models import get_model

#: Address-resolution delay for ``slow`` loads; long enough that a
#: younger independent load would perform first on an OoO core.
SLOW_DELAY = 240

Outcome = FrozenSet[Tuple[str, int]]


@dataclass(frozen=True)
class COp:
    """One conformance op.

    ``kind`` is ``"ld"`` / ``"st"`` / ``"mf"``.  Loads carry ``var``,
    the destination ``reg`` (unique per thread) and a ``dep`` flavour:
    ``""`` (plain), ``"dep"`` (address depends on the previous load) or
    ``"slow"`` (address resolves late).  Stores carry ``var``/``value``.
    Dep/slow only shape the microarchitectural timing — the operational
    and axiomatic backends treat them as plain loads, which is the point:
    timing variants must not change the reachable-outcome set (under any
    shipped model: the RMO spec deliberately ignores dependencies too).
    """

    kind: str  # "ld" | "st" | "mf"
    var: str = ""
    value: int = 0
    reg: str = ""
    dep: str = ""  # "" | "dep" | "slow"


def cld(var: str, reg: str, dep: str = "") -> COp:
    return COp("ld", var, reg=reg, dep=dep)


def cld_dep(var: str, reg: str) -> COp:
    return COp("ld", var, reg=reg, dep="dep")


def cld_slow(var: str, reg: str) -> COp:
    return COp("ld", var, reg=reg, dep="slow")


def cst(var: str, value: int = 1) -> COp:
    return COp("st", var, value=value)


def cmf() -> COp:
    return COp("mf")


@dataclass
class ConformTest:
    """A named conformance test.

    ``exists`` is a disjunction of conjunctions over final values
    (herd's ``exists (... /\\ ...) \\/ (...)``); atom keys are either
    ``"{tid}:{REG}"`` (a load's destination) or a bare variable name
    (the final memory value — herd's ``x=1`` atoms).  ``expect`` states
    whether any ``exists`` clause is reachable under x86-TSO
    (``"forbidden"`` / ``"allowed"``; ``""`` = unstated, expectation
    checks are skipped); ``expect_sc`` / ``expect_rmo`` state the same
    under the SC and RMO specs.
    """

    name: str
    threads: List[List[COp]]
    exists: List[Dict[str, int]] = field(default_factory=list)
    expect: str = ""  # "forbidden" | "allowed" | ""
    expect_sc: str = ""
    expect_rmo: str = ""
    family: str = ""
    description: str = ""

    def all_vars(self) -> List[str]:
        seen: List[str] = []
        for thread in self.threads:
            for op in thread:
                if op.var and op.var not in seen:
                    seen.append(op.var)
        return seen

    def load_keys(self) -> List[str]:
        return [f"{tid}:{op.reg}"
                for tid, thread in enumerate(self.threads)
                for op in thread if op.kind == "ld"]

    def mem_keys(self) -> List[str]:
        """Variables whose final memory value the condition constrains."""
        seen: List[str] = []
        for clause in self.exists:
            for key in clause:
                if ":" not in key and key not in seen:
                    seen.append(key)
        return seen

    def outcome_keys(self) -> List[str]:
        return self.load_keys() + self.mem_keys()

    def expect_for(self, model) -> str:
        name = get_model(model).name
        if name == "tso":
            return self.expect
        if name == "sc":
            return self.expect_sc
        if name == "rmo":
            return self.expect_rmo
        return ""

    def validate(self) -> None:
        for tid, thread in enumerate(self.threads):
            regs: Set[str] = set()
            prev_was_load = False
            for op in thread:
                if op.kind == "ld":
                    if not op.reg:
                        raise ValueError(f"{self.name}: load without reg "
                                         f"in thread {tid}")
                    if op.reg in regs:
                        raise ValueError(f"{self.name}: duplicate reg "
                                         f"{op.reg!r} in thread {tid}")
                    regs.add(op.reg)
                    if op.dep == "dep" and not prev_was_load:
                        raise ValueError(
                            f"{self.name}: dep load with no preceding "
                            f"load in thread {tid}")
                    prev_was_load = True
                elif op.kind in ("st", "mf"):
                    if op.kind == "mf":
                        prev_was_load = False
                else:
                    raise ValueError(f"{self.name}: bad op kind "
                                     f"{op.kind!r}")
        keys = set(self.load_keys())
        variables = set(self.all_vars())
        for clause in self.exists:
            for key in clause:
                if ":" in key:
                    if key not in keys:
                        raise ValueError(f"{self.name}: exists references "
                                         f"unknown register {key!r}")
                elif key not in variables:
                    raise ValueError(f"{self.name}: exists references "
                                     f"unknown variable {key!r}")
        for label, value in (("expect", self.expect),
                             ("expect-sc", self.expect_sc),
                             ("expect-rmo", self.expect_rmo)):
            if value not in ("", "forbidden", "allowed"):
                raise ValueError(f"{self.name}: bad {label} {value!r}")


# ------------------------------------------------------------- adapters
def to_litmus(test: ConformTest) -> LitmusTest:
    """Lower to the simulator-facing :class:`LitmusTest`.

    ``forbidden`` is populated only for expect-forbidden tests whose
    condition is register-only, so
    :func:`repro.consistency.litmus.run_litmus` flags a hit directly;
    conditions with memory atoms are evaluated by the differential
    checker, which sees the final memory.
    """
    threads: List[List[lit.Op]] = []
    for tid, ops in enumerate(test.threads):
        thread: List[lit.Op] = []
        for op in ops:
            if op.kind == "st":
                thread.append(lit.st(op.var, op.value))
            elif op.kind == "mf":
                thread.append(lit.fence())
            elif op.dep == "dep":
                thread.append(lit.ld_dep(op.var, f"{tid}:{op.reg}"))
            elif op.dep == "slow":
                thread.append(lit.ld_slow(op.var, f"{tid}:{op.reg}",
                                          delay=SLOW_DELAY))
            else:
                thread.append(lit.ld(op.var, f"{tid}:{op.reg}"))
        threads.append(thread)
    forbidden = ([dict(clause) for clause in test.exists
                  if all(":" in key for key in clause)]
                 if test.expect == "forbidden" and not test.mem_keys()
                 else [])
    return LitmusTest(name=test.name, threads=threads, forbidden=forbidden,
                      description=test.description or test.family)


def to_operational(test: ConformTest) -> List[List[opmodel.TOp]]:
    threads: List[List[opmodel.TOp]] = []
    for ops in test.threads:
        thread: List[opmodel.TOp] = []
        for op in ops:
            if op.kind == "st":
                thread.append(opmodel.st(op.var, op.value))
            elif op.kind == "mf":
                thread.append(opmodel.mf())
            else:
                thread.append(opmodel.ld(op.var, op.reg))
        threads.append(thread)
    return threads


# ------------------------------------------------------- outcome views
def _fingerprint(test: ConformTest, registers: Dict[str, int],
                 memory: Dict[str, int]) -> Outcome:
    """Normalise one final state onto the test's outcome keys."""
    items: List[Tuple[str, int]] = []
    for key in test.load_keys():
        items.append((key, registers.get(key, 0)))
    for var in test.mem_keys():
        items.append((var, memory.get(var, 0)))
    return frozenset(items)


def operational_outcomes(test: ConformTest, model="tso") -> Set[Outcome]:
    """Reachable final valuations under the model's abstract machine."""
    spec = get_model(model)
    raw = opmodel.enumerate_final_states(to_operational(test),
                                         model=spec.name)
    outcomes: Set[Outcome] = set()
    for registers, memory in raw:
        regs = {key[1:]: value for key, value in registers}  # t0:R -> 0:R
        outcomes.add(_fingerprint(test, regs, dict(memory)))
    return outcomes


def axiomatic_outcomes(test: ConformTest, model="tso") -> Set[Outcome]:
    """Reachable final valuations under the axiomatic enumeration."""
    from .axiomatic import axiomatic_final_states

    spec = get_model(model)
    outcomes: Set[Outcome] = set()
    for registers, memory in axiomatic_final_states(test.threads, spec):
        outcomes.add(_fingerprint(test, dict(registers), dict(memory)))
    return outcomes


def outcome_matches(outcome: Outcome, clause: Dict[str, int]) -> bool:
    return set(clause.items()) <= set(outcome)


def exists_reachable(outcomes: Set[Outcome],
                     exists: Sequence[Dict[str, int]]) -> bool:
    return any(outcome_matches(o, clause)
               for o in outcomes for clause in exists)
