"""The conformance litmus IR and its three backend adapters.

A :class:`ConformTest` is one litmus test in a tiny x86-flavoured
vocabulary — plain/dependent/slow loads, constant stores, MFENCE — with
its interesting final-state valuation (``exists``) and the hand-encoded
TSO expectation (``forbidden`` / ``allowed``).  The same test lowers to
all three oracles:

* :func:`to_litmus` — the full microarchitectural simulator via
  :class:`repro.consistency.litmus.LitmusTest`;
* :func:`to_operational` — the Owens/Sarkar/Sewell abstract machine in
  :mod:`repro.consistency.operational`;
* :func:`to_axiomatic` — the store-buffer-relaxation enumeration in
  :func:`repro.consistency.litmus.legal_tso_outcomes`.

Outcomes from every backend are normalised to the same shape: a mapping
from ``"{tid}:{REG}"`` to the integer the load observed, so inclusion
(sim ⊆ operational ⊆ axiomatic) is a set comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..consistency import litmus as lit
from ..consistency import operational as opmodel
from ..consistency.litmus import LitmusTest, SimpleOp, legal_tso_outcomes

#: Address-resolution delay for ``slow`` loads; long enough that a
#: younger independent load would perform first on an OoO core.
SLOW_DELAY = 240

Outcome = FrozenSet[Tuple[str, int]]


@dataclass(frozen=True)
class COp:
    """One conformance op.

    ``kind`` is ``"ld"`` / ``"st"`` / ``"mf"``.  Loads carry ``var``,
    the destination ``reg`` (unique per thread) and a ``dep`` flavour:
    ``""`` (plain), ``"dep"`` (address depends on the previous load) or
    ``"slow"`` (address resolves late).  Stores carry ``var``/``value``.
    Dep/slow only shape the microarchitectural timing — the operational
    and axiomatic backends treat them as plain loads, which is the point:
    timing variants must not change the reachable-outcome set.
    """

    kind: str  # "ld" | "st" | "mf"
    var: str = ""
    value: int = 0
    reg: str = ""
    dep: str = ""  # "" | "dep" | "slow"


def cld(var: str, reg: str, dep: str = "") -> COp:
    return COp("ld", var, reg=reg, dep=dep)


def cld_dep(var: str, reg: str) -> COp:
    return COp("ld", var, reg=reg, dep="dep")


def cld_slow(var: str, reg: str) -> COp:
    return COp("ld", var, reg=reg, dep="slow")


def cst(var: str, value: int) -> COp:
    return COp("st", var, value=value)


def cmf() -> COp:
    return COp("mf")


@dataclass
class ConformTest:
    """A named conformance test.

    ``exists`` is a disjunction of conjunctions over final load values
    (herd's ``exists (... /\\ ...) \\/ (...)``); ``expect`` states
    whether any ``exists`` clause is reachable under x86-TSO
    (``"forbidden"`` / ``"allowed"``; ``""`` = unstated, expectation
    checks are skipped).
    """

    name: str
    threads: List[List[COp]]
    exists: List[Dict[str, int]] = field(default_factory=list)
    expect: str = ""  # "forbidden" | "allowed" | ""
    family: str = ""
    description: str = ""

    def all_vars(self) -> List[str]:
        seen: List[str] = []
        for thread in self.threads:
            for op in thread:
                if op.var and op.var not in seen:
                    seen.append(op.var)
        return seen

    def load_keys(self) -> List[str]:
        return [f"{tid}:{op.reg}"
                for tid, thread in enumerate(self.threads)
                for op in thread if op.kind == "ld"]

    def validate(self) -> None:
        for tid, thread in enumerate(self.threads):
            regs: Set[str] = set()
            prev_was_load = False
            for op in thread:
                if op.kind == "ld":
                    if not op.reg:
                        raise ValueError(f"{self.name}: load without reg "
                                         f"in thread {tid}")
                    if op.reg in regs:
                        raise ValueError(f"{self.name}: duplicate reg "
                                         f"{op.reg!r} in thread {tid}")
                    regs.add(op.reg)
                    if op.dep == "dep" and not prev_was_load:
                        raise ValueError(
                            f"{self.name}: dep load with no preceding "
                            f"load in thread {tid}")
                    prev_was_load = True
                elif op.kind in ("st", "mf"):
                    if op.kind == "mf":
                        prev_was_load = False
                else:
                    raise ValueError(f"{self.name}: bad op kind "
                                     f"{op.kind!r}")
        keys = set(self.load_keys())
        for clause in self.exists:
            for key in clause:
                if key not in keys:
                    raise ValueError(f"{self.name}: exists references "
                                     f"unknown register {key!r}")


# ------------------------------------------------------------- adapters
def to_litmus(test: ConformTest) -> LitmusTest:
    """Lower to the simulator-facing :class:`LitmusTest`.

    ``forbidden`` is populated only for expect-forbidden tests, so
    :func:`repro.consistency.litmus.run_litmus` flags a hit directly.
    """
    threads: List[List[lit.Op]] = []
    for tid, ops in enumerate(test.threads):
        thread: List[lit.Op] = []
        for op in ops:
            if op.kind == "st":
                thread.append(lit.st(op.var, op.value))
            elif op.kind == "mf":
                thread.append(lit.fence())
            elif op.dep == "dep":
                thread.append(lit.ld_dep(op.var, f"{tid}:{op.reg}"))
            elif op.dep == "slow":
                thread.append(lit.ld_slow(op.var, f"{tid}:{op.reg}",
                                          delay=SLOW_DELAY))
            else:
                thread.append(lit.ld(op.var, f"{tid}:{op.reg}"))
        threads.append(thread)
    forbidden = ([dict(clause) for clause in test.exists]
                 if test.expect == "forbidden" else [])
    return LitmusTest(name=test.name, threads=threads, forbidden=forbidden,
                      description=test.description or test.family)


def to_operational(test: ConformTest) -> List[List[opmodel.TOp]]:
    threads: List[List[opmodel.TOp]] = []
    for ops in test.threads:
        thread: List[opmodel.TOp] = []
        for op in ops:
            if op.kind == "st":
                thread.append(opmodel.st(op.var, op.value))
            elif op.kind == "mf":
                thread.append(opmodel.mf())
            else:
                thread.append(opmodel.ld(op.var, op.reg))
        threads.append(thread)
    return threads


def to_axiomatic(test: ConformTest) -> List[List[SimpleOp]]:
    threads: List[List[SimpleOp]] = []
    for tid, ops in enumerate(test.threads):
        thread: List[SimpleOp] = []
        for op in ops:
            if op.kind == "st":
                thread.append(SimpleOp(tid, "st", op.var))
            elif op.kind == "mf":
                thread.append(SimpleOp(tid, "mf"))
            else:
                thread.append(SimpleOp(tid, "ld", op.var,
                                       out=f"{tid}:{op.reg}"))
        threads.append(thread)
    return threads


# ------------------------------------------------------- outcome views
def _store_values(test: ConformTest) -> Dict[str, int]:
    values: Dict[str, int] = {}
    for thread in test.threads:
        for op in thread:
            if op.kind == "st":
                if op.var in values and values[op.var] != op.value:
                    raise ValueError(
                        f"{test.name}: axiomatic backend needs one store "
                        f"value per variable; {op.var!r} has several")
                values[op.var] = op.value
    return values


def operational_outcomes(test: ConformTest) -> Set[Outcome]:
    """Reachable final load valuations under the abstract machine."""
    keys = test.load_keys()
    raw = opmodel.enumerate_outcomes(to_operational(test))
    outcomes: Set[Outcome] = set()
    for valuation in raw:
        regs = dict(valuation)
        outcomes.add(frozenset(
            (key, regs.get(f"t{key.split(':', 1)[0]}:{key.split(':', 1)[1]}", 0))
            for key in keys))
    return outcomes


def axiomatic_outcomes(test: ConformTest) -> Set[Outcome]:
    """Reachable final load valuations under the axiomatic enumeration.

    ``legal_tso_outcomes`` speaks old/new; translated to integers via
    the (unique) store value per variable, 0 when old.
    """
    values = _store_values(test)
    var_of: Dict[str, str] = {}
    for tid, thread in enumerate(test.threads):
        for op in thread:
            if op.kind == "ld":
                var_of[f"{tid}:{op.reg}"] = op.var
    keys = test.load_keys()
    outcomes: Set[Outcome] = set()
    for loads in legal_tso_outcomes(to_axiomatic(test)):
        outcomes.add(frozenset(
            (key, values.get(var_of[key], 0) if loads.get(key) == "new"
             else 0)
            for key in keys))
    return outcomes


def outcome_matches(outcome: Outcome, clause: Dict[str, int]) -> bool:
    return set(clause.items()) <= set(outcome)


def exists_reachable(outcomes: Set[Outcome],
                     exists: Sequence[Dict[str, int]]) -> bool:
    return any(outcome_matches(o, clause)
               for o in outcomes for clause in exists)
