"""Exhaustive protocol exploration behind ``repro conform --explore``.

Two full 4-tile scenarios, each run under every network delivery order
(sleep-set POR, state-fingerprint memoization) with the combined
coherence + WritersBlock + SoS-never-blocked invariant asserted on
every reachable state and deadlock-freedom (all injected operations
complete, no residue) on every path end:

* ``mp`` — the paper's message-passing shape at protocol level: a
  reader holds a lockdown on the data line while a writer races two
  more sharers; the write must stay blocked until the deferred ack and
  every interleaving must drain.
* ``sos`` — the §3.5.2 deadlock-avoidance case: a write is
  WritersBlock'd (blocked hint delivered), and the would-be SoS core
  launches a bypass load that must complete — via an uncacheable
  tear-off — while the write is *still* blocked, in every delivery
  order.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..common.types import CacheState, LineAddr
from ..verification.explorer import ExplorationResult, VerifSystem, explore
from ..verification.properties import conform_invariant, no_residue

#: The MP data line and the flag line (distinct cache lines, distinct
#: directory homes) — cross-line message traffic is what the sleep-set
#: reduction prunes.
LINE = LineAddr(0x40)
ADDR = 0x1000
FLAG_LINE = LineAddr(0x41)
FLAG_ADDR = 0x1040


def _final(expect_loads: int, expect_grants: int):
    def check(system: VerifSystem) -> Optional[str]:
        residue = no_residue(system)
        if residue:
            return residue
        loads = sum(len(core.load_results) for core in system.cores)
        grants = sum(core.writes_granted for core in system.cores)
        if loads < expect_loads:
            return f"deadlock: only {loads}/{expect_loads} loads completed"
        if grants < expect_grants:
            return f"deadlock: only {grants}/{expect_grants} writes granted"
        return None
    return check


def explore_mp(*, por: bool = True,
               max_states: int = 20_000) -> ExplorationResult:
    """The paper's MP shape at protocol level (4 tiles, 2 lines).

    The reader (core 0) holds a lockdown on the *data* line while the
    writer (core 1) updates data and flag concurrently and bystanders
    (cores 2, 3) share both lines.  The data write must stay blocked
    until the deferred ack; the flag write is independent traffic — the
    cross-line reordering the sleep sets prune.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_load(ADDR)
        system.cores[2].issue_load(FLAG_ADDR)
        system.cores[3].issue_load(ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        core0 = system.cores[0]
        loads = sum(len(core.load_results) for core in system.cores)
        if not system.scratch.get("locked") and loads == 3:
            system.scratch["locked"] = True
            core0.lockdowns.add(LINE)
            system.cores[1].request_write(LINE)
            system.cores[1].request_write(FLAG_LINE)
            return
        if LINE in core0.nacked:
            core0.release_lockdown(LINE)

    def invariant(system: VerifSystem) -> Optional[str]:
        problem = conform_invariant(system)
        if problem:
            return problem
        # While the lockdown holds, the *data* write must not be
        # granted (the flag write is free to complete).
        if LINE in system.cores[0].lockdowns and \
                system.caches[1].line_state(LINE) is CacheState.M:
            return "data line granted while the reader's lockdown holds"
        return None

    return explore(setup, invariant,
                   _final(expect_loads=3, expect_grants=2),
                   num_tiles=4, max_states=max_states, por=por,
                   on_quiescent=on_quiescent)


def _sos_invariant(system: VerifSystem) -> Optional[str]:
    problem = conform_invariant(system)
    if problem:
        return problem
    # Only the *data* line is guarded; the independent flag-line write
    # may complete while the lockdown holds.
    if LINE in system.cores[0].lockdowns and \
            system.caches[1].line_state(LINE) is CacheState.M:
        return "data write granted while the SoS holder's lockdown holds"
    return None


def explore_sos(*, por: bool = True,
                max_states: int = 20_000) -> ExplorationResult:
    """SoS bypass while the write is WritersBlock'd (4 tiles).

    The SoS load (core 2) is issued only once the directory's blocked
    hint reached the writer — the paper's trigger for abandoning the
    piggyback — and the final check demands it completed even though
    the write stays blocked until the lockdown is released.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_load(ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        core0, core1 = system.cores[0], system.cores[1]
        core2, core3 = system.cores[2], system.cores[3]
        if not system.scratch.get("locked") and core0.load_results:
            system.scratch["locked"] = True
            core0.lockdowns.add(LINE)
            core1.request_write(LINE)
            return
        if not system.scratch.get("sos") and \
                system.caches[1].write_blocked(LINE):
            system.scratch["sos"] = True
            core2.issue_sos_load(ADDR)
            core3.issue_load(ADDR + 8)  # plain read of the blocked line
            core1.request_write(FLAG_LINE)  # independent cross-line write
            return
        if system.scratch.get("sos") and not system.scratch.get("released") \
                and core2.load_results:
            # The SoS load completed while the write was still blocked —
            # the uncacheable tear-off must have served it.
            system.scratch["released"] = True
            core0.release_lockdown(LINE)

    def invariant(system: VerifSystem) -> Optional[str]:
        problem = _sos_invariant(system)
        if problem:
            return problem
        if system.scratch.get("released"):
            sos_results = system.cores[2].load_results
            if sos_results and not sos_results[0][2]:
                return "SoS load was served a cacheable copy while the " \
                       "line was WritersBlock'd (expected tear-off)"
        return None

    return explore(setup, invariant,
                   _final(expect_loads=3, expect_grants=2),
                   num_tiles=4, max_states=max_states, por=por,
                   on_quiescent=on_quiescent)


SCENARIOS: Dict[str, Callable[..., ExplorationResult]] = {
    "mp": explore_mp,
    "sos": explore_sos,
}


def run_explorations(*, por: bool = True,
                     max_states: int = 20_000) -> Dict[str, Dict]:
    """Run every scenario; returns JSON-ready stats per scenario."""
    summary: Dict[str, Dict] = {}
    for name in sorted(SCENARIOS):
        result = SCENARIOS[name](por=por, max_states=max_states)
        summary[name] = {
            "ok": result.ok,
            "states": result.states_explored,
            "paths": result.paths_completed,
            "deduplicated": result.deduplicated,
            "sleep_pruned": result.sleep_pruned,
            "max_pending": result.max_pending,
            "violations": result.violations[:5],
        }
    return summary
