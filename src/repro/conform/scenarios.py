"""Exhaustive protocol exploration behind ``repro conform --explore``.

Two full 4-tile scenarios, each run under every network delivery order
(sleep-set POR, state-fingerprint memoization) with the combined
coherence + WritersBlock + SoS-never-blocked invariant asserted on
every reachable state and deadlock-freedom (all injected operations
complete, no residue) on every path end:

* ``mp`` — the paper's message-passing shape at protocol level: a
  reader holds a lockdown on the data line while a writer races two
  more sharers; the write must stay blocked until the deferred ack and
  every interleaving must drain.
* ``sos`` — the §3.5.2 deadlock-avoidance case: a write is
  WritersBlock'd (blocked hint delivered), and the would-be SoS core
  launches a bypass load that must complete — via an uncacheable
  tear-off — while the write is *still* blocked, in every delivery
  order.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..common.params import CacheParams
from ..common.types import CacheState, LineAddr
from ..verification.explorer import ExplorationResult, VerifSystem, explore
from ..verification.properties import (backend_cycle_invariant,
                                       backend_quiescent_invariant,
                                       conform_invariant, no_residue)

#: The MP data line and the flag line (distinct cache lines, distinct
#: directory homes) — cross-line message traffic is what the sleep-set
#: reduction prunes.
LINE = LineAddr(0x40)
ADDR = 0x1000
FLAG_LINE = LineAddr(0x41)
FLAG_ADDR = 0x1040


def _final(expect_loads: int, expect_grants: int):
    def check(system: VerifSystem) -> Optional[str]:
        residue = no_residue(system)
        if residue:
            return residue
        loads = sum(len(core.load_results) for core in system.cores)
        grants = sum(core.writes_granted for core in system.cores)
        if loads < expect_loads:
            return f"deadlock: only {loads}/{expect_loads} loads completed"
        if grants < expect_grants:
            return f"deadlock: only {grants}/{expect_grants} writes granted"
        return None
    return check


def explore_mp(*, por: bool = True, max_states: int = 20_000,
               coverage=None, progress=None) -> ExplorationResult:
    """The paper's MP shape at protocol level (4 tiles, 2 lines).

    The reader (core 0) holds a lockdown on the *data* line while the
    writer (core 1) updates data and flag concurrently and bystanders
    (cores 2, 3) share both lines.  The data write must stay blocked
    until the deferred ack; the flag write is independent traffic — the
    cross-line reordering the sleep sets prune.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_load(ADDR)
        system.cores[2].issue_load(FLAG_ADDR)
        system.cores[3].issue_load(ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        core0 = system.cores[0]
        loads = sum(len(core.load_results) for core in system.cores)
        if not system.scratch.get("locked") and loads == 3:
            system.scratch["locked"] = True
            core0.lockdowns.add(LINE)
            system.cores[1].request_write(LINE)
            system.cores[1].request_write(FLAG_LINE)
            return
        if LINE in core0.nacked:
            core0.release_lockdown(LINE)

    def invariant(system: VerifSystem) -> Optional[str]:
        problem = conform_invariant(system)
        if problem:
            return problem
        # While the lockdown holds, the *data* write must not be
        # granted (the flag write is free to complete).
        if LINE in system.cores[0].lockdowns and \
                system.caches[1].line_state(LINE) is CacheState.M:
            return "data line granted while the reader's lockdown holds"
        return None

    return explore(setup, invariant,
                   _final(expect_loads=3, expect_grants=2),
                   num_tiles=4, max_states=max_states, por=por,
                   on_quiescent=on_quiescent, coverage=coverage,
                   progress=progress)


def _sos_invariant(system: VerifSystem) -> Optional[str]:
    problem = conform_invariant(system)
    if problem:
        return problem
    # Only the *data* line is guarded; the independent flag-line write
    # may complete while the lockdown holds.
    if LINE in system.cores[0].lockdowns and \
            system.caches[1].line_state(LINE) is CacheState.M:
        return "data write granted while the SoS holder's lockdown holds"
    return None


def explore_sos(*, por: bool = True, max_states: int = 20_000,
                coverage=None, progress=None) -> ExplorationResult:
    """SoS bypass while the write is WritersBlock'd (4 tiles).

    The SoS load (core 2) is issued only once the directory's blocked
    hint reached the writer — the paper's trigger for abandoning the
    piggyback — and the final check demands it completed even though
    the write stays blocked until the lockdown is released.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_load(ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        core0, core1 = system.cores[0], system.cores[1]
        core2, core3 = system.cores[2], system.cores[3]
        if not system.scratch.get("locked") and core0.load_results:
            system.scratch["locked"] = True
            core0.lockdowns.add(LINE)
            core1.request_write(LINE)
            return
        if not system.scratch.get("sos") and \
                system.caches[1].write_blocked(LINE):
            system.scratch["sos"] = True
            core2.issue_sos_load(ADDR)
            core3.issue_load(ADDR + 8)  # plain read of the blocked line
            core1.request_write(FLAG_LINE)  # independent cross-line write
            return
        if system.scratch.get("sos") and not system.scratch.get("released") \
                and core2.load_results:
            # The SoS load completed while the write was still blocked —
            # the uncacheable tear-off must have served it.
            system.scratch["released"] = True
            core0.release_lockdown(LINE)

    def invariant(system: VerifSystem) -> Optional[str]:
        problem = _sos_invariant(system)
        if problem:
            return problem
        if system.scratch.get("released"):
            sos_results = system.cores[2].load_results
            if sos_results and not sos_results[0][2]:
                return "SoS load was served a cacheable copy while the " \
                       "line was WritersBlock'd (expected tear-off)"
        return None

    return explore(setup, invariant,
                   _final(expect_loads=3, expect_grants=2),
                   num_tiles=4, max_states=max_states, por=por,
                   on_quiescent=on_quiescent, coverage=coverage,
                   progress=progress)


def _drain_retries(system: VerifSystem) -> bool:
    """Reissue every load bounced with ``on_must_retry`` (a tardis fill
    can arrive with its lease already expired, an rcp speculative copy
    can be reversed under a pending hit); True if any reissued."""
    return any([core.reissue_retries() for core in system.cores])


def _backend_final(expect_loads: int, expect_grants: int,
                   legal_reads: Optional[Dict[int, tuple]] = None):
    """Path-end check for backend scenarios: drained + quiescent
    invariants + progress, plus per-core read-value admissibility
    (``legal_reads`` maps core -> admissible (version, value) set for
    that core's *last* completed load)."""

    def check(system: VerifSystem) -> Optional[str]:
        problem = no_residue(system) or backend_quiescent_invariant(system)
        if problem:
            return problem
        loads = sum(len(core.load_results) for core in system.cores)
        grants = sum(core.writes_granted for core in system.cores)
        if loads < expect_loads:
            return f"deadlock: only {loads}/{expect_loads} loads completed"
        if grants < expect_grants:
            return f"deadlock: only {grants}/{expect_grants} writes granted"
        for tile, legal in (legal_reads or {}).items():
            observed = system.cores[tile].load_results[-1][1]
            if observed not in legal:
                return (f"core {tile} read {observed}, not one of the "
                        f"admissible versions {sorted(legal)}")
        return None
    return check


def explore_tardis_lease(*, por: bool = True, max_states: int = 20_000,
                         coverage=None, progress=None) -> ExplorationResult:
    """Lease expiry and renewal under a racing writer (4 tiles).

    With ``tardis_lease=1`` every granted lease dies almost immediately,
    so the re-reads after the write exercise the RENEW path, fills that
    arrive already expired (bounced with ``on_must_retry`` and
    reissued), and the exponential lease escalation.  Two readers share
    the data line, a bystander touches the flag line (the cross-line
    traffic the sleep sets prune), then the writer takes the line over —
    with no invalidations ever sent.  Each re-read must observe either
    the initial version or the new write, never a mixed/overlapping one
    (the data-value invariant, asserted on every state via the backend's
    cycle invariants and at every path end via the quiescent ones).
    """
    params = CacheParams(tardis_lease=1)

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_load(ADDR)
        system.cores[2].issue_load(ADDR)
        system.cores[3].issue_load(FLAG_ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        if _drain_retries(system):
            return
        loads = sum(len(core.load_results) for core in system.cores)
        if not system.scratch.get("write") and loads >= 3:
            system.scratch["write"] = True
            system.cores[1].request_write(LINE)
            return
        if system.scratch.get("write") \
                and not system.scratch.get("stored") \
                and system.cores[1].writes_granted:
            system.scratch["stored"] = True
            system.caches[1].perform_store(ADDR, 1, 42)
            system.cores[0].issue_load(ADDR)
            system.cores[2].issue_load(ADDR)

    legal = {0: {(0, 0), (1, 42)}, 2: {(0, 0), (1, 42)}}
    return explore(setup, backend_cycle_invariant,
                   _backend_final(expect_loads=5, expect_grants=1,
                                 legal_reads=legal),
                   num_tiles=4, max_states=max_states, por=por,
                   backend="tardis", cache_params=params,
                   on_quiescent=on_quiescent, coverage=coverage,
                   progress=progress)


def explore_tardis_recall(*, por: bool = True, max_states: int = 20_000,
                          coverage=None, progress=None) -> ExplorationResult:
    """Ownership recall and timestamp bumping on transfer (4 tiles).

    A writer owns the line (M); a reader's GETS forces the directory to
    RECALL the owner's copy, and the read must observe the owner's
    store (write propagation through the recall, no writeback race).  A
    second writer then takes the line from shared state — the directory
    must bump ``wts`` past every outstanding lease — and the *former*
    owner re-reads: tardis legitimately lets it bind its still-leased
    old version OR fetch the new one, but never an overlap of the two.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[1].request_write(LINE)

    def on_quiescent(system: VerifSystem) -> None:
        if _drain_retries(system):
            return
        cores, caches = system.cores, system.caches
        if not system.scratch.get("stored") and cores[1].writes_granted:
            system.scratch["stored"] = True
            caches[1].perform_store(ADDR, 1, 7)
            cores[0].issue_load(ADDR)       # forces a RECALL of the M copy
            cores[3].issue_load(FLAG_ADDR)  # independent cross-line read
            return
        if system.scratch.get("stored") \
                and not system.scratch.get("upgrade") \
                and cores[0].load_results:
            system.scratch["upgrade"] = True
            cores[2].request_write(LINE)
            return
        if system.scratch.get("upgrade") \
                and not system.scratch.get("stored2") \
                and cores[2].writes_granted:
            system.scratch["stored2"] = True
            caches[2].perform_store(ADDR, 2, 9)
            cores[1].issue_load(ADDR)       # former owner re-reads

    legal = {0: {(1, 7)}, 1: {(1, 7), (2, 9)}}
    return explore(setup, backend_cycle_invariant,
                   _backend_final(expect_loads=3, expect_grants=2,
                                 legal_reads=legal),
                   num_tiles=4, max_states=max_states, por=por,
                   backend="tardis", on_quiescent=on_quiescent,
                   coverage=coverage, progress=progress)


def _rcp_invariant(system: VerifSystem) -> Optional[str]:
    problem = backend_cycle_invariant(system)
    if problem:
        return problem
    # The reversal contract: the instant the writer holds M, every
    # speculative (and stable) copy must already be gone — a surviving
    # copy would let a squashed load commit against the old version.
    if system.caches[1].line_state(LINE) is CacheState.M:
        for tile in (0, 2, 3):
            if system.caches[tile].line_state(LINE) is not CacheState.I:
                return (f"write granted while cache {tile} still holds "
                        f"{system.caches[tile].line_state(LINE)} on the "
                        f"data line")
    return None


def explore_rcp_reversal(*, por: bool = True, max_states: int = 20_000,
                         coverage=None, progress=None) -> ExplorationResult:
    """Speculative acquisition raced by a conflicting write (4 tiles).

    Two readers acquire the data line speculatively (GETS_SPEC) while a
    writer's GETX races them at the directory and a bystander touches
    the flag line (the cross-line traffic the sleep sets prune).
    Depending on delivery order the directory either reverses the
    speculative copies (UNDO / UNDO_ACK) or parks the spec reads behind
    the write and serves them via recall — every order must leave the
    writer's M copy exclusive, and the ordered re-reads after the store
    must observe exactly the written version (the reversal squashed
    anything older).
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_spec_load(ADDR)
        system.cores[2].issue_spec_load(ADDR)
        system.cores[1].request_write(LINE)
        system.cores[3].issue_load(FLAG_ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        if _drain_retries(system):
            return
        loads = sum(len(core.load_results) for core in system.cores)
        if not system.scratch.get("stored") and loads >= 3 \
                and system.cores[1].writes_granted:
            if system.caches[1].line_state(LINE) is not CacheState.M:
                # When the GETX won the race, the parked speculative
                # reads drained through a recall and demoted the writer
                # — take the line back before storing.
                system.cores[1].request_write(LINE)
                return
            system.scratch["stored"] = True
            system.caches[1].perform_store(ADDR, 1, 42)
            system.cores[0].issue_load(ADDR)
            system.cores[2].issue_load(ADDR)

    legal = {0: {(1, 42)}, 2: {(1, 42)}}
    return explore(setup, _rcp_invariant,
                   _backend_final(expect_loads=5, expect_grants=1,
                                  legal_reads=legal),
                   num_tiles=4, max_states=max_states, por=por,
                   backend="rcp", on_quiescent=on_quiescent,
                   coverage=coverage, progress=progress)


def explore_rcp_confirm(*, por: bool = True, max_states: int = 20_000,
                        coverage=None, progress=None) -> ExplorationResult:
    """Confirm-on-commit racing a conflicting write (4 tiles).

    A speculative reader commits its load (ordered re-read of the SPEC
    copy), firing a CONFIRM toward home exactly as a writer's GETX
    races it there, with an independent flag-line write as cross-line
    traffic.  CONFIRM-first promotes the reader to a stable sharer the
    write must then invalidate; GETX-first reverses the registration
    and the in-flight CONFIRM must be ignored as stale while the UNDO
    lands on the already-promoted copy.  Afterwards a second core
    speculatively reads the dirty line (recall with a speculative
    grant) and confirms uncontended — it must observe the store.
    """

    def setup(system: VerifSystem) -> None:
        system.cores[0].issue_spec_load(ADDR)
        system.cores[3].issue_load(FLAG_ADDR)

    def on_quiescent(system: VerifSystem) -> None:
        if _drain_retries(system):
            return
        cores, caches = system.cores, system.caches
        if not system.scratch.get("race") and cores[0].load_results:
            system.scratch["race"] = True
            cores[0].issue_load(ADDR)        # promotes the SPEC copy
            cores[1].request_write(LINE)     # GETX races the CONFIRM
            cores[1].request_write(FLAG_LINE)
            return
        if system.scratch.get("race") and not system.scratch.get("stored") \
                and len(cores[0].load_results) >= 2:
            if caches[1].line_state(LINE) is not CacheState.M:
                # A reversed-then-retried commit read can demote the
                # writer through a recall — take the line back.
                cores[1].request_write(LINE)
                return
            system.scratch["stored"] = True
            caches[1].perform_store(ADDR, 1, 42)
            cores[2].issue_spec_load(ADDR)   # spec read of a dirty line
            return
        if system.scratch.get("stored") and not system.scratch.get("commit") \
                and cores[2].load_results:
            system.scratch["commit"] = True
            cores[2].issue_load(ADDR)        # uncontended confirm

    legal = {0: {(0, 0)}, 2: {(1, 42)}}
    return explore(setup, _rcp_invariant,
                   _backend_final(expect_loads=5, expect_grants=2,
                                  legal_reads=legal),
                   num_tiles=4, max_states=max_states, por=por,
                   backend="rcp", on_quiescent=on_quiescent,
                   coverage=coverage, progress=progress)


SCENARIOS: Dict[str, Callable[..., ExplorationResult]] = {
    "mp": explore_mp,
    "sos": explore_sos,
}

TARDIS_SCENARIOS: Dict[str, Callable[..., ExplorationResult]] = {
    "tardis_lease": explore_tardis_lease,
    "tardis_recall": explore_tardis_recall,
}

RCP_SCENARIOS: Dict[str, Callable[..., ExplorationResult]] = {
    "rcp_reversal": explore_rcp_reversal,
    "rcp_confirm": explore_rcp_confirm,
}

#: Exploration scenarios per coherence backend: the baseline set proves
#: WritersBlock properties that do not exist under tardis or rcp, the
#: tardis set leases/recalls, the rcp set reversal and confirm races —
#: so ``--explore`` picks the set matching ``--backend``.
SCENARIO_SETS: Dict[str, Dict[str, Callable[..., ExplorationResult]]] = {
    "baseline": SCENARIOS,
    "rcp": RCP_SCENARIOS,
    "tardis": TARDIS_SCENARIOS,
}


def run_explorations(*, por: bool = True, max_states: int = 20_000,
                     backend: str = "baseline", coverage=None,
                     progress=None) -> Dict[str, Dict]:
    """Run every scenario for *backend*; JSON-ready stats per scenario.

    ``coverage`` (a :class:`repro.obs.coverage.CoverageObserver`)
    accumulates transition tuples across all scenarios and explored
    interleavings; ``progress`` fires periodically during each search
    (see :func:`repro.verification.explorer.explore`).
    """
    scenarios = SCENARIO_SETS.get(backend, {})
    summary: Dict[str, Dict] = {}
    for name in sorted(scenarios):
        result = scenarios[name](por=por, max_states=max_states,
                                 coverage=coverage, progress=progress)
        summary[name] = {
            "ok": result.ok,
            "states": result.states_explored,
            "paths": result.paths_completed,
            "deduplicated": result.deduplicated,
            "sleep_pruned": result.sleep_pruned,
            "max_pending": result.max_pending,
            "transitions": result.transitions,
            "memoized": result.memoized,
            "frontier_peak": result.frontier_peak,
            "memo_hit_rate": round(result.memo_hit_rate, 4),
            "sleep_prune_ratio": round(result.sleep_prune_ratio, 4),
            "depth_histogram": {str(depth): count for depth, count in
                                sorted(result.depth_histogram.items())},
            "violations": result.violations[:5],
        }
    return summary
