"""Transition-coverage collection across the verification batteries.

One :class:`~repro.obs.coverage.CoverageObserver` rides along every
kind of run the repo uses as correctness evidence — the conformance
corpus (each test across its deterministic delay grid), the directed
observability scenarios, the seeded differential-fuzz programs, and the
sleep-set POR explorer — with :attr:`observer.source` retagged between
phases, so the resulting :class:`~repro.obs.coverage.CoverageMap`
answers *which protocol transitions does our evidence actually
exercise*, per source.  Everything here is deterministic (pinned seeds,
fixed grids), so coverage payloads are byte-stable across serial,
pooled and cache-replay runs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.params import table6_system
from ..common.types import CommitMode
from ..consistency.litmus import litmus_traces
from ..obs.coverage import CoverageMap, CoverageObserver
from ..obs.scenarios import TRACE_SCENARIOS, scenario_traces
from ..sim.system import MulticoreSystem
from ..workloads.trace import AddressSpace, TraceBuilder
from .differential import conform_params, default_delays
from .model import ConformTest, to_litmus
from .runner import default_mode_for, full_requested, load_corpus, tier1_slice

#: The phases :func:`collect_coverage` runs, in order.
COVERAGE_SOURCES = ("corpus", "scenario", "capacity", "fuzz", "explore")

#: Seeds for the fuzz phase — the first 20 of the golden fuzz corpus,
#: plus seed 49 (the pinned rcp regression program: its racing
#: test-and-sets are the only tier-1 source of the self-reversal,
#: stale-undo and orphaned-fill transitions).
FUZZ_SEEDS: Tuple[int, ...] = tuple(range(20)) + (49,)

Echo = Optional[Callable[[str], None]]


def corpus_coverage(observer: CoverageObserver,
                    tests: Sequence[ConformTest], *,
                    backend: str, core_class: str = "SLM",
                    echo: Echo = None) -> int:
    """Run every test across its deterministic delay grid; returns runs.

    Mirrors the sim phase of :func:`repro.conform.differential.check_test`
    (same params, same :func:`default_delays` grid) minus the outcome
    checking — the point here is which transitions fire, not whether
    the values are legal (the conformance battery already asserts that).
    """
    mode = default_mode_for(backend)
    runs = 0
    for test in tests:
        params = conform_params(test, core_class=core_class, mode=mode,
                                backend=backend)
        litmus = to_litmus(test)
        for combo in default_delays(len(test.threads)):
            space = AddressSpace(params.cache.line_bytes)
            traces, __, __ = litmus_traces(litmus, space, extra_delays=combo)
            system = MulticoreSystem(params)
            observer.attach_system(system)
            system.load_program(traces)
            system.run()
            runs += 1
        if echo is not None:
            echo(f"corpus/{test.name}: {len(observer.counts)} transitions")
    return runs


def scenario_coverage(observer: CoverageObserver, *, backend: str,
                      names: Optional[Sequence[str]] = None,
                      core_class: str = "SLM") -> int:
    """Run the directed trace scenarios (mp, sos); returns runs."""
    mode = default_mode_for(backend)
    runs = 0
    for name in (names if names is not None else sorted(TRACE_SCENARIOS)):
        params = table6_system(core_class, num_cores=4, commit_mode=mode,
                               backend=backend)
        system = MulticoreSystem(params)
        observer.attach_system(system)
        system.load_program(scenario_traces(name))
        system.run()
        runs += 1
    return runs


#: Lines streamed by the capacity scenario — more than the shrunken
#: hierarchy below can hold at any level.
CAPACITY_LINES = 8


def _capacity_params(backend: str, core_class: str):
    """Table 6 params with the hierarchy shrunk to a handful of lines."""
    params = table6_system(core_class, num_cores=2,
                          commit_mode=default_mode_for(backend),
                          backend=backend)
    cache = dataclasses.replace(
        params.cache, l1_sets=1, l1_ways=1, l2_sets=1, l2_ways=2,
        llc_sets_per_bank=1, llc_ways=2, dir_eviction_buffer=1)
    return dataclasses.replace(params, cache=cache)


def _capacity_traces(line_bytes: int, *, ping_pong: bool) -> List:
    space = AddressSpace(line_bytes)
    addrs = space.new_array("cap", CAPACITY_LINES)
    first = TraceBuilder()
    second = TraceBuilder()
    if ping_pong:
        # Both cores write the whole stream: ownership migrates while
        # replacement pressure is evicting dirty lines underneath it.
        for addr in addrs:
            first.store(addr, 1)
            second.store(addr, 2)
    else:
        # Writer dirties then revisits the stream (M-state writebacks);
        # the reader shares it both ways (S-state replacement).
        for addr in addrs:
            first.store(addr, 1)
        for addr in addrs:
            first.load(first.reg(), addr)
        for addr in addrs:
            second.load(second.reg(), addr)
        for addr in reversed(addrs):
            second.load(second.reg(), addr)
    return [first.build(), second.build()]


def capacity_coverage(observer: CoverageObserver, *, backend: str,
                      core_class: str = "SLM") -> int:
    """Stream more lines than a shrunken hierarchy holds; returns runs.

    Neither the litmus corpus nor the directed scenarios ever overflow
    a Table-6-sized cache, so the replacement machinery — PUTM/PUTS
    writebacks, the directory's EVICTING safe-passage parking (paper
    §3.5.1), recall-on-evict under tardis — only shows up here.
    """
    runs = 0
    params = _capacity_params(backend, core_class)
    for ping_pong in (False, True):
        system = MulticoreSystem(params)
        observer.attach_system(system)
        system.load_program(_capacity_traces(params.cache.line_bytes,
                                             ping_pong=ping_pong))
        system.run()
        runs += 1
    return runs


def _fuzz_modes(backend: str) -> List[CommitMode]:
    from ..coherence.backend import get_backend
    from ..perf.corpus import FUZZ_MODES

    supported = get_backend(backend).supported_commit_modes
    if supported is None:
        return list(FUZZ_MODES)
    return [mode for mode in FUZZ_MODES if mode in supported]


def fuzz_coverage(observer: CoverageObserver, *, backend: str,
                  seeds: Sequence[int] = FUZZ_SEEDS) -> int:
    """Replay the pinned differential-fuzz programs; returns runs.

    Uses the perf corpus's deterministic seed -> (program, mode, skew)
    mapping, with the commit-mode rotation restricted to what *backend*
    supports (tardis has no OOO_WB).
    """
    from ..perf.corpus import fuzz_case

    modes = _fuzz_modes(backend)
    runs = 0
    for seed in seeds:
        case = fuzz_case(seed)
        mode = modes[seed % len(modes)]
        params = dataclasses.replace(
            case.params, backend=backend, commit_mode=mode,
            writers_block=mode is CommitMode.OOO_WB)
        system = MulticoreSystem(params)
        observer.attach_system(system)
        system.load_program(case.trace_lists())
        system.run()
        runs += 1
    return runs


def explore_coverage(observer: CoverageObserver, *, backend: str,
                     por: bool = True, max_states: int = 20_000,
                     progress=None) -> Dict[str, Dict]:
    """Run the backend's POR exploration scenarios with coverage attached.

    Returns the per-scenario telemetry summaries (the same shape
    ``repro conform --json`` reports).
    """
    from .scenarios import run_explorations

    return run_explorations(por=por, max_states=max_states,
                            backend=backend, coverage=observer,
                            progress=progress)


def collect_coverage(backend: str, *,
                     sources: Sequence[str] = COVERAGE_SOURCES,
                     tests: Optional[Sequence[ConformTest]] = None,
                     scenario_names: Optional[Sequence[str]] = None,
                     full: bool = False,
                     fuzz_seeds: Sequence[int] = FUZZ_SEEDS,
                     max_states: int = 20_000,
                     core_class: str = "SLM",
                     echo: Echo = None) -> Tuple[CoverageMap, Dict]:
    """Collect one backend's coverage across the requested *sources*.

    ``tests`` defaults to the tier-1 corpus slice (the full corpus with
    ``full=True`` or ``REPRO_CONFORM_FULL=1``); ``scenario_names``
    restricts the scenario phase.  Returns the merged
    :class:`CoverageMap` plus a JSON-ready info dict recording what
    each phase ran (test counts, sim runs, exploration telemetry).
    """
    observer = CoverageObserver(backend)
    info: Dict = {"backend": backend, "sources": {}}
    if "corpus" in sources:
        if tests is None:
            corpus = load_corpus()
            tests = (corpus if full or full_requested()
                     else tier1_slice(corpus))
        observer.source = "corpus"
        runs = corpus_coverage(observer, tests, backend=backend,
                               core_class=core_class, echo=echo)
        info["sources"]["corpus"] = {"tests": len(tests), "runs": runs}
    if "scenario" in sources:
        observer.source = "scenario"
        runs = scenario_coverage(observer, backend=backend,
                                 names=scenario_names,
                                 core_class=core_class)
        info["sources"]["scenario"] = {"runs": runs}
    if "capacity" in sources:
        observer.source = "capacity"
        runs = capacity_coverage(observer, backend=backend,
                                 core_class=core_class)
        info["sources"]["capacity"] = {"runs": runs}
    if "fuzz" in sources:
        observer.source = "fuzz"
        runs = fuzz_coverage(observer, backend=backend, seeds=fuzz_seeds)
        info["sources"]["fuzz"] = {"runs": runs}
    if "explore" in sources:
        observer.source = "explore"
        explorations = explore_coverage(observer, backend=backend,
                                        max_states=max_states)
        info["sources"]["explore"] = {"scenarios": explorations}
    return observer.to_map(), info
