"""Parser and writer for herd7-style ``.litmus`` text.

The on-disk format mirrors herd's x86 dialect closely enough to be
eyeballed against the literature:

.. code-block:: none

    X86 MP+mf+dep
    "message passing, fenced writer, dependent reader"
    (* family: mp *)
    (* expect: forbidden *)
    { x=0; y=0; }
     P0          | P1          ;
     MOV [x],$1  | MOV EAX,[y] ;
     MFENCE      | MOVDEP EBX,[x] ;
    exists (1:EAX=1 /\\ 1:EBX=0)

Instructions: ``MOV [var],$n`` (store), ``MOV REG,[var]`` (load),
``MOVDEP REG,[var]`` (address-dependent load), ``MOVSLOW REG,[var]``
(late-resolving address) and ``MFENCE``.  The two ``MOV*`` variants are
our timing extension over herd — herd expresses dependencies through
register arithmetic, which the trace ISA lowers the same way.

The final condition is ``exists`` over ``tid:REG=value`` atoms (final
load values) and bare ``var=value`` atoms (final memory, herd's
convention — used by R/2+2W-style shapes), joined with ``/\\`` inside
clauses and ``\\/`` between parenthesised clauses.  Comments
``(* family: ... *)`` and ``(* expect: forbidden|allowed *)`` carry
corpus metadata; ``(* expect-sc: ... *)`` / ``(* expect-rmo: ... *)``
carry the same verdict under the SC and RMO model specs; unknown
``(* ... *)`` comments are ignored.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .model import COp, ConformTest

_INIT_RE = re.compile(r"^\{(.*)\}$")
_COMMENT_RE = re.compile(r"^\(\*\s*(.*?)\s*\*\)$")
_STORE_RE = re.compile(r"^MOV\s+\[(\w+)\]\s*,\s*\$(-?\d+)$")
_LOAD_RE = re.compile(r"^(MOV|MOVDEP|MOVSLOW)\s+(\w+)\s*,\s*\[(\w+)\]$")
_ATOM_RE = re.compile(r"^(\d+)\s*:\s*(\w+)\s*=\s*(-?\d+)$")
_MEM_ATOM_RE = re.compile(r"^(\w+)\s*=\s*(-?\d+)$")

_LOAD_DEP = {"MOV": "", "MOVDEP": "dep", "MOVSLOW": "slow"}
_DEP_MNEMONIC = {"": "MOV", "dep": "MOVDEP", "slow": "MOVSLOW"}


class LitmusParseError(ValueError):
    pass


def _parse_instruction(text: str) -> Optional[COp]:
    text = text.strip()
    if not text:
        return None
    if text == "MFENCE":
        return COp("mf")
    match = _STORE_RE.match(text)
    if match:
        return COp("st", match.group(1), value=int(match.group(2)))
    match = _LOAD_RE.match(text)
    if match:
        return COp("ld", match.group(3), reg=match.group(2),
                   dep=_LOAD_DEP[match.group(1)])
    raise LitmusParseError(f"unparseable instruction {text!r}")


def _parse_exists(text: str) -> List[Dict[str, int]]:
    body = text[len("exists"):].strip()
    if body.startswith("(") and body.endswith(")"):
        body = body[1:-1].strip()
    clauses: List[Dict[str, int]] = []
    for clause_text in body.split("\\/"):
        clause_text = clause_text.strip()
        if clause_text.startswith("(") and clause_text.endswith(")"):
            clause_text = clause_text[1:-1].strip()
        clause: Dict[str, int] = {}
        for atom_text in clause_text.split("/\\"):
            atom_text = atom_text.strip()
            match = _ATOM_RE.match(atom_text)
            if match:
                clause[f"{match.group(1)}:{match.group(2)}"] = \
                    int(match.group(3))
                continue
            match = _MEM_ATOM_RE.match(atom_text)
            if not match:
                raise LitmusParseError(
                    f"unparseable exists atom {atom_text!r}")
            clause[match.group(1)] = int(match.group(2))
        clauses.append(clause)
    return clauses


def parse_litmus(text: str) -> ConformTest:
    """Parse one ``.litmus`` document into a :class:`ConformTest`."""
    lines = [line.rstrip() for line in text.splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise LitmusParseError("empty litmus file")
    header = lines.pop(0).split(None, 1)
    if header[0] != "X86" or len(header) != 2:
        raise LitmusParseError("first line must be 'X86 <name>'")
    name = header[1].strip()
    description = ""
    family = ""
    expect = ""
    expect_sc = ""
    expect_rmo = ""
    init: Dict[str, int] = {}
    table: List[List[str]] = []
    exists: List[Dict[str, int]] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith('"') and stripped.endswith('"'):
            description = stripped[1:-1]
            continue
        comment = _COMMENT_RE.match(stripped)
        if comment:
            body = comment.group(1)
            if body.startswith("family:"):
                family = body[len("family:"):].strip()
            elif body.startswith("expect:"):
                expect = _parse_expect(body, "expect:")
            elif body.startswith("expect-sc:"):
                expect_sc = _parse_expect(body, "expect-sc:")
            elif body.startswith("expect-rmo:"):
                expect_rmo = _parse_expect(body, "expect-rmo:")
            continue
        match = _INIT_RE.match(stripped)
        if match:
            for item in match.group(1).split(";"):
                item = item.strip()
                if not item:
                    continue
                var, __, value = item.partition("=")
                init[var.strip()] = int(value.strip())
            continue
        if stripped.startswith("exists"):
            exists = _parse_exists(stripped)
            continue
        if "|" in stripped or stripped.endswith(";"):
            row = stripped.rstrip(";").split("|")
            table.append([cell.strip() for cell in row])
            continue
        raise LitmusParseError(f"unparseable line {stripped!r}")
    if not table:
        raise LitmusParseError(f"{name}: no thread table")
    header_row = table.pop(0)
    for index, label in enumerate(header_row):
        if label != f"P{index}":
            raise LitmusParseError(
                f"{name}: thread header must be P0 | P1 | ..., got "
                f"{header_row!r}")
    threads: List[List[COp]] = [[] for __ in header_row]
    for row in table:
        if len(row) > len(threads):
            raise LitmusParseError(f"{name}: row wider than header: {row!r}")
        for tid, cell in enumerate(row):
            op = _parse_instruction(cell)
            if op is not None:
                threads[tid].append(op)
    for var, value in init.items():
        if value != 0:
            raise LitmusParseError(
                f"{name}: non-zero initial value {var}={value} unsupported")
    test = ConformTest(name=name, threads=threads, exists=exists,
                       expect=expect, expect_sc=expect_sc,
                       expect_rmo=expect_rmo, family=family,
                       description=description)
    test.validate()
    return test


def _parse_expect(body: str, label: str) -> str:
    value = body[len(label):].strip()
    if value not in ("forbidden", "allowed"):
        raise LitmusParseError(
            f"{label[:-1]} must be forbidden/allowed, got {value!r}")
    return value


def _format_instruction(op: COp) -> str:
    if op.kind == "mf":
        return "MFENCE"
    if op.kind == "st":
        return f"MOV [{op.var}],${op.value}"
    return f"{_DEP_MNEMONIC[op.dep]} {op.reg},[{op.var}]"


def _format_exists(exists: List[Dict[str, int]]) -> str:
    clauses = []
    for clause in exists:
        atoms = " /\\ ".join(f"{key}={value}"
                             for key, value in clause.items())
        clauses.append(atoms if len(exists) == 1 else f"({atoms})")
    return "exists (" + " \\/ ".join(clauses) + ")"


def write_litmus(test: ConformTest) -> str:
    """Render a :class:`ConformTest` back to ``.litmus`` text.

    ``parse_litmus(write_litmus(t))`` is the identity on every corpus
    test (golden-checked), so witnesses can embed the full test text.
    """
    lines = [f"X86 {test.name}"]
    if test.description:
        lines.append(f'"{test.description}"')
    if test.family:
        lines.append(f"(* family: {test.family} *)")
    if test.expect:
        lines.append(f"(* expect: {test.expect} *)")
    if test.expect_sc:
        lines.append(f"(* expect-sc: {test.expect_sc} *)")
    if test.expect_rmo:
        lines.append(f"(* expect-rmo: {test.expect_rmo} *)")
    lines.append("{ " + " ".join(f"{var}=0;" for var in test.all_vars())
                 + " }")
    cells = [[_format_instruction(op) for op in thread]
             for thread in test.threads]
    rows = max(len(column) for column in cells)
    for column in cells:
        column.extend("" for __ in range(rows - len(column)))
    headers = [f"P{tid}" for tid in range(len(cells))]
    widths = [max(len(headers[tid]), *(len(cell) for cell in cells[tid]))
              for tid in range(len(cells))]
    lines.append(
        " " + " | ".join(headers[tid].ljust(widths[tid])
                         for tid in range(len(cells))).rstrip() + " ;")
    for row in range(rows):
        lines.append(
            " " + " | ".join(cells[tid][row].ljust(widths[tid])
                             for tid in range(len(cells))).rstrip() + " ;")
    if test.exists:
        lines.append(_format_exists(test.exists))
    return "\n".join(lines) + "\n"
