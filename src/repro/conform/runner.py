"""Corpus loading and batch conformance runs.

The committed corpus lives under ``tests/conformance/corpus/`` (one
``.litmus`` file per test, regenerable via ``repro conform --regen``).
:func:`run_conformance` drives the three-way differential checker over
a test list and aggregates per-family rows — the shape consumed by the
``conformance`` bench driver and by ``repro conform``.

Tier-1 (default) runs a deterministic stratified slice of the corpus so
the smoke path stays within budget; ``REPRO_CONFORM_FULL=1`` (or
``--full``) runs everything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..common.types import CommitMode
from .differential import TestReport, Violation, check_test
from .litmus_format import parse_litmus
from .model import ConformTest

#: Environment override for the corpus directory.
CORPUS_ENV = "REPRO_CORPUS_DIR"
#: Set to 1 to run the full corpus where a slice is the default.
FULL_ENV = "REPRO_CONFORM_FULL"

#: Tier-1 keeps every k-th test of each family (plus the first).
SLICE_STRIDE = 4


def corpus_dir() -> Path:
    """The corpus directory: ``$REPRO_CORPUS_DIR``, else the repo copy."""
    override = os.environ.get(CORPUS_ENV)
    if override:
        return Path(override)
    for root in (Path(__file__).resolve().parents[3], Path.cwd()):
        candidate = root / "tests" / "conformance" / "corpus"
        if candidate.is_dir():
            return candidate
    raise FileNotFoundError(
        "no corpus found; set REPRO_CORPUS_DIR or run "
        "'repro conform --regen' from the repo root")


def load_corpus(directory: Optional[Path] = None) -> List[ConformTest]:
    """Parse every ``.litmus`` file, sorted by test name."""
    directory = Path(directory) if directory is not None else corpus_dir()
    tests = [parse_litmus(path.read_text())
             for path in sorted(directory.glob("*.litmus"))]
    tests.sort(key=lambda test: test.name)
    return tests


def full_requested() -> bool:
    return os.environ.get(FULL_ENV, "") not in ("", "0")


def tier1_slice(tests: Sequence[ConformTest],
                stride: int = SLICE_STRIDE) -> List[ConformTest]:
    """A deterministic stratified slice: every *stride*-th test of each
    family (sorted by name), always keeping at least one per family."""
    by_family: Dict[str, List[ConformTest]] = {}
    for test in sorted(tests, key=lambda t: t.name):
        by_family.setdefault(test.family or "misc", []).append(test)
    kept: List[ConformTest] = []
    for family in sorted(by_family):
        members = by_family[family]
        kept.extend(members[::stride] or members[:1])
    kept.sort(key=lambda t: t.name)
    return kept


@dataclass
class ConformanceResult:
    """Aggregated outcome of a corpus run."""

    reports: List[TestReport] = field(default_factory=list)
    explorations: Dict[str, Dict] = field(default_factory=dict)
    model: str = "tso"
    backend: str = "baseline"

    @property
    def violations(self) -> List[Violation]:
        return [v for report in self.reports for v in report.violations]

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            info.get("ok", True) for info in self.explorations.values())

    def family_rows(self) -> List[Dict]:
        rows: Dict[str, Dict] = {}
        for report in self.reports:
            row = rows.setdefault(report.family or "misc", {
                "family": report.family or "misc", "tests": 0,
                "sim_runs": 0, "sim_outcomes": 0,
                "operational": 0, "axiomatic": 0, "violations": 0,
            })
            row["tests"] += 1
            row["sim_runs"] += report.sim_runs
            row["sim_outcomes"] += len(report.sim_outcomes)
            row["operational"] += report.operational_count
            row["axiomatic"] += report.axiomatic_count
            row["violations"] += len(report.violations)
        return [rows[family] for family in sorted(rows)]

    def to_payload(self) -> Dict:
        return {
            "schema": "repro-conformance/1",
            "model": self.model,
            "backend": self.backend,
            "tests": len(self.reports),
            "ok": self.ok,
            "violations": [
                {"kind": v.kind, "test": v.test, "detail": v.detail}
                for v in self.violations
            ],
            "families": self.family_rows(),
            "explorations": self.explorations,
        }


def run_conformance(tests: Sequence[ConformTest], *,
                    model: str = "tso",
                    mode: CommitMode = CommitMode.OOO_WB,
                    core_class: str = "SLM",
                    backend: str = "baseline",
                    perturb: int = 2, seed: int = 0,
                    witness_dir: Optional[Path] = None,
                    explore: bool = False, por: bool = True,
                    progress: Optional[Callable[[TestReport], None]] = None,
                    ) -> ConformanceResult:
    """Check every test; optionally save witnesses and run the explorer.

    ``backend`` selects the coherence protocol the simulated hardware
    runs; callers must pair it with a commit mode the backend supports
    (:func:`default_mode_for` resolves the strongest one).

    ``explore=True`` additionally runs the POR-reduced exhaustive
    explorer over the backend's 4-tile protocol scenarios
    (:mod:`repro.conform.scenarios`) — deadlock-freedom plus
    SoS-never-blocked (baseline) or the timestamp invariants (tardis)
    on every reachable protocol state.
    """
    from .witness import save_witness

    result = ConformanceResult(model=model, backend=backend)
    for test in tests:
        report = check_test(test, model=model, mode=mode,
                            core_class=core_class, backend=backend,
                            perturb=perturb, seed=seed)
        result.reports.append(report)
        if witness_dir is not None:
            for violation in report.violations:
                if violation.witness is not None:
                    save_witness(violation.witness, witness_dir)
        if progress is not None:
            progress(report)
    if explore:
        from .scenarios import run_explorations

        result.explorations = run_explorations(por=por, backend=backend)
    return result


def default_mode_for(backend: str) -> CommitMode:
    """The strongest commit mode a backend's conformance run can use:
    OOO_WB (WritersBlock load-load reordering) where supported, plain
    OOO (squash-on-ordering-violation) otherwise."""
    from ..coherence.backend import get_backend

    spec = get_backend(backend)
    modes = spec.supported_commit_modes
    if modes is None or CommitMode.OOO_WB in modes:
        return CommitMode.OOO_WB
    return CommitMode.OOO
