"""Shared enums and small value types used across the simulator."""

from __future__ import annotations

import enum


class InstrType(enum.Enum):
    """Kinds of trace instructions executed by a core."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    ATOMIC = "atomic"  # atomic read-modify-write (load + store pair)
    NOP = "nop"


class CommitMode(enum.Enum):
    """Commit policy of the out-of-order core.

    IN_ORDER
        Instructions commit strictly from the head of the ROB.
    OOO
        Safe out-of-order commit per the six Bell-Lipasti conditions,
        including condition 6 (consistency): a load may not commit while
        an older load is not performed.
    OOO_WB
        Out-of-order commit with WritersBlock coherence: condition 6 is
        relaxed for loads; a performed M-speculative load may commit,
        exporting its lockdown to the LDT.
    OOO_UNSAFE
        Ablation only: condition 6 dropped *without* WritersBlock.
        Demonstrably violates TSO; used to validate the checker.
    """

    IN_ORDER = "in-order"
    OOO = "ooo"
    OOO_WB = "ooo-wb"
    OOO_UNSAFE = "ooo-unsafe"


class CacheState(enum.Enum):
    """Stable MESI states of a line in a private cache.

    SPEC is the rcp backend's speculative-read state: the line was
    acquired by a not-yet-ordered load and can be *reversed* (rolled
    back via Undo) by a conflicting write; it is never writable and
    promotes to S on the first ordered read (confirm-on-commit).
    """

    M = "M"
    E = "E"
    S = "S"
    I = "I"
    SPEC = "Sp"


class DirState(enum.Enum):
    """Stable + key transient states of a directory (LLC) entry.

    The transient states model a blocking directory (as in GEMS): a
    directory entry in a transient state for a write normally blocks both
    reads and writes until the writer's Unblock.  WRITERS_BLOCK is the
    paper's new transient state: it blocks *writes only* and serves reads
    uncacheable tear-off data.
    """

    I = "I"  # not present anywhere; memory (modelled inside LLC) is owner
    S = "S"  # one or more sharers, LLC data valid
    M = "M"  # single exclusive/modified owner, LLC data possibly stale
    BUSY_READ = "BusyR"  # 3-hop read in flight, waiting for Unblock
    BUSY_WRITE = "BusyW"  # write in flight, collecting acks
    WRITERS_BLOCK = "WB"  # write blocked by lockdown(s); reads allowed


class MsgType(enum.Enum):
    """Coherence and data messages exchanged over the mesh."""

    # Requests (core -> directory)
    GETS = "GetS"  # read request
    GETX = "GetX"  # write request (fetch + write permission)
    UPGRADE = "Upgrade"  # write permission for a line already in S
    PUTS = "PutS"  # non-silent eviction of a shared line
    PUTM = "PutM"  # writeback of an M/E line
    # Directory -> core
    DATA = "Data"  # cacheable data response
    DATA_EXCL = "DataE"  # cacheable data, exclusive permission
    DATA_UNCACHEABLE = "DataU"  # tear-off copy, use-once, not tracked
    INV = "Inv"  # invalidation on behalf of a writer
    FWD_GETS = "FwdGetS"  # forward read to exclusive owner
    FWD_GETX = "FwdGetX"  # forward write to exclusive owner
    WB_ACK = "WbAck"  # writeback accepted
    BLOCKED_HINT = "BlockedHint"  # writer's request is in WritersBlock (paper §3.5.2)
    # Core -> directory / writer
    ACK = "Ack"  # invalidation acknowledgment
    NACK = "Nack"  # invalidation hit a lockdown (enters WritersBlock)
    NACK_DATA = "NackData"  # Nack + data from an E/M copy under lockdown
    ACK_DATA = "AckData"  # invalidation ack + data from E/M copy
    DEFERRED_ACK = "DeferredAck"  # lockdown lifted; redirected via directory
    UNBLOCK = "Unblock"  # requester finished; directory leaves transient state
    COPYBACK = "CopyBack"  # owner's data copy to the LLC on a forwarded read
    PERM = "Perm"  # write permission grant without data (Upgrade response)
    # Tardis backend (timestamp coherence; no invalidation traffic)
    RENEW = "Renew"  # lease renewal request for a resident shared copy
    RENEW_ACK = "RenewAck"  # lease extended, data unchanged (control-sized)
    RECALL = "Recall"  # directory recalls the exclusive owner's copy
    RECALL_ACK = "RecallAck"  # owner's data + timestamps back to the LLC
    # RCP backend (reversible coherence)
    GETS_SPEC = "GetSSpec"  # speculative read: acquire a reversible copy
    UNDO = "Undo"  # reverse a speculative acquisition (conflicting write)
    UNDO_ACK = "UndoAck"  # speculative copy dropped, reversal acknowledged
    CONFIRM = "Confirm"  # commit a speculative copy to a stable sharer


#: Number of flits for data-bearing vs control messages (paper Table 6).
DATA_MSG_FLITS = 5
CTRL_MSG_FLITS = 1

#: Message types that carry a full cache line.
_DATA_BEARING = {
    MsgType.DATA,
    MsgType.DATA_EXCL,
    MsgType.DATA_UNCACHEABLE,
    MsgType.PUTM,
    MsgType.NACK_DATA,
    MsgType.ACK_DATA,
    MsgType.COPYBACK,
    MsgType.RECALL_ACK,
}


def flits_for(msg_type: MsgType) -> int:
    """Return the number of flits a message of *msg_type* occupies."""
    return DATA_MSG_FLITS if msg_type in _DATA_BEARING else CTRL_MSG_FLITS


class LineAddr:
    """A cache-line-aligned address.

    The simulator operates on line granularity for coherence but keeps
    byte addresses on instructions so that false sharing (two variables
    in one line) is representable, as the paper's footnote 4 requires.

    Line addresses are the hottest dictionary keys in the simulator
    (cache sets, MSHR files, directory arrays), so this is a slotted
    value object with its hash computed once at construction; the
    :func:`line_of` intern table additionally makes repeated lookups of
    the same line hit CPython's identity fast path.  Instances are
    immutable by convention — nothing may rebind ``value``.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative line address: {value}")
        self.value = value
        self._hash = hash(value)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is LineAddr:
            return self.value == other.value
        return NotImplemented

    def __int__(self) -> int:
        return self.value

    # Immutable value object: copies are the object itself (this also
    # keeps the explorer's whole-system deepcopies cheap).
    def __copy__(self) -> "LineAddr":
        return self

    def __deepcopy__(self, memo) -> "LineAddr":
        return self

    def __reduce__(self):
        return (LineAddr, (self.value,))

    def __repr__(self) -> str:  # compact in protocol traces
        return f"L{self.value:#x}"


#: Intern table for :func:`line_of`: programs touch a small set of lines
#: millions of times, so decomposing a byte address resolves to the one
#: canonical LineAddr per line (bounded by the touched working set).
_line_intern: dict = {}


def line_of(byte_addr: int, line_bytes: int) -> LineAddr:
    """Map a byte address to its (interned) cache line address."""
    value = byte_addr // line_bytes
    line = _line_intern.get(value)
    if line is None:
        line = _line_intern[value] = LineAddr(value)
    return line
