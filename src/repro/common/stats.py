"""Lightweight statistics registry.

Components own :class:`Counter` / :class:`Histogram` objects created through
a shared :class:`StatsRegistry`, so a simulation can dump every statistic by
name without components knowing about each other.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A named integer-valued histogram (value -> occurrence count)."""

    __slots__ = ("name", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets: Dict[int, int] = defaultdict(int)

    def record(self, value: int, count: int = 1) -> None:
        self.buckets[value] += count

    @property
    def total(self) -> int:
        return sum(self.buckets.values())

    @property
    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(v * c for v, c in self.buckets.items()) / total

    @property
    def max(self) -> "int | None":
        """Largest recorded value, or ``None`` if nothing was recorded.

        ``None`` (not 0) on empty: a histogram that genuinely recorded
        a zero sample must be distinguishable from one never touched.
        """
        return max(self.buckets) if self.buckets else None

    @property
    def min(self) -> "int | None":
        """Smallest recorded value, or ``None`` if nothing was recorded."""
        return min(self.buckets) if self.buckets else None

    def percentile(self, p: float) -> int:
        """Smallest recorded value covering at least *p* percent of samples.

        Uses the nearest-rank definition on the bucketed distribution:
        ``percentile(50)`` is the median, ``percentile(100)`` the max.
        Returns 0 for an empty histogram.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        total = self.total
        if total == 0:
            return 0
        rank = max(1, -(-total * p // 100))  # ceil(total * p / 100)
        seen = 0
        for value in sorted(self.buckets):
            seen += self.buckets[value]
            if seen >= rank:
                return value
        return self.max

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.total}, mean={self.mean:.2f})"


class StatsRegistry:
    """Creates and indexes counters and histograms by dotted name."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called *name*, creating it if needed."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return the histogram called *name*, creating it if needed."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        for name in sorted(self._histograms):
            yield name, self._histograms[name]

    def value(self, name: str, default: int = 0) -> int:
        """Current value of counter *name* (0 if never created)."""
        counter = self._counters.get(name)
        return counter.value if counter else default

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters as a plain dict."""
        return {name: value for name, value in self.counters()}

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """{name: {total, mean, min, max, p50, p99}} per histogram.

        Histograms that never recorded a sample are omitted entirely:
        their ``min``/``max`` are ``None`` and a row of zeros would be
        indistinguishable from a real all-zero distribution.
        """
        return {
            name: {"total": h.total, "mean": h.mean, "min": h.min,
                   "max": h.max, "p50": h.percentile(50),
                   "p99": h.percentile(99)}
            for name, h in sorted(self._histograms.items())
            if h.buckets
        }
