"""Exception hierarchy for the simulator.

All simulator-raised errors derive from :class:`SimulationError` so callers
can distinguish modelling bugs from ordinary Python errors.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulator."""


class ConfigError(SimulationError):
    """A configuration value is inconsistent or out of range."""


class ProtocolError(SimulationError):
    """The coherence protocol reached an illegal state or transition.

    Raised when a controller receives a message it cannot handle in its
    current state.  This always indicates a modelling bug, never a legal
    race: the protocol is designed to be complete over its reachable
    state space.
    """


class DeadlockError(SimulationError):
    """The system-wide watchdog detected no forward progress.

    Carries a diagnostic snapshot (one line per core) describing what
    each core is blocked on, so deadlock-scenario tests can assert on
    the cause.
    """

    def __init__(self, cycle: int, snapshot: str) -> None:
        super().__init__(
            f"no instruction committed for too long (cycle {cycle})\n{snapshot}"
        )
        self.cycle = cycle
        self.snapshot = snapshot


class MemoryModelViolationError(SimulationError):
    """The axiomatic engine found an execution the model forbids.

    ``model`` names the :class:`repro.consistency.models.MemoryModel`
    whose axiom failed ("tso", "sc", "rmo", ...).
    """

    def __init__(self, message: str, model: str = "") -> None:
        super().__init__(message)
        self.model = model


class TSOViolationError(MemoryModelViolationError):
    """The consistency checker found an execution forbidden by TSO."""

    def __init__(self, message: str, model: str = "tso") -> None:
        super().__init__(message, model=model)
