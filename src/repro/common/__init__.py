"""Shared infrastructure: types, configuration, events, statistics."""

from .errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    SimulationError,
    TSOViolationError,
)
from .event_queue import EventQueue
from .params import (
    CORE_CLASSES,
    CacheParams,
    CoreParams,
    HSW_CORE,
    NHM_CORE,
    NetworkParams,
    SLM_CORE,
    SystemParams,
    mesh_dims,
    mesh_side,
    table6_system,
)
from .stats import Counter, Histogram, StatsRegistry
from .types import (
    CacheState,
    CommitMode,
    CTRL_MSG_FLITS,
    DATA_MSG_FLITS,
    DirState,
    InstrType,
    LineAddr,
    MsgType,
    flits_for,
    line_of,
)

__all__ = [
    "ConfigError",
    "DeadlockError",
    "ProtocolError",
    "SimulationError",
    "TSOViolationError",
    "EventQueue",
    "CORE_CLASSES",
    "CacheParams",
    "CoreParams",
    "HSW_CORE",
    "NHM_CORE",
    "NetworkParams",
    "SLM_CORE",
    "SystemParams",
    "mesh_dims",
    "mesh_side",
    "table6_system",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "CacheState",
    "CommitMode",
    "CTRL_MSG_FLITS",
    "DATA_MSG_FLITS",
    "DirState",
    "InstrType",
    "LineAddr",
    "MsgType",
    "flits_for",
    "line_of",
]
