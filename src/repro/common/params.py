"""Configuration dataclasses and the paper's Table 6 presets.

Three core classes are modelled after the paper: Silvermont-class (SLM),
Nehalem-class (NHM) and Haswell-class (HSW).  The memory hierarchy and
network parameters are shared across classes (paper Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .types import CommitMode


@dataclass(frozen=True)
class CoreParams:
    """Sizing of one out-of-order core (paper Table 6, top block)."""

    name: str = "SLM"
    issue_width: int = 4
    commit_width: int = 4
    iq_entries: int = 16
    rob_entries: int = 32
    lq_entries: int = 10
    sq_entries: int = 16
    sb_entries: int = 16
    ldt_entries: int = 32
    #: Branch mispredict penalty (front-end refill), cycles.
    mispredict_penalty: int = 12

    def validate(self) -> None:
        for attr in (
            "issue_width",
            "commit_width",
            "iq_entries",
            "rob_entries",
            "lq_entries",
            "sq_entries",
            "sb_entries",
            "ldt_entries",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"CoreParams.{attr} must be positive")
        if self.lq_entries > self.rob_entries:
            raise ConfigError("LQ cannot be larger than the ROB")


@dataclass(frozen=True)
class CacheParams:
    """Private cache + shared LLC sizing (paper Table 6, middle block)."""

    line_bytes: int = 64
    # Private hierarchy: modelled as a two-level lookup (L1 + L2) with a
    # single coherence point (see DESIGN.md decision 2).
    l1_sets: int = 64  # 32KB, 8-way, 64B lines
    l1_ways: int = 8
    l1_hit_cycles: int = 4
    l2_sets: int = 256  # 128KB, 8-way
    l2_ways: int = 8
    l2_hit_cycles: int = 12
    # Shared LLC: 1MB per bank, 8-way.
    llc_sets_per_bank: int = 2048
    llc_ways: int = 8
    llc_hit_cycles: int = 35
    memory_cycles: int = 160
    mshr_entries: int = 16
    #: MSHRs reserved so an SoS load can always launch a read (paper §3.5.2).
    mshr_reserved_for_sos: int = 1
    #: Directory eviction buffer entries (paper §3.5.1 safe passage).
    dir_eviction_buffer: int = 8
    #: Evict shared lines silently (paper §3.8 baseline choice).
    silent_shared_evictions: bool = True
    #: Lease length (logical timestamp units) granted per shared read by
    #: the ``tardis`` backend; ignored by ``baseline``.
    tardis_lease: int = 10

    def validate(self) -> None:
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("line_bytes must be a power of two")
        if self.tardis_lease <= 0:
            raise ConfigError("tardis_lease must be positive")
        if self.mshr_reserved_for_sos >= self.mshr_entries:
            raise ConfigError("SoS reservation must leave regular MSHRs")
        for attr in ("l1_sets", "l1_ways", "l2_sets", "l2_ways",
                     "llc_sets_per_bank", "llc_ways", "mshr_entries"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"CacheParams.{attr} must be positive")


@dataclass(frozen=True)
class NetworkParams:
    """2D mesh parameters (paper Table 6, bottom block)."""

    switch_cycles: int = 6  # switch-to-switch time
    #: When True, each link serializes one flit per cycle (adds queueing
    #: delay under load); when False the mesh is contention-free.
    model_contention: bool = True

    def validate(self) -> None:
        if self.switch_cycles <= 0:
            raise ConfigError("switch_cycles must be positive")


@dataclass(frozen=True)
class SystemParams:
    """Full system: cores, memory, network, commit policy, protocol."""

    num_cores: int = 16
    core: CoreParams = field(default_factory=CoreParams)
    cache: CacheParams = field(default_factory=CacheParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    commit_mode: CommitMode = CommitMode.IN_ORDER
    #: Core model: "ooo" (the paper's evaluation vehicle),
    #: "inorder" (stall-on-use, loads serialize — the squash-incapable
    #: baseline of §1 option 3), or "inorder-ecl" (Early Commit of
    #: Loads, EV5-style; requires writers_block for TSO).
    core_type: str = "ooo"
    #: Enable the WritersBlock protocol extension at directory + cores.
    writers_block: bool = False
    #: Cycles without any commit before the watchdog declares deadlock.
    watchdog_cycles: int = 200_000
    #: Hard cap on simulated cycles (0 = unlimited).
    max_cycles: int = 0
    #: Record the execution for the TSO checker.
    record_execution: bool = True
    #: ABLATION ONLY: disable the §3.5.2 SoS-bypass rule (SoS loads stay
    #: piggybacked on blocked writes).  Demonstrates the MSHR deadlock
    #: of paper Figure 5.B — never enable outside tests/benchmarks.
    disable_sos_bypass: bool = False
    #: Coherence backend name (see ``repro.coherence.backend``).  Backend-
    #: specific constraints (e.g. tardis rejecting writers_block) are
    #: checked by ``CoherenceBackend.validate_params`` at system build
    #: time, keeping this module free of coherence imports.
    backend: str = "baseline"

    def validate(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        # Any positive count folds onto a width x height mesh (square
        # counts keep the historical side x side layout); reject only
        # the degenerate chains a prime count > 4 would produce, since
        # an n x 1 "mesh" has none of the contention the model studies.
        width, height = mesh_dims(self.num_cores)
        if height == 1 and self.num_cores > 4:
            raise ConfigError(
                f"num_cores={self.num_cores} only factors as a "
                f"{width}x1 chain; pick a count with a 2D factorization"
            )
        if self.commit_mode is CommitMode.OOO_WB and not self.writers_block:
            raise ConfigError("OOO_WB commit requires writers_block=True")
        if self.core_type not in ("ooo", "inorder", "inorder-ecl"):
            raise ConfigError(f"unknown core_type {self.core_type!r}")
        if self.core_type == "inorder-ecl" and not self.writers_block:
            raise ConfigError(
                "inorder-ecl irrevocably binds reordered loads: it needs "
                "writers_block=True to preserve TSO"
            )
        self.core.validate()
        self.cache.validate()
        self.network.validate()

    def with_commit(self, mode: CommitMode) -> "SystemParams":
        """Return a copy configured for *mode* (enables WB when needed)."""
        return replace(self, commit_mode=mode,
                       writers_block=mode is CommitMode.OOO_WB or self.writers_block)


def system_params_from_dict(payload: dict) -> SystemParams:
    """Rebuild a :class:`SystemParams` from ``dataclasses.asdict`` output.

    Inverse of the serialization done by ``SimResult.to_dict`` (which
    stores ``commit_mode`` as its string value).  Unknown keys raise,
    so stale JSON surfaces loudly instead of silently dropping fields.
    """
    payload = dict(payload)
    mode = payload.pop("commit_mode")
    if not isinstance(mode, CommitMode):
        mode = CommitMode(mode)
    params = SystemParams(
        core=CoreParams(**payload.pop("core")),
        cache=CacheParams(**payload.pop("cache")),
        network=NetworkParams(**payload.pop("network")),
        commit_mode=mode,
        **payload,
    )
    params.validate()
    return params


def mesh_side(num_cores: int) -> int:
    """Side length of the square mesh that holds *num_cores* nodes.

    Historical helper from the square-only era; non-square counts are
    handled by :func:`mesh_dims`.
    """
    side = int(round(num_cores ** 0.5))
    return side


def mesh_dims(num_tiles: int) -> "tuple[int, int]":
    """Most nearly square ``(width, height)`` with ``width * height ==
    num_tiles`` and ``width >= height``.  Square counts return
    ``(side, side)``; primes degenerate to an ``(n, 1)`` chain."""
    if num_tiles <= 0:
        raise ConfigError(f"mesh requires a positive tile count, got {num_tiles}")
    height = 1
    for h in range(1, int(num_tiles ** 0.5) + 1):
        if num_tiles % h == 0:
            height = h
    return num_tiles // height, height


#: Paper Table 6 presets.  Issue/commit width 4 for all three classes.
SLM_CORE = CoreParams(name="SLM", iq_entries=16, rob_entries=32,
                      lq_entries=10, sq_entries=16, sb_entries=16)
NHM_CORE = CoreParams(name="NHM", iq_entries=32, rob_entries=128,
                      lq_entries=48, sq_entries=36, sb_entries=36)
HSW_CORE = CoreParams(name="HSW", iq_entries=60, rob_entries=192,
                      lq_entries=72, sq_entries=42, sb_entries=42)

CORE_CLASSES = {"SLM": SLM_CORE, "NHM": NHM_CORE, "HSW": HSW_CORE}


def table6_system(core_class: str = "SLM", *, num_cores: int = 16,
                  commit_mode: CommitMode = CommitMode.IN_ORDER,
                  writers_block: bool = False,
                  backend: str = "baseline") -> SystemParams:
    """Build a :class:`SystemParams` matching the paper's Table 6."""
    if core_class not in CORE_CLASSES:
        raise ConfigError(f"unknown core class {core_class!r}; "
                          f"choose from {sorted(CORE_CLASSES)}")
    params = SystemParams(
        num_cores=num_cores,
        core=CORE_CLASSES[core_class],
        commit_mode=commit_mode,
        writers_block=writers_block or commit_mode is CommitMode.OOO_WB,
        backend=backend,
    )
    params.validate()
    return params
