"""Deterministic cycle-driven event queue.

The simulator advances a global clock; components may schedule callbacks
for future cycles.  Events scheduled for the same cycle fire in the order
they were scheduled (FIFO per cycle), which keeps runs exactly
reproducible regardless of dict/hash ordering.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from .errors import SimulationError

EventFn = Callable[[], None]


class EventQueue:
    """Min-heap of (cycle, sequence, callback) with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, EventFn]] = []
        self._seq = 0
        self.now = 0

    def schedule(self, delay: int, fn: EventFn) -> None:
        """Run *fn* after *delay* cycles (delay 0 = later this cycle)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def schedule_at(self, cycle: int, fn: EventFn) -> None:
        """Run *fn* at absolute *cycle* (must not be in the past)."""
        self.schedule(cycle - self.now, fn)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap

    def next_cycle(self) -> int:
        """Cycle of the earliest pending event (error if empty)."""
        if not self._heap:
            raise SimulationError("event queue is empty")
        return self._heap[0][0]

    def run_due(self) -> int:
        """Fire every event due at the current cycle; return count fired.

        Events that schedule new work for the same cycle are also fired,
        so a cycle is fully drained before the clock advances.
        """
        fired = 0
        while self._heap and self._heap[0][0] == self.now:
            __, __, fn = heapq.heappop(self._heap)
            fn()
            fired += 1
        return fired

    def advance(self) -> None:
        """Move the clock forward one cycle."""
        self.now += 1

    def advance_to_next_event(self) -> None:
        """Skip idle cycles directly to the next scheduled event."""
        if self._heap and self._heap[0][0] > self.now:
            self.now = self._heap[0][0]
