"""Deterministic cycle-driven event queue.

The simulator advances a global clock; components may schedule callbacks
for future cycles.  Events scheduled for the same cycle fire in the order
they were scheduled (FIFO per cycle), which keeps runs exactly
reproducible regardless of dict/hash ordering.

Implementation: a calendar of per-cycle buckets (``dict`` keyed by
absolute cycle, each value an append-ordered list of callbacks) rather
than a heap.  The run loop probes the queue every simulated cycle, and
for the common case — nothing due — a single dict lookup beats a heap
peek plus tuple comparison.  Scheduling is an append instead of a
``heappush`` sift, and draining a cycle pops one bucket instead of
popping events one by one.  Ordering semantics are identical to the
heap version: FIFO within a cycle, and work scheduled *for the current
cycle by a firing event* runs after everything already due (it lands in
a fresh bucket that the drain loop picks up on its next pass).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .errors import SimulationError

EventFn = Callable[[], None]


class EventQueue:
    """Per-cycle bucket calendar with a monotonic clock.

    No ``__slots__`` on purpose: there is one queue per system (slots
    would save nothing) and the profiler wraps ``run_due`` by assigning
    an instance attribute.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, List[EventFn]] = {}
        self._count = 0
        self.now = 0
        #: Cumulative events fired over the queue's lifetime; the
        #: scaling probe's events/sec throughput numerator.
        self.fired_total = 0

    def schedule(self, delay: int, fn: EventFn) -> None:
        """Run *fn* after *delay* cycles (delay 0 = later this cycle)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        cycle = self.now + delay
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [fn]
        else:
            bucket.append(fn)
        self._count += 1

    def schedule_at(self, cycle: int, fn: EventFn) -> None:
        """Run *fn* at absolute *cycle* (must not be in the past)."""
        self.schedule(cycle - self.now, fn)

    def __len__(self) -> int:
        return self._count

    @property
    def empty(self) -> bool:
        return not self._buckets

    def next_cycle(self) -> int:
        """Cycle of the earliest pending event (error if empty)."""
        if not self._buckets:
            raise SimulationError("event queue is empty")
        return min(self._buckets)

    def run_due(self) -> int:
        """Fire every event due at the current cycle; return count fired.

        Events that schedule new work for the same cycle are also fired,
        so a cycle is fully drained before the clock advances.
        """
        buckets = self._buckets
        now = self.now
        fired = 0
        bucket = buckets.pop(now, None)
        while bucket is not None:
            self._count -= len(bucket)
            fired += len(bucket)
            for fn in bucket:
                fn()
            bucket = buckets.pop(now, None)
        if fired:
            self.fired_total += fired
        return fired

    def advance(self) -> None:
        """Move the clock forward one cycle."""
        self.now += 1

    def advance_to_next_event(self) -> None:
        """Skip idle cycles directly to the next scheduled event."""
        if self._buckets:
            nxt = min(self._buckets)
            if nxt > self.now:
                self.now = nxt
