"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean (standard for normalized execution times)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
