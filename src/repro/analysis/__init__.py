"""Experiment drivers and table formatting for the paper's evaluation."""

from .experiments import (
    DEFAULT_BENCHES,
    fig8_table,
    fig8_writersblock_rates,
    fig9_overheads,
    fig9_table,
    fig10_headline,
    fig10_ooo_commit,
    fig10_stall_table,
    fig10_time_table,
    make_workload,
    table6_text,
)
from .charts import grouped_chart, hbar_chart
from .tables import format_table, geometric_mean

__all__ = [
    "DEFAULT_BENCHES",
    "fig8_table",
    "fig8_writersblock_rates",
    "fig9_overheads",
    "fig9_table",
    "fig10_headline",
    "fig10_ooo_commit",
    "fig10_stall_table",
    "fig10_time_table",
    "make_workload",
    "table6_text",
    "format_table",
    "geometric_mean",
    "grouped_chart",
    "hbar_chart",
]
