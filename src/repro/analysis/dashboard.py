"""Self-contained HTML dashboards for telemetry payloads.

One static file, no external assets or scripts: inline CSS and inline
SVG heatmaps.  Two renderers share the style: the ``repro-metrics/1``
dashboard (tile rows x sample columns, one panel per gauge, plus the
summary table from :func:`repro.obs.metrics.summarize_metrics`) and the
``repro-coverage/1`` dashboard (state rows x event columns per
component, cells heat-scaled by observation count, declared-but-cold
transitions visibly distinct from impossible cells).  Output depends
only on the payload (plus whatever ``meta`` the caller embeds), so
regenerating a dashboard from the same stream is byte-stable.
"""

from __future__ import annotations

import html
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.coverage import CoverageMap, coverage_report, format_transition
from ..obs.export import PathLike, open_output
from ..obs.metrics import GAUGES, sample_cycles, summarize_metrics, tile_series

#: Colour ramp stops (low -> high occupancy), dark blue to hot orange.
_RAMP: Tuple[Tuple[int, int, int], ...] = (
    (16, 28, 56),     # near-empty: deep blue
    (38, 112, 138),   # light use: teal
    (226, 183, 86),   # heavy use: amber
    (222, 85, 49),    # saturated: red-orange
)

_CSS = """
body { background: #101722; color: #d6dde8; margin: 24px;
       font: 14px/1.5 system-ui, sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 6px; color: #9fb4d0; }
.sub { color: #7c8aa0; margin-bottom: 20px; }
table { border-collapse: collapse; margin: 12px 0 4px; }
th, td { padding: 3px 12px; text-align: right; border-bottom:
         1px solid #223047; }
th { color: #9fb4d0; font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.hot { color: #de5531; font-weight: 600; }
.panel { margin-bottom: 10px; }
.desc { color: #7c8aa0; font-size: 12px; }
svg { display: block; margin-top: 4px; }
"""


def _lerp(a: int, b: int, t: float) -> int:
    return round(a + (b - a) * t)


def heat_color(value: float, peak: float) -> str:
    """Map ``value`` in [0, peak] onto the dashboard colour ramp."""
    if peak <= 0:
        return "#%02x%02x%02x" % _RAMP[0]
    t = min(max(value / peak, 0.0), 1.0) * (len(_RAMP) - 1)
    low = min(int(t), len(_RAMP) - 2)
    frac = t - low
    r, g, b = (_lerp(_RAMP[low][i], _RAMP[low + 1][i], frac)
               for i in range(3))
    return "#%02x%02x%02x" % (r, g, b)


def heatmap_svg(rows: Sequence[Sequence[float]], *,
                peak: Optional[float] = None, cell_h: int = 13) -> str:
    """Inline SVG heatmap: one rect per (tile, sample) cell."""
    tiles = len(rows)
    samples = len(rows[0]) if tiles else 0
    if not samples:
        return "<svg width='0' height='0'></svg>"
    cell_w = max(3, min(14, 880 // samples))
    top = peak if peak is not None else max(max(row, default=0.0)
                                            for row in rows)
    label_w = 40
    width = label_w + samples * cell_w
    height = tiles * cell_h
    parts: List[str] = [
        f"<svg width='{width}' height='{height}' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for tile, row in enumerate(rows):
        y = tile * cell_h
        parts.append(
            f"<text x='{label_w - 6}' y='{y + cell_h - 3}' fill='#7c8aa0' "
            f"font-size='10' text-anchor='end'>t{tile}</text>")
        for col, value in enumerate(row):
            parts.append(
                f"<rect x='{label_w + col * cell_w}' y='{y}' "
                f"width='{cell_w - 1}' height='{cell_h - 1}' "
                f"fill='{heat_color(value, top)}'/>")
    parts.append("</svg>")
    return "".join(parts)


def render_dashboard(payload: Dict, *, title: str = "repro telemetry",
                     meta: Optional[Dict] = None) -> str:
    """The full dashboard as one HTML document string."""
    summary = summarize_metrics(payload)
    cycles = sample_cycles(payload)
    head = (f"{payload['tiles']} tiles &middot; {len(cycles)} samples "
            f"&middot; period {payload['period']} cycles &middot; "
            f"{payload.get('cycles', 0)} cycles simulated")
    if meta:
        extras = " &middot; ".join(
            f"{html.escape(str(k))}={html.escape(str(v))}"
            for k, v in sorted(meta.items()))
        head += f" &middot; {extras}"
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<div class='sub'>{head}</div>",
        "<table><tr><th>gauge</th><th>capacity</th><th>mean</th>"
        "<th>peak</th><th>saturation</th><th>hottest tile</th></tr>",
    ]
    for gauge, row in summary["gauges"].items():
        cap = "&mdash;" if row["capacity"] is None else row["capacity"]
        sat = row["saturation"]
        sat_cell = (f"<td class='hot'>{sat:.1%}</td>" if sat >= 0.05
                    else f"<td>{sat:.1%}</td>")
        out.append(
            f"<tr><td>{gauge}</td><td>{cap}</td><td>{row['mean']:.3f}</td>"
            f"<td>{row['peak']:.3f}</td>{sat_cell}"
            f"<td>t{row['hottest_tile']} ({row['hottest_mean']:.3f})</td>"
            "</tr>")
    out.append("</table>")
    for gauge in payload["gauges"]:
        rows = tile_series(payload, gauge)
        cap = payload.get("capacities", {}).get(gauge)
        out.append("<div class='panel'>")
        out.append(f"<h2>{gauge}</h2>")
        out.append(f"<div class='desc'>{html.escape(GAUGES.get(gauge, ''))}"
                   + (f" &middot; scale 0..{cap}" if cap else "")
                   + "</div>")
        out.append(heatmap_svg(rows, peak=float(cap) if cap else None))
        out.append("</div>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_dashboard(payload: Dict, path: PathLike, *,
                    title: str = "repro telemetry",
                    meta: Optional[Dict] = None) -> PathLike:
    """Render and write the dashboard; returns *path*."""
    with open_output(path) as handle:
        handle.write(render_dashboard(payload, title=title, meta=meta))
    return path


# ------------------------------------------------------------- coverage
#: Fill for (state, event) cells outside the declared alphabet — visually
#: "impossible", distinct from declared-but-never-observed (coldest ramp).
_VOID = "#16202e"


def coverage_heatmap_svg(states: Sequence[str], events: Sequence[str],
                         rows: Sequence[Sequence[int]],
                         declared: Sequence[Tuple[str, str]], *,
                         cell_h: int = 18) -> str:
    """State-by-event heatmap with axis labels, log-scaled by count."""
    if not states or not events:
        return "<svg width='0' height='0'></svg>"
    declared_cells = set(declared)
    heats = [[math.log1p(value) for value in row] for row in rows]
    peak = max(max(row) for row in heats)
    cell_w = 22
    label_w = 6 + 7 * max(len(name) for name in states)
    header_h = 12 + 6 * max(len(name) for name in events)
    width = label_w + len(events) * cell_w + 40
    height = header_h + len(states) * cell_h
    parts: List[str] = [
        f"<svg width='{width}' height='{height}' "
        f"xmlns='http://www.w3.org/2000/svg'>"
    ]
    for col, event in enumerate(events):
        x = label_w + col * cell_w + cell_w // 2
        parts.append(
            f"<text x='{x}' y='{header_h - 6}' fill='#7c8aa0' "
            f"font-size='10' text-anchor='start' "
            f"transform='rotate(-55 {x} {header_h - 6})'>"
            f"{html.escape(event)}</text>")
    for row, state in enumerate(states):
        y = header_h + row * cell_h
        parts.append(
            f"<text x='{label_w - 6}' y='{y + cell_h - 5}' fill='#7c8aa0' "
            f"font-size='10' text-anchor='end'>{html.escape(state)}</text>")
        for col, event in enumerate(events):
            if rows[row][col] or (state, event) in declared_cells:
                fill = heat_color(heats[row][col], peak)
            else:
                fill = _VOID
            parts.append(
                f"<rect x='{label_w + col * cell_w}' y='{y}' "
                f"width='{cell_w - 1}' height='{cell_h - 1}' "
                f"fill='{fill}'>"
                f"<title>{html.escape(state)} x {html.escape(event)}: "
                f"{rows[row][col]}</title></rect>")
    parts.append("</svg>")
    return "".join(parts)


def render_coverage_dashboard(cmap: CoverageMap, *,
                              title: str = "repro coverage",
                              meta: Optional[Dict] = None) -> str:
    """The full coverage dashboard as one HTML document string.

    One summary table over all backends in the map, then per backend and
    component a state-by-event heatmap over the *declared* alphabet —
    cold-but-declared cells show what the batteries never reached, and
    cells outside the alphabet render as void so protocol shape stays
    readable.
    """
    from ..obs.coverage import transition_matrix

    reports = {backend: coverage_report(cmap, backend)
               for backend in cmap.backends}
    head = " &middot; ".join(
        f"{backend} {report['covered']}/{report['alphabet']} "
        f"({report['coverage']:.1%})"
        for backend, report in reports.items())
    if meta:
        extras = " &middot; ".join(
            f"{html.escape(str(k))}={html.escape(str(v))}"
            for k, v in sorted(meta.items()))
        head += f" &middot; {extras}"
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<div class='sub'>{head}</div>",
        "<table><tr><th>backend</th><th>component</th><th>covered</th>"
        "<th>alphabet</th><th>coverage</th><th>observations</th></tr>",
    ]
    for backend, report in reports.items():
        for component, row in sorted(report["components"].items()):
            cov = row["coverage"]
            cov_cell = (f"<td class='hot'>{cov:.1%}</td>" if cov < 1.0
                        else f"<td>{cov:.1%}</td>")
            obs = sum(cmap.count(backend, t)
                      for t in cmap.transitions(backend)
                      if t[0] == component)
            out.append(
                f"<tr><td>{backend}</td><td>{component}</td>"
                f"<td>{row['covered']}</td><td>{row['alphabet']}</td>"
                f"{cov_cell}<td>{obs}</td></tr>")
    out.append("</table>")
    from ..coherence.backend import get_backend

    for backend, report in reports.items():
        alphabet = get_backend(backend).transition_alphabet()
        for component in sorted(report["components"]):
            states, events, rows = transition_matrix(cmap, backend,
                                                     component,
                                                     alphabet=alphabet)
            declared = sorted({(t[1], t[2]) for t in alphabet
                               if t[0] == component})
            out.append("<div class='panel'>")
            out.append(f"<h2>{backend} / {component}</h2>")
            out.append("<div class='desc'>state rows x event columns; "
                       "cold cells are declared but never observed, void "
                       "cells are outside the alphabet</div>")
            out.append(coverage_heatmap_svg(states, events, rows, declared))
            out.append("</div>")
        if report["uncovered"]:
            out.append("<div class='panel'>")
            out.append(f"<h2>{backend}: uncovered "
                       f"({len(report['uncovered'])})</h2>")
            for transition in report["uncovered"]:
                out.append(f"<div class='desc'>"
                           f"{html.escape(format_transition(transition))}"
                           "</div>")
            out.append("</div>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_coverage_dashboard(cmap: CoverageMap, path: PathLike, *,
                             title: str = "repro coverage",
                             meta: Optional[Dict] = None) -> PathLike:
    """Render and write the coverage dashboard; returns *path*."""
    with open_output(path) as handle:
        handle.write(render_coverage_dashboard(cmap, title=title, meta=meta))
    return path
