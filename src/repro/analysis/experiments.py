"""Experiment drivers: one function per paper figure/table.

Every driver returns structured row data *and* can render itself as a
text table, so the ``benchmarks/`` harness and the examples share one
implementation.  The drivers are deterministic for a given seed.

Each figure comes in two halves — ``figN_cells`` builds the
(workload x configuration) grid, ``figN_assemble`` turns the engine's
results back into rows — and a convenience wrapper (``figN_...``) that
runs the grid through an :class:`~repro.exp.engine.ExperimentEngine`
(serially unless one with workers/cache is passed in).  Row data is
byte-identical whether the cells ran serially, in a worker pool, or
came from the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..common.params import CORE_CLASSES, SystemParams, table6_system
from ..common.types import CommitMode
from ..exp.cells import Cell
from ..exp.engine import ExperimentEngine
from ..sim.results import SimResult
from ..workloads import ALL_WORKLOADS
from .tables import format_table, geometric_mean

#: Default benchmark subset: the names the paper's text calls out, plus
#: enough others to cover each sharing-pattern family.
DEFAULT_BENCHES = (
    "fft", "lu_cb", "lu_ncb", "ocean_cp", "ocean_ncp", "radix",
    "barnes", "water_nsquared",
    "blackscholes", "bodytrack", "canneal", "fluidanimate",
    "freqmine", "streamcluster", "swaptions",
)


def make_workload(name: str, num_threads: int, scale: float):
    try:
        generator = ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; "
                       f"choose from {sorted(ALL_WORKLOADS)}") from None
    return generator(num_threads=num_threads, scale=scale)


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    return engine if engine is not None else ExperimentEngine()


# ------------------------------------------------------------------ Figure 8
@dataclass
class Fig8Row:
    workload: str
    core_class: str
    blocked_per_kstore: float
    uncacheable_per_kload: float
    wb_mean_duration: float = 0.0


def fig8_cells(benches: Sequence[str] = DEFAULT_BENCHES, *,
               core_classes: Sequence[str] = ("SLM", "NHM", "HSW"),
               num_cores: int = 16, scale: float = 0.5,
               check: bool = True) -> List[Cell]:
    cells: List[Cell] = []
    for bench in benches:
        for core_class in core_classes:
            params = table6_system(core_class, num_cores=num_cores,
                                   commit_mode=CommitMode.OOO_WB)
            cells.append(Cell(key=f"fig8/{bench}/{core_class}",
                              workload=bench, num_threads=num_cores,
                              scale=scale, params=params, check=check))
    return cells


def fig8_assemble(cells: Sequence[Cell],
                  results: Mapping[str, SimResult]) -> List[Fig8Row]:
    rows: List[Fig8Row] = []
    for cell in cells:
        result = results[cell.key]
        rows.append(Fig8Row(cell.workload, cell.params.core.name,
                            result.writes_blocked_per_kilostore,
                            result.uncacheable_per_kiloload,
                            result.writersblock_mean_duration))
    return rows


def fig8_writersblock_rates(benches: Sequence[str] = DEFAULT_BENCHES, *,
                            core_classes: Sequence[str] = ("SLM", "NHM", "HSW"),
                            num_cores: int = 16, scale: float = 0.5,
                            check: bool = True,
                            engine: Optional[ExperimentEngine] = None
                            ) -> List[Fig8Row]:
    """Figure 8: blocked writes /kstore and uncacheable reads /kload,
    under OoO commit + WritersBlock, across core classes."""
    cells = fig8_cells(benches, core_classes=core_classes,
                       num_cores=num_cores, scale=scale, check=check)
    return fig8_assemble(cells, _engine(engine).run(cells).results())


def fig8_table(rows: Sequence[Fig8Row]) -> str:
    return format_table(
        ["workload", "class", "blocked/kstore", "uncacheable/kload",
         "mean block cycles"],
        [(r.workload, r.core_class, r.blocked_per_kstore,
          r.uncacheable_per_kload, r.wb_mean_duration) for r in rows],
        title="Figure 8: WritersBlock events (OoO commit + WB)",
    )


# ------------------------------------------------------------------ Figure 9
@dataclass
class Fig9Row:
    workload: str
    time_ratio: float  # WB / base execution time (in-order commit)
    traffic_ratio: float  # WB / base network flit-hops


def fig9_cells(benches: Sequence[str] = DEFAULT_BENCHES, *,
               core_class: str = "SLM", num_cores: int = 16,
               scale: float = 0.5, check: bool = True) -> List[Cell]:
    cells: List[Cell] = []
    for bench in benches:
        for variant, wb in (("base", False), ("wb", True)):
            params = table6_system(core_class, num_cores=num_cores,
                                   commit_mode=CommitMode.IN_ORDER,
                                   writers_block=wb)
            cells.append(Cell(key=f"fig9/{bench}/{variant}",
                              workload=bench, num_threads=num_cores,
                              scale=scale, params=params, check=check))
    return cells


def fig9_assemble(cells: Sequence[Cell],
                  results: Mapping[str, SimResult]) -> List[Fig9Row]:
    benches = []
    for cell in cells:
        if cell.workload not in benches:
            benches.append(cell.workload)
    rows: List[Fig9Row] = []
    for bench in benches:
        base = results[f"fig9/{bench}/base"]
        with_wb = results[f"fig9/{bench}/wb"]
        rows.append(Fig9Row(
            bench,
            with_wb.cycles / max(base.cycles, 1),
            with_wb.network_flit_hops / max(base.network_flit_hops, 1),
        ))
    return rows


def fig9_overheads(benches: Sequence[str] = DEFAULT_BENCHES, *,
                   core_class: str = "SLM", num_cores: int = 16,
                   scale: float = 0.5, check: bool = True,
                   engine: Optional[ExperimentEngine] = None
                   ) -> List[Fig9Row]:
    """Figure 9: WritersBlock protocol overhead vs the base directory
    protocol, both with in-order commit (should be ~1.0)."""
    cells = fig9_cells(benches, core_class=core_class, num_cores=num_cores,
                       scale=scale, check=check)
    return fig9_assemble(cells, _engine(engine).run(cells).results())


def fig9_table(rows: Sequence[Fig9Row]) -> str:
    body = [(r.workload, r.time_ratio, r.traffic_ratio) for r in rows]
    body.append(("geomean", geometric_mean([r.time_ratio for r in rows]),
                 geometric_mean([r.traffic_ratio for r in rows])))
    return format_table(
        ["workload", "exec time (WB/base)", "traffic (WB/base)"],
        body,
        title="Figure 9: WritersBlock overhead with in-order commit",
    )


# ----------------------------------------------------------------- Figure 10
@dataclass
class Fig10Row:
    workload: str
    results: Dict[CommitMode, SimResult] = field(default_factory=dict)

    def norm_time(self, mode: CommitMode) -> float:
        base = self.results[CommitMode.IN_ORDER].cycles
        return self.results[mode].cycles / max(base, 1)

    def improvement_over(self, mode: CommitMode,
                         baseline: CommitMode) -> float:
        """Percent execution-time improvement of *mode* vs *baseline*."""
        base = self.results[baseline].cycles
        return 100.0 * (base - self.results[mode].cycles) / max(base, 1)


FIG10_MODES = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB)


def fig10_cells(benches: Sequence[str] = DEFAULT_BENCHES, *,
                core_class: str = "SLM", num_cores: int = 16,
                scale: float = 0.5, check: bool = True) -> List[Cell]:
    cells: List[Cell] = []
    for bench in benches:
        for mode in FIG10_MODES:
            params = table6_system(core_class, num_cores=num_cores,
                                   commit_mode=mode)
            cells.append(Cell(key=f"fig10/{bench}/{mode.value}",
                              workload=bench, num_threads=num_cores,
                              scale=scale, params=params, check=check))
    return cells


def fig10_assemble(cells: Sequence[Cell],
                   results: Mapping[str, SimResult]) -> List[Fig10Row]:
    benches = []
    for cell in cells:
        if cell.workload not in benches:
            benches.append(cell.workload)
    rows: List[Fig10Row] = []
    for bench in benches:
        row = Fig10Row(bench)
        for mode in FIG10_MODES:
            row.results[mode] = results[f"fig10/{bench}/{mode.value}"]
        rows.append(row)
    return rows


def fig10_ooo_commit(benches: Sequence[str] = DEFAULT_BENCHES, *,
                     core_class: str = "SLM", num_cores: int = 16,
                     scale: float = 0.5, check: bool = True,
                     engine: Optional[ExperimentEngine] = None
                     ) -> List[Fig10Row]:
    """Figure 10: stall breakdown and normalized execution time for
    in-order commit, safe OoO commit, and OoO commit + WritersBlock."""
    cells = fig10_cells(benches, core_class=core_class, num_cores=num_cores,
                        scale=scale, check=check)
    return fig10_assemble(cells, _engine(engine).run(cells).results())


def fig10_time_table(rows: Sequence[Fig10Row]) -> str:
    body = []
    for row in rows:
        body.append((row.workload,
                     row.norm_time(CommitMode.IN_ORDER),
                     row.norm_time(CommitMode.OOO),
                     row.norm_time(CommitMode.OOO_WB)))
    body.append((
        "geomean",
        1.0,
        geometric_mean([r.norm_time(CommitMode.OOO) for r in rows]),
        geometric_mean([r.norm_time(CommitMode.OOO_WB) for r in rows]),
    ))
    return format_table(
        ["workload", "in-order", "ooo-commit", "ooo+WB"],
        body,
        title="Figure 10 (bottom): normalized execution time",
    )


def fig10_stall_table(rows: Sequence[Fig10Row]) -> str:
    body = []
    for row in rows:
        for mode in FIG10_MODES:
            result = row.results[mode]
            body.append((row.workload, mode.value,
                         result.stall_fraction("sq"),
                         result.stall_fraction("lq"),
                         result.stall_fraction("rob"),
                         result.stall_fraction("other")))
    return format_table(
        ["workload", "mode", "SQ-full", "LQ-full", "ROB-full", "other"],
        body,
        title="Figure 10 (top): commit-stall cycle fractions",
    )


def fig10_headline(rows: Sequence[Fig10Row]) -> Dict[str, float]:
    """The paper's §5.2 headline numbers for these runs."""
    over_inorder = [row.improvement_over(CommitMode.OOO_WB,
                                         CommitMode.IN_ORDER) for row in rows]
    over_ooo = [row.improvement_over(CommitMode.OOO_WB, CommitMode.OOO)
                for row in rows]
    return {
        "avg_improvement_over_inorder_pct": sum(over_inorder) / len(over_inorder),
        "max_improvement_over_inorder_pct": max(over_inorder),
        "avg_improvement_over_ooo_pct": sum(over_ooo) / len(over_ooo),
        "max_improvement_over_ooo_pct": max(over_ooo),
    }


# ------------------------------------------------------------------- Table 6
def table6_text() -> str:
    rows = []
    for name, core in CORE_CLASSES.items():
        rows.append((name, core.issue_width, core.iq_entries,
                     core.rob_entries, core.lq_entries, core.sq_entries,
                     core.sb_entries, core.ldt_entries))
    return format_table(
        ["class", "width", "IQ", "ROB", "LQ", "SQ", "SB", "LDT"],
        rows, title="Table 6: simulated core classes",
    )
