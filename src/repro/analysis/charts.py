"""Terminal bar charts for benchmark output (no plotting dependencies)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def hbar_chart(items: Sequence[Tuple[str, float]], *, width: int = 48,
               title: str = "", unit: str = "",
               reference: Optional[float] = None) -> str:
    """Horizontal bar chart: one row per (label, value).

    ``reference`` draws a marker column at that value (e.g. 1.0 for
    normalized execution times).
    """
    if not items:
        return title
    peak = max(max(value for __, value in items), reference or 0.0, 1e-12)
    label_width = max(len(label) for label, __ in items)
    lines: List[str] = []
    if title:
        lines.append(title)
    ref_col = (min(width - 1, round(reference / peak * width))
               if reference is not None else None)
    for label, value in items:
        filled = round(value / peak * width)
        bar = list("#" * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|" if bar[ref_col] == " " else "+"
        lines.append(f"{label.ljust(label_width)}  {''.join(bar)} "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def grouped_chart(groups: Dict[str, Sequence[Tuple[str, float]]], *,
                  width: int = 40, title: str = "") -> str:
    """One mini bar chart per group, stacked vertically."""
    blocks = [title] if title else []
    for name, items in groups.items():
        blocks.append(hbar_chart(items, width=width, title=f"[{name}]"))
    return "\n\n".join(blocks)


#: Intensity ramp for terminal heatmaps, dark to bright.
HEAT_RAMP = " .:-=+*#%@"


def heatmap_chart(rows: Sequence[Sequence[float]], *,
                  row_label: str = "tile", title: str = "",
                  peak: Optional[float] = None) -> str:
    """Terminal heatmap: one text row per series, one column per sample.

    Each cell maps its value onto :data:`HEAT_RAMP` against *peak*
    (default: the matrix maximum).  Returns just the title for an empty
    matrix.
    """
    if not rows or not any(len(row) for row in rows):
        return title
    top = peak if peak is not None else max(max(row, default=0.0)
                                            for row in rows)
    top = max(top, 1e-12)
    steps = len(HEAT_RAMP) - 1
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = len(f"{row_label}{len(rows) - 1}")
    for index, row in enumerate(rows):
        cells = "".join(
            HEAT_RAMP[min(steps, round(value / top * steps))] for value in row)
        lines.append(f"{f'{row_label}{index}'.ljust(label_width)} |{cells}|")
    return "\n".join(lines)


def tree_chart(entries: Sequence[Tuple[int, str, float]], *,
               width: int = 36, title: str = "", unit: str = "") -> str:
    """Indented bar chart for ranked trees (blame trees).

    ``entries`` are ``(depth, label, value)`` rows in display order;
    child rows (depth > 0) are drawn with a tree connector and their
    bars share the root rows' scale.
    """
    if not entries:
        return title
    peak = max(max(value for __, __, value in entries), 1e-12)
    labels = [("  " * depth + ("└ " if depth else "") + label)
              for depth, label, __ in entries]
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, (__, ___, value) in zip(labels, entries):
        filled = round(value / peak * width)
        bar = "#" * filled
        suffix = f" {unit}" if unit else ""
        lines.append(f"{label.ljust(label_width)}  {bar.ljust(width)} "
                     f"{value:g}{suffix}")
    return "\n".join(lines)
