"""Transition-coverage probe shared by the protocol components.

Every cache/directory class carries two attributes installed at
construction time::

    self._cov = None       # coverage gate: an observer, or None (off)
    self._cov_sends = []   # message types sent while handling one event

and a ``_cov_state(line) -> str`` method naming the protocol state of
*line* right now.  An instrumented site brackets its work with::

    cov = self._cov
    if cov is None:
        return self._the_real_work(...)
    before = self._cov_state(line)
    mark = len(self._cov_sends)
    result = self._the_real_work(...)
    probe.note(self, "cache", line, "load", before, mark)
    return result

so a run without coverage pays one attribute load + ``is None`` check
per site and allocates nothing.  ``note`` folds everything the site
sent (captured by the component's ``_send`` funnel) into the
transition's action, truncates the capture back to ``mark`` (nested
sites — an eviction inside a data fill, a deferred write chained after
a read — claim their own sends first), and emits the tuple as a
``Kind.COH_TRANSITION`` event on the component's bus for the
subscribed :class:`~repro.obs.coverage.CoverageObserver`.
"""

from __future__ import annotations

from ..obs.events import Kind


def note(component, kind: str, line, event: str, before: str,
         mark: int) -> None:
    """Record one ``(kind, before, event) -> (state-now, sends)`` tuple."""
    sends = component._cov_sends
    if len(sends) > mark:
        action = "+".join(sorted(set(sends[mark:])))
        del sends[mark:]
    else:
        action = "-"
    bus = component.bus
    if bus.active:
        bus.emit(Kind.COH_TRANSITION, component.tile, component=kind,
                 state=before, event=event,
                 next=component._cov_state(line), action=action)
