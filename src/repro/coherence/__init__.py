"""Coherence protocols behind a pluggable backend interface.

``baseline`` is the paper's directory MESI protocol with the
WritersBlock extension; ``tardis`` is timestamp/lease coherence with no
invalidation traffic; ``rcp`` is reversible coherence — speculative
reads acquire undo-able copies that a conflicting write rolls back.
See :mod:`repro.coherence.backend` and docs/coherence.md.
"""

from .backend import (
    BaselineBackend,
    CoherenceBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .directory import DirectoryBank, DirEntry, EvictingEntry
from .invariants import attach_probe, check_coherence, check_cycle, check_quiescent
from .private_cache import LoadRequest, PrivateCache, PrivateLine
from .rcp import RcpBackend, RcpCache, RcpDirectory, RcpLine
from .tardis import TardisBackend, TardisCache, TardisDirectory, TardisLine

__all__ = [
    "attach_probe",
    "backend_names",
    "check_coherence",
    "check_cycle",
    "check_quiescent",
    "get_backend",
    "register_backend",
    "BaselineBackend",
    "CoherenceBackend",
    "DirectoryBank",
    "DirEntry",
    "EvictingEntry",
    "LoadRequest",
    "PrivateCache",
    "PrivateLine",
    "RcpBackend",
    "RcpCache",
    "RcpDirectory",
    "RcpLine",
    "TardisBackend",
    "TardisCache",
    "TardisDirectory",
    "TardisLine",
]
