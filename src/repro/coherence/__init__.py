"""Directory MESI coherence with the WritersBlock extension."""

from .directory import DirectoryBank, DirEntry, EvictingEntry
from .invariants import check_coherence, check_quiescent
from .private_cache import LoadRequest, PrivateCache, PrivateLine

__all__ = [
    "check_coherence",
    "check_quiescent",
    "DirectoryBank",
    "DirEntry",
    "EvictingEntry",
    "LoadRequest",
    "PrivateCache",
    "PrivateLine",
]
