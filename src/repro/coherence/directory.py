"""Directory / LLC bank controller (base MESI + WritersBlock).

Each tile hosts one bank; a line's home bank is ``line % num_tiles``.
The directory is *blocking*: while a transaction for a line is in flight
(BUSY_READ / BUSY_WRITE) new requests for that line queue and are replayed
in arrival order.  The paper's extension adds the WRITERS_BLOCK transient
state, entered when an invalidation is Nacked by a core holding a
lockdown:

* all writes for the line queue (and their writers receive a
  BLOCKED_HINT so SoS loads can bypass the blocked MSHR, paper §3.5.2);
* reads are served an **uncacheable tear-off** copy of the pre-write data
  immediately — never queued — which is what makes SoS loads unblockable
  at the directory (paper §3.4, §3.5);
* deferred invalidation acks are redirected through the directory to the
  waiting writer, whose identity only the directory knows (paper §3.3).

Directory-entry evictions use an eviction buffer ("on the side") so a
fill never waits on a WritersBlock victim; when the buffer is full, reads
fall back to uncacheable service and writes wait (paper §3.5.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from ..common.errors import ProtocolError
from ..common.event_queue import EventQueue
from ..common.params import CacheParams
from ..common.stats import StatsRegistry
from ..common.types import DirState, LineAddr, MsgType
from ..mem.cache_array import CacheArray
from ..mem.line_data import LineData
from ..network.mesh import MeshNetwork
from ..network.message import Message
from ..obs.events import EventBus, Kind
from . import probe


@dataclass(slots=True, eq=False)
class DirEntry:
    """One directory/LLC entry (line granularity)."""

    line: LineAddr
    state: DirState = DirState.I
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)
    data: LineData = field(default_factory=LineData)
    queue: Deque[Message] = field(default_factory=deque)
    # Transient bookkeeping
    writer: Optional[int] = None  # tile awaiting write completion
    reader: Optional[int] = None  # tile awaiting read completion
    copyback_pending: bool = False
    unblock_pending: bool = False
    fetching: bool = False  # memory fetch in flight
    owner_gone: bool = False  # owner wrote back mid-transaction
    granted_exclusive: bool = False  # pending read got DataE
    wb_entered_cycle: int = -1  # cycle the entry entered WritersBlock
    deferred_expected: int = 0  # Nacks awaiting their deferred ack

    def is_stable(self) -> bool:
        return self.state in (DirState.I, DirState.S, DirState.M)

    def __repr__(self) -> str:
        return (
            f"<Dir {self.line!r} {self.state.value} owner={self.owner} "
            f"sharers={sorted(self.sharers)} q={len(self.queue)} "
            f"def={self.deferred_expected}>"
        )


@dataclass(slots=True, eq=False)
class EvictingEntry:
    """A directory entry parked in the eviction buffer (paper §3.5.1)."""

    line: LineAddr
    data: LineData
    acks_expected: int = 0
    deferred_expected: int = 0

    @property
    def done(self) -> bool:
        return self.acks_expected == 0 and self.deferred_expected == 0


class DirectoryBank:
    """The LLC bank + directory controller for one tile."""

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = writers_block
        self._array: CacheArray[DirEntry] = CacheArray(
            params.llc_sets_per_bank, params.llc_ways
        )
        self._memory: Dict[LineAddr, LineData] = {}
        self._evicting: Dict[LineAddr, EvictingEntry] = {}
        self._pending_allocs: List[Message] = []
        self._retry_scheduled = False
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        s = stats
        self._stat_tearoffs = s.counter("dir.uncacheable_reads")
        self._stat_wb_entered = s.counter("dir.writersblock_entered")
        self._stat_writes_blocked = s.counter("dir.writes_blocked")
        self._stat_invs = s.counter("dir.invalidations_sent")
        self._stat_evictions = s.counter("dir.llc_evictions")
        self._stat_uncacheable_evict = s.counter("dir.uncacheable_due_to_eviction")
        self._stat_requests = s.counter("dir.requests")
        self._hist_wb_duration = s.histogram("dir.writersblock_duration")
        # Message dispatch, built once (a per-delivery dict is hot-path
        # allocation churn).
        self._dispatch = {
            MsgType.GETS: self._on_request,
            MsgType.GETX: self._on_request,
            MsgType.UPGRADE: self._on_request,
            MsgType.PUTM: self._on_putm,
            MsgType.PUTS: self._on_puts,
            MsgType.NACK: self._on_nack,
            MsgType.NACK_DATA: self._on_nack,
            MsgType.ACK: self._on_ack,
            MsgType.ACK_DATA: self._on_ack,
            MsgType.COPYBACK: self._on_copyback,
            MsgType.UNBLOCK: self._on_unblock,
            MsgType.DEFERRED_ACK: self._on_deferred_ack,
        }
        network.register(tile, "llc", self.handle_message)

    # ------------------------------------------------------------------ util
    def _send(self, msg_type: MsgType, dst: int, line: LineAddr,
              delay: Optional[int] = None, **payload) -> None:
        """Send after the bank's access latency.

        Every outgoing message pays (at least) ``llc_hit_cycles``:
        applying the same delay uniformly keeps the per-channel FIFO
        order that deterministic routing provides — a quick control
        reply must never overtake an earlier forwarded request to the
        same cache (e.g. WbAck passing a FwdGetX would strand the
        requester).
        """
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        if delay is None:
            delay = self.params.llc_hit_cycles
        msg = self.network.acquire_message(msg_type, self.tile, dst, "cache",
                                           line, payload)
        self.events.schedule(delay, lambda: self.network.send(msg))

    def _memory_data(self, line: LineAddr) -> LineData:
        if line not in self._memory:
            self._memory[line] = LineData()
        return self._memory[line]

    def _cov_state(self, line: LineAddr) -> str:
        if line in self._evicting:
            return "EVICTING"
        entry = self._array.lookup(line, touch=False)
        return entry.state.name if entry is not None else "I"

    # --------------------------------------------------------------- receive
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"directory {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "dir", msg.line, msg.msg_type.name, before, mark)

    # --------------------------------------------------------------- requests
    def _on_request(self, msg: Message) -> None:
        self._stat_requests.add()
        entry = self._array.lookup(msg.line)
        if entry is None:
            evict_entry = self._evicting.get(msg.line)
            if evict_entry is not None:
                # The line is mid-eviction: treat like WritersBlock —
                # reads get the parked data uncacheable, writes wait.
                if msg.msg_type is MsgType.GETS:
                    self._serve_tearoff(msg, evict_entry.data)
                else:
                    msg.parked = True
                    self._pending_allocs.append(msg)
                    self._note_write_blocked(msg.line, msg.src, "evicting")
                    self._send(MsgType.BLOCKED_HINT, msg.src, msg.line)
                return
            entry = self._try_allocate(msg.line)
            if entry is None:
                self._allocation_failed(msg)
                return
        if entry.state is DirState.WRITERS_BLOCK:
            if msg.msg_type is MsgType.GETS:
                self._serve_tearoff(msg, entry.data)
            else:
                msg.parked = True
                entry.queue.append(msg)
                self._stat_writes_blocked.add()
                self._note_write_blocked(msg.line, msg.src, "writersblock")
                self._send(MsgType.BLOCKED_HINT, msg.src, msg.line)
            return
        if not entry.is_stable():
            msg.parked = True
            entry.queue.append(msg)
            return
        self._process_request(entry, msg)

    def _process_request(self, entry: DirEntry, msg: Message) -> None:
        if entry.fetching:
            msg.parked = True
            entry.queue.append(msg)
            return
        if msg.msg_type is MsgType.GETS:
            self._process_gets(entry, msg)
        else:
            self._process_getx(entry, msg)

    def _process_gets(self, entry: DirEntry, msg: Message) -> None:
        latency = self.params.llc_hit_cycles
        requester = msg.src
        if msg.payload.get("uncacheable"):
            # An SoS bypass read: serve a tear-off copy without touching
            # the sharing vector or the directory state at all.
            if entry.state is DirState.M and entry.owner != requester:
                # The owner holds the only up-to-date copy: forward the
                # read as use-once; the owner snapshots its data and
                # keeps M.  No transient state, so this can never block.
                self._stat_tearoffs.add()
                self._send(MsgType.FWD_GETS, entry.owner, entry.line,
                           latency, requester=requester, uncacheable=True)
            elif entry.state is DirState.M:
                # The requester itself owns the line: ownership data
                # travelled 3-hop (past us), so our parked copy may be
                # stale.  Bounce the read; it replays and hits locally
                # once the in-flight fill installs.
                self._send(MsgType.DATA_UNCACHEABLE, requester, entry.line,
                           latency, retry=True)
            else:
                self._serve_tearoff(msg, entry.data)
            return
        if entry.state is DirState.I or (
                entry.state is DirState.S and not entry.sharers):
            # No live copies anywhere (non-silent evictions can empty an
            # S entry's sharer list): grant exclusive.
            entry.state = DirState.BUSY_READ
            entry.reader = requester
            entry.unblock_pending = True
            entry.granted_exclusive = True
            self._send(MsgType.DATA_EXCL, requester, entry.line, latency,
                       data=entry.data.copy(), ack_count=0)
        elif entry.state is DirState.S:
            entry.state = DirState.BUSY_READ
            entry.reader = requester
            entry.unblock_pending = True
            entry.granted_exclusive = False
            self._send(MsgType.DATA, requester, entry.line, latency,
                       data=entry.data.copy(), ack_count=0)
        elif entry.state is DirState.M:
            if entry.owner == requester:
                # Stale request from a core we believe owns the line
                # (e.g. replayed after its writeback raced here): serve
                # fresh data below via the normal S path after the PutM.
                raise ProtocolError(
                    f"GetS from current owner {requester} for {entry.line!r}"
                )
            entry.state = DirState.BUSY_READ
            entry.reader = requester
            entry.copyback_pending = True
            entry.unblock_pending = True
            self._send(MsgType.FWD_GETS, entry.owner, entry.line, latency,
                       requester=requester)
        else:  # pragma: no cover - guarded by caller
            raise ProtocolError(f"GetS in state {entry.state}")

    def _process_getx(self, entry: DirEntry, msg: Message) -> None:
        latency = self.params.llc_hit_cycles
        writer = msg.src
        if entry.state is DirState.I:
            entry.state = DirState.BUSY_WRITE
            entry.writer = writer
            entry.unblock_pending = True
            self._send(MsgType.DATA_EXCL, writer, entry.line, latency,
                       data=entry.data.copy(), ack_count=0)
        elif entry.state is DirState.S:
            invalidees = sorted(entry.sharers - {writer})
            entry.state = DirState.BUSY_WRITE
            entry.writer = writer
            entry.unblock_pending = True
            for sharer in invalidees:
                self._stat_invs.add()
                self._send(MsgType.INV, sharer, entry.line, latency,
                           ack_to=writer, writer=writer)
            if writer in entry.sharers and msg.msg_type is MsgType.UPGRADE:
                self._send(MsgType.PERM, writer, entry.line, latency,
                           ack_count=len(invalidees))
            else:
                self._send(MsgType.DATA, writer, entry.line, latency,
                           data=entry.data.copy(), ack_count=len(invalidees))
            entry.sharers = set()
        elif entry.state is DirState.M:
            if entry.owner == writer:
                raise ProtocolError(
                    f"GetX from current owner {writer} for {entry.line!r}"
                )
            entry.state = DirState.BUSY_WRITE
            entry.writer = writer
            entry.unblock_pending = True
            self._stat_invs.add()
            self._send(MsgType.FWD_GETX, entry.owner, entry.line, latency,
                       requester=writer)
        else:  # pragma: no cover - guarded by caller
            raise ProtocolError(f"GetX in state {entry.state}")

    def _serve_tearoff(self, msg: Message, data: LineData) -> None:
        """Reply with a use-once uncacheable copy (paper §3.4 Option 2)."""
        self._stat_tearoffs.add()
        bus = self.bus
        if bus.active:
            bus.emit(Kind.DIR_TEAROFF, self.tile, line=int(msg.line),
                     requester=msg.src)
        self._send(MsgType.DATA_UNCACHEABLE, msg.src, msg.line,
                   self.params.llc_hit_cycles, data=data.copy())

    def _note_write_blocked(self, line: LineAddr, src: int,
                            cause: str) -> None:
        bus = self.bus
        if bus.active:
            bus.emit(Kind.DIR_WRITE_BLOCKED, self.tile, line=int(line),
                     src=src, cause=cause)

    # ----------------------------------------------------------- allocation
    def _try_allocate(self, line: LineAddr) -> Optional[DirEntry]:
        """Bring *line* into the LLC array, evicting a victim if needed.

        Returns None when no stable victim exists or the eviction buffer
        is full — the caller then falls back to uncacheable service
        (reads) or defers the request (writes).
        """
        victim = self._array.victim_for(line)
        if victim is not None:
            victim_line, victim_entry = victim
            if not victim_entry.is_stable() or victim_entry.queue:
                victim_entry = self._find_stable_victim(line)
                if victim_entry is None:
                    return None
                victim_line = victim_entry.line
            if not self._evict(victim_line, victim_entry):
                return None
        entry = DirEntry(line=line, data=self._memory_data(line).copy())
        entry.fetching = True
        self._array.insert(line, entry)
        self.events.schedule(self.params.memory_cycles, lambda: self._fetch_done(entry))
        return entry

    def _find_stable_victim(self, line: LineAddr) -> Optional[DirEntry]:
        """Pick any stable, queue-free entry in *line*'s set (LRU first)."""
        target_set = line.value % self.params.llc_sets_per_bank
        for cand_line, cand in self._array.items():
            if cand_line.value % self.params.llc_sets_per_bank != target_set:
                continue
            if cand.is_stable() and not cand.queue:
                return cand
        return None

    def _fetch_done(self, entry: DirEntry) -> None:
        entry.fetching = False
        self._drain_queue(entry)
        self._schedule_retry()

    def _evict(self, line: LineAddr, entry: DirEntry) -> bool:
        cov = self._cov
        if cov is None:
            return self._evict_impl(line, entry)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        evicted = self._evict_impl(line, entry)
        if evicted:
            probe.note(self, "dir", line, "evict", before, mark)
        return evicted

    def _evict_impl(self, line: LineAddr, entry: DirEntry) -> bool:
        """Move *entry* to the eviction buffer and recall remote copies."""
        if len(self._evicting) >= self.params.dir_eviction_buffer:
            return False
        self._stat_evictions.add()
        self._array.remove(line)
        parked = EvictingEntry(line=line, data=entry.data)
        if entry.state is DirState.S:
            parked.acks_expected = len(entry.sharers)
            for sharer in sorted(entry.sharers):
                self._stat_invs.add()
                self._send(MsgType.INV, sharer, line, ack_to=self.tile,
                           ack_to_dir=True)
        elif entry.state is DirState.M:
            parked.acks_expected = 1
            self._stat_invs.add()
            self._send(MsgType.INV, entry.owner, line, ack_to=self.tile,
                       ack_to_dir=True)
        if parked.done:
            self._memory[line] = parked.data
            return True
        self._evicting[line] = parked
        return True

    def _allocation_failed(self, msg: Message) -> None:
        """No directory entry available: paper §3.5.1 fallback."""
        if msg.msg_type is MsgType.GETS:
            self._stat_uncacheable_evict.add()
            data = self._memory_data(msg.line)
            self._stat_tearoffs.add()
            self._send(
                MsgType.DATA_UNCACHEABLE, msg.src, msg.line,
                self.params.llc_hit_cycles + self.params.memory_cycles,
                data=data.copy(),
            )
        else:
            msg.parked = True
            self._pending_allocs.append(msg)
            self._note_write_blocked(msg.line, msg.src, "alloc")

    def _schedule_retry(self) -> None:
        """Replay requests parked by a failed allocation.

        Called whenever set pressure may have eased (a line stabilised,
        a fetch finished, an eviction completed).  Deferred by one cycle
        and de-duplicated so nested drains don't recurse.
        """
        if not self._pending_allocs or self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.events.schedule(1, self._retry_pending)

    def _retry_pending(self) -> None:
        self._retry_scheduled = False
        pending, self._pending_allocs = self._pending_allocs, []
        release = self.network.pool.release
        for msg in pending:
            msg.parked = False
            self._on_request(msg)
            if not msg.parked:
                release(msg)

    # ------------------------------------------------------------- responses
    def _on_putm(self, msg: Message) -> None:
        entry = self._array.lookup(msg.line)
        if entry is None:
            evicting = self._evicting.get(msg.line)
            if evicting is not None:
                # Writeback raced with our recall invalidation; the data
                # settles the recall's expected ack.
                evicting.data.merge_from(msg.payload["data"])
                evicting.acks_expected -= 1
                self._send(MsgType.WB_ACK, msg.src, msg.line)
                self._finish_eviction_if_done(msg.line, evicting)
                return
            raise ProtocolError(f"PutM for unknown line {msg!r}")
        if entry.state is DirState.M and entry.owner == msg.src:
            entry.data.merge_from(msg.payload["data"])
            self._memory[msg.line] = entry.data.copy()
            entry.owner = None
            entry.state = DirState.I
            self._send(MsgType.WB_ACK, msg.src, msg.line)
            self._drain_queue(entry)
        elif entry.state in (DirState.BUSY_READ, DirState.BUSY_WRITE,
                             DirState.WRITERS_BLOCK) and entry.owner == msg.src:
            # Writeback raced with a forwarded request; the owner will
            # also answer the forward from its writeback buffer.
            entry.data.merge_from(msg.payload["data"])
            entry.owner_gone = True
            self._send(MsgType.WB_ACK, msg.src, msg.line)
        else:
            # Stale PutM from a core that is no longer owner.
            self._send(MsgType.WB_ACK, msg.src, msg.line)

    def _on_puts(self, msg: Message) -> None:
        entry = self._array.lookup(msg.line)
        if entry is not None:
            entry.sharers.discard(msg.src)

    def _on_nack(self, msg: Message) -> None:
        """An invalidation hit a lockdown: enter WritersBlock (paper §3.3)."""
        if msg.payload.get("data") is not None:
            data = msg.payload["data"]
        else:
            data = None
        evicting = self._evicting.get(msg.line)
        if evicting is not None:
            if data is not None:
                evicting.data.merge_from(data)
            evicting.acks_expected -= 1
            evicting.deferred_expected += 1
            return
        entry = self._array.lookup(msg.line)
        if entry is None:
            raise ProtocolError(f"Nack for unknown line {msg!r}")
        if entry.state not in (DirState.BUSY_WRITE, DirState.WRITERS_BLOCK):
            raise ProtocolError(f"Nack in state {entry.state}: {msg!r}")
        if data is not None:
            # Nack+Data: the E/M copy's data parks at the shared level so
            # tear-off readers have somewhere to read from (paper §3.3).
            entry.data.merge_from(data)
        entry.deferred_expected += 1
        if entry.state is DirState.BUSY_WRITE:
            self._enter_writers_block(entry)

    def _enter_writers_block(self, entry: DirEntry) -> None:
        entry.state = DirState.WRITERS_BLOCK
        entry.wb_entered_cycle = self.events.now
        self._stat_wb_entered.add()
        bus = self.bus
        if bus.active:
            bus.emit(Kind.WB_BEGIN, self.tile, line=int(entry.line),
                     writer=entry.writer)
        if entry.writer is not None:
            self._note_write_blocked(entry.line, entry.writer, "writersblock")
            self._send(MsgType.BLOCKED_HINT, entry.writer, entry.line)
        # Reads must never wait behind a blocked write: serve any queued
        # reads uncacheable now, and hint queued writers.
        remaining: Deque[Message] = deque()
        while entry.queue:
            queued = entry.queue.popleft()
            if queued.msg_type is MsgType.GETS:
                queued.parked = False
                self._serve_tearoff(queued, entry.data)
                self.network.pool.release(queued)
            else:
                self._stat_writes_blocked.add()
                self._note_write_blocked(queued.line, queued.src,
                                         "writersblock")
                self._send(MsgType.BLOCKED_HINT, queued.src, queued.line)
                remaining.append(queued)  # stays parked
        entry.queue = remaining

    def _on_ack(self, msg: Message) -> None:
        """Ack addressed to the directory: only eviction recalls do this."""
        evicting = self._evicting.get(msg.line)
        if evicting is None:
            raise ProtocolError(f"directory Ack for unknown eviction {msg!r}")
        data = msg.payload.get("data")
        if data is not None:
            evicting.data.merge_from(data)
        evicting.acks_expected -= 1
        self._finish_eviction_if_done(msg.line, evicting)

    def _finish_eviction_if_done(self, line: LineAddr, evicting: EvictingEntry) -> None:
        if evicting.done:
            self._memory[line] = evicting.data
            del self._evicting[line]
            self._schedule_retry()

    def _on_copyback(self, msg: Message) -> None:
        entry = self._array.lookup(msg.line)
        if entry is None or entry.state is not DirState.BUSY_READ:
            raise ProtocolError(f"CopyBack without a pending read: {msg!r}")
        entry.data.merge_from(msg.payload["data"])
        entry.copyback_pending = False
        self._maybe_finish_read(entry)

    def _on_unblock(self, msg: Message) -> None:
        entry = self._array.lookup(msg.line)
        if entry is None:
            raise ProtocolError(f"Unblock for unknown line {msg!r}")
        if entry.state is DirState.BUSY_READ:
            if msg.src != entry.reader:
                raise ProtocolError(f"Unblock from non-reader: {msg!r}")
            entry.unblock_pending = False
            self._maybe_finish_read(entry)
        elif entry.state in (DirState.BUSY_WRITE, DirState.WRITERS_BLOCK):
            if msg.src != entry.writer:
                raise ProtocolError(f"Unblock from non-writer: {msg!r}")
            if entry.deferred_expected:
                raise ProtocolError(
                    f"writer unblocked with deferred acks outstanding: {entry!r}"
                )
            if entry.wb_entered_cycle >= 0:
                # Paper footnote 2: the write delay is bounded by the
                # lockdown lifetime; record the observed distribution.
                duration = self.events.now - entry.wb_entered_cycle
                self._hist_wb_duration.record(duration)
                bus = self.bus
                if bus.active:
                    bus.emit(Kind.WB_END, self.tile, line=int(entry.line),
                             duration=duration, writer=entry.writer)
                entry.wb_entered_cycle = -1
            entry.state = DirState.M
            entry.owner = entry.writer
            entry.writer = None
            entry.sharers = set()
            entry.owner_gone = False
            entry.unblock_pending = False
            self._drain_queue(entry)
        else:
            raise ProtocolError(f"Unblock in state {entry.state}: {msg!r}")

    def _maybe_finish_read(self, entry: DirEntry) -> None:
        if entry.copyback_pending or entry.unblock_pending:
            return
        old_owner = entry.owner
        requester = entry.reader
        entry.reader = None
        if old_owner is not None:
            # 3-hop read from an M owner: both end up sharers.
            entry.sharers = set() if entry.owner_gone else {old_owner}
            entry.sharers.add(requester)
            entry.owner = None
            entry.owner_gone = False
            entry.state = DirState.S
        elif entry.granted_exclusive:
            # The reply was DataE: the requester installed E and is the
            # owner — decided once at request time, never re-inferred
            # (PutS may have emptied the sharer list in the interim).
            entry.owner = requester
            entry.state = DirState.M
        else:
            entry.sharers.add(requester)
            entry.state = DirState.S
        entry.granted_exclusive = False
        self._drain_queue(entry)

    def _on_deferred_ack(self, msg: Message) -> None:
        """A lockdown lifted; route the ack to the waiting writer."""
        evicting = self._evicting.get(msg.line)
        if evicting is not None:
            evicting.deferred_expected -= 1
            self._finish_eviction_if_done(msg.line, evicting)
            return
        entry = self._array.lookup(msg.line)
        if entry is None or entry.state is not DirState.WRITERS_BLOCK:
            raise ProtocolError(f"deferred ack without WritersBlock: {msg!r}")
        if entry.deferred_expected <= 0:
            raise ProtocolError(f"unexpected deferred ack: {msg!r}")
        entry.deferred_expected -= 1
        self._send(MsgType.ACK, entry.writer, entry.line, deferred=True)

    # ----------------------------------------------------------------- queue
    def _drain_queue(self, entry: DirEntry) -> None:
        """Replay queued requests in arrival order while the line is stable."""
        release = self.network.pool.release
        while entry.queue and entry.is_stable() and not entry.fetching:
            msg = entry.queue.popleft()
            if entry.state is DirState.WRITERS_BLOCK:  # pragma: no cover
                entry.queue.appendleft(msg)
                return
            msg.parked = False
            self._process_request(entry, msg)
            if not msg.parked:
                release(msg)
        self._schedule_retry()

    # --------------------------------------------------------------- inspect
    def entry(self, line: LineAddr) -> Optional[DirEntry]:
        """Peek at a directory entry (no LRU update) — tests/diagnostics."""
        return self._array.lookup(line, touch=False)

    def evicting_entry(self, line: LineAddr) -> Optional[EvictingEntry]:
        return self._evicting.get(line)

    def snapshot(self) -> str:
        busy = [repr(e) for __, e in self._array.items() if not e.is_stable()]
        return f"dir{self.tile}: busy={busy} evicting={list(self._evicting)}"

    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler.

        Computed lazily by walking the (sparse) array — the protocol hot
        path carries no extra bookkeeping.  ``dirq`` counts every parked
        message (per-entry queues plus the allocation-stall queue),
        ``wb`` the entries sitting in WritersBlock, ``evb`` the eviction
        buffer.
        """
        dirq = len(self._pending_allocs)
        wb = 0
        for __, entry in self._array.items():
            dirq += len(entry.queue)
            if entry.state is DirState.WRITERS_BLOCK:
                wb += 1
        return {"dirq": dirq, "wb": wb, "evb": len(self._evicting)}
