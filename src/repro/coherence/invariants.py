"""Coherence invariants, checkable on a quiescent system.

These are the structural single-writer/multi-reader guarantees the MESI
protocol (and its WritersBlock extension) must maintain.  They are
checked by the schedule-fuzzing tests after every run, and users can
call :func:`check_coherence` on any quiesced :class:`MulticoreSystem`
as a sanity gate.

Checked invariants (all at quiescence — no in-flight messages):

* **SWMR**: at most one private cache holds a line in M/E; if one does,
  no other cache holds it at all.
* **Directory owner accuracy**: a dir entry in state M names an owner
  that actually holds the line in M or E.
* **Sharer soundness**: every cache holding a line in S is on its home
  directory's sharer list (silent evictions may leave *stale* sharers,
  which is fine; missing ones are not).
* **Value agreement**: every S copy matches the LLC's data for the
  line; an M/E copy is allowed to be newer (dirty).
* **No residual transients**: every directory entry is back in a stable
  state with empty queues, no eviction-buffer leftovers, and no
  outstanding MSHRs anywhere.
"""

from __future__ import annotations

from typing import List

from ..common.errors import ProtocolError
from ..common.types import CacheState, DirState


def check_coherence(system) -> None:
    """Raise :class:`ProtocolError` on any violated invariant."""
    problems: List[str] = []
    lines = set()
    for cache in system.caches:
        for line, __ in cache._lines.items():
            lines.add(line)
    for bank in system.directories:
        for line, __ in bank._array.items():
            lines.add(line)

    for line in sorted(lines, key=int):
        home = system.directories[int(line) % len(system.directories)]
        entry = home.entry(line)
        holders = {
            tile: cache.line_state(line)
            for tile, cache in enumerate(system.caches)
            if cache.line_state(line) is not CacheState.I
        }
        exclusive = [t for t, s in holders.items()
                     if s in (CacheState.M, CacheState.E)]
        shared = [t for t, s in holders.items() if s is CacheState.S]
        if len(exclusive) > 1:
            problems.append(f"{line!r}: multiple exclusive owners {exclusive}")
        if exclusive and shared:
            problems.append(
                f"{line!r}: owner {exclusive} coexists with sharers {shared}")
        if entry is None:
            if holders:
                problems.append(
                    f"{line!r}: cached at {sorted(holders)} but no dir entry")
            continue
        if not entry.is_stable() or entry.queue:
            problems.append(f"{line!r}: residual transient state {entry!r}")
            continue
        if entry.state is DirState.M:
            if not exclusive or entry.owner not in exclusive:
                problems.append(
                    f"{line!r}: dir owner {entry.owner} but holders {holders}")
        else:
            for tile in shared:
                if tile not in entry.sharers:
                    problems.append(
                        f"{line!r}: cache {tile} in S but missing from "
                        f"sharer list {sorted(entry.sharers)}")
            # Value agreement for shared copies.
            for tile in shared:
                cached = system.caches[tile].line_entry(line)
                if cached.data.values != entry.data.values:
                    problems.append(
                        f"{line!r}: sharer {tile} data {cached.data!r} "
                        f"differs from LLC {entry.data!r}")
    for bank in system.directories:
        if bank._evicting:
            problems.append(
                f"dir{bank.tile}: eviction buffer not empty "
                f"{list(bank._evicting)}")
        if bank._pending_allocs:
            problems.append(f"dir{bank.tile}: parked requests left over")
    for cache in system.caches:
        leftovers = cache.mshrs.entries()
        if leftovers:
            problems.append(f"cache{cache.tile}: MSHRs not drained "
                            f"{leftovers}")
    if problems:
        raise ProtocolError("coherence invariants violated:\n"
                            + "\n".join(problems))


def check_quiescent(system) -> None:
    """Full quiescence gate: coherence invariants plus drained machinery.

    On top of :func:`check_coherence`, verifies that the run actually
    wound down: the event queue holds no pending callbacks, and every
    message acquired from the mesh's pool was released exactly once
    (``outstanding == 0``) — a leak means some handler parked a message
    and never replayed it; a negative count means a double release.

    Only meaningful for systems driven through the normal run loop: the
    model-checking explorer's BufferingNetwork delivers messages without
    returning them to the pool, so it must keep using
    :func:`check_coherence` directly.
    """
    check_coherence(system)
    problems: List[str] = []
    pending = len(system.events)
    if pending:
        problems.append(
            f"event queue not drained: {pending} callbacks still scheduled")
    pool = getattr(system.network, "pool", None)
    if pool is not None and pool.outstanding:
        problems.append(
            f"message pool not drained: outstanding={pool.outstanding} "
            "(acquired but never released)")
    if problems:
        raise ProtocolError("system not quiescent:\n" + "\n".join(problems))
