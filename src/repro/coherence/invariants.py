"""Coherence invariants, checkable on a quiescent system or per cycle.

These are the structural guarantees a coherence protocol must maintain.
They are checked by the schedule-fuzzing tests after every run, by the
per-cycle property-test probe, and users can call
:func:`check_coherence` on any quiesced :class:`MulticoreSystem` as a
sanity gate.

The checks are backend-dispatched: :func:`check_coherence` resolves the
system's :class:`~repro.coherence.backend.CoherenceBackend` and asks it
for protocol-specific violations, because "coherent" means different
things per protocol — baseline MESI's SWMR excludes *any* other copy
while an owner exists, whereas tardis legitimately keeps leased shared
copies alive alongside a new owner (their leases are in the past).

Baseline invariants (all at quiescence — no in-flight messages):

* **SWMR**: at most one private cache holds a line in M/E; if one does,
  no other cache holds it at all.
* **Directory owner accuracy**: a dir entry in state M names an owner
  that actually holds the line in M or E.
* **Sharer soundness**: every cache holding a line in S is on its home
  directory's sharer list (silent evictions may leave *stale* sharers,
  which is fine; missing ones are not).
* **Value agreement**: every S copy matches the LLC's data for the
  line; an M/E copy is allowed to be newer (dirty).
* **No residual transients**: every directory entry is back in a stable
  state with empty queues, no eviction-buffer leftovers, and no
  outstanding MSHRs anywhere.

Tardis invariants live in :mod:`repro.coherence.tardis` (timestamp
SWMR, the data-value invariant, lease/timestamp monotonicity).
"""

from __future__ import annotations

from typing import List

from ..common.errors import ProtocolError
from ..common.types import CacheState, DirState


def directory_banks(system):
    """Directory banks of any system-like object.

    ``MulticoreSystem`` exposes ``directories``; the explorer's
    ``VerifSystem`` and the coherence test harness expose ``dirs``.
    """
    banks = getattr(system, "directories", None)
    if banks is None:
        banks = system.dirs
    return banks


def backend_of(system):
    """Resolve the :class:`CoherenceBackend` a system was built with."""
    backend = getattr(system, "backend", None)
    if backend is None:
        from .backend import get_backend
        backend = get_backend("baseline")
    return backend


def check_coherence(system) -> None:
    """Raise :class:`ProtocolError` on any violated quiescent invariant."""
    problems = backend_of(system).coherence_problems(system)
    if problems:
        raise ProtocolError("coherence invariants violated:\n"
                            + "\n".join(problems))


def check_cycle(system) -> None:
    """Raise on any invariant that must hold at *every* cycle.

    Unlike :func:`check_coherence` this may run mid-transaction, so it
    only asserts properties that survive in-flight messages.  Wire it
    through :func:`attach_probe` to gate a whole run.
    """
    problems = backend_of(system).cycle_problems(system)
    if problems:
        raise ProtocolError("per-cycle invariants violated:\n"
                            + "\n".join(problems))


def attach_probe(system, *, period: int = 1):
    """Install a per-cycle invariant probe on a :class:`MulticoreSystem`.

    The run loop calls ``system.probe(now)`` once per iteration (same
    zero-cost-when-off contract as the metrics sampler); every *period*
    cycles this checks the backend's cycle invariants and records the
    number of checks performed.  Returns a one-element list holding that
    count so tests can assert the probe actually fired.
    """
    checks = [0]
    last = [-1]

    def probe(now: int) -> None:
        if now - last[0] < period:
            return
        last[0] = now
        checks[0] += 1
        check_cycle(system)

    system.probe = probe
    return checks


def baseline_coherence_problems(system) -> List[str]:
    """Quiescent-state violations for the baseline MESI protocol."""
    problems: List[str] = []
    banks = directory_banks(system)
    lines = set()
    for cache in system.caches:
        for line, __ in cache._lines.items():
            lines.add(line)
    for bank in banks:
        for line, __ in bank._array.items():
            lines.add(line)

    for line in sorted(lines, key=int):
        home = banks[int(line) % len(banks)]
        entry = home.entry(line)
        holders = {
            tile: cache.line_state(line)
            for tile, cache in enumerate(system.caches)
            if cache.line_state(line) is not CacheState.I
        }
        exclusive = [t for t, s in holders.items()
                     if s in (CacheState.M, CacheState.E)]
        shared = [t for t, s in holders.items() if s is CacheState.S]
        if len(exclusive) > 1:
            problems.append(f"{line!r}: multiple exclusive owners {exclusive}")
        if exclusive and shared:
            problems.append(
                f"{line!r}: owner {exclusive} coexists with sharers {shared}")
        if entry is None:
            if holders:
                problems.append(
                    f"{line!r}: cached at {sorted(holders)} but no dir entry")
            continue
        if not entry.is_stable() or entry.queue:
            problems.append(f"{line!r}: residual transient state {entry!r}")
            continue
        if entry.state is DirState.M:
            if not exclusive or entry.owner not in exclusive:
                problems.append(
                    f"{line!r}: dir owner {entry.owner} but holders {holders}")
        else:
            for tile in shared:
                if tile not in entry.sharers:
                    problems.append(
                        f"{line!r}: cache {tile} in S but missing from "
                        f"sharer list {sorted(entry.sharers)}")
            # Value agreement for shared copies.
            for tile in shared:
                cached = system.caches[tile].line_entry(line)
                if cached.data.values != entry.data.values:
                    problems.append(
                        f"{line!r}: sharer {tile} data {cached.data!r} "
                        f"differs from LLC {entry.data!r}")
    for bank in banks:
        if bank._evicting:
            problems.append(
                f"dir{bank.tile}: eviction buffer not empty "
                f"{list(bank._evicting)}")
        if bank._pending_allocs:
            problems.append(f"dir{bank.tile}: parked requests left over")
    for cache in system.caches:
        leftovers = cache.mshrs.entries()
        if leftovers:
            problems.append(f"cache{cache.tile}: MSHRs not drained "
                            f"{leftovers}")
    return problems


def baseline_cycle_problems(system) -> List[str]:
    """Every-cycle violations for baseline MESI.

    Mid-transaction states limit what can be asserted: sharer lists may
    be stale (silent evictions) and directory data may lag an owner.
    What must hold at *every* cycle is single-writer exclusivity — a
    cache only installs M/E after every other copy acknowledged its
    invalidation, so an owner never coexists with any other copy.
    """
    problems: List[str] = []
    holders: dict = {}
    for cache in system.caches:
        for line, entry in cache._lines.items():
            holders.setdefault(line, []).append((cache.tile, entry.state))
    for line, copies in holders.items():
        exclusive = [t for t, s in copies
                     if s in (CacheState.M, CacheState.E)]
        if len(exclusive) > 1:
            problems.append(
                f"{line!r}: multiple exclusive owners {exclusive}")
        elif exclusive and len(copies) > 1:
            problems.append(
                f"{line!r}: owner {exclusive[0]} coexists with copies at "
                f"{sorted(t for t, __ in copies)}")
    return problems


def check_quiescent(system) -> None:
    """Full quiescence gate: coherence invariants plus drained machinery.

    On top of :func:`check_coherence`, verifies that the run actually
    wound down: the event queue holds no pending callbacks, and every
    message acquired from the mesh's pool was released exactly once
    (``outstanding == 0``) — a leak means some handler parked a message
    and never replayed it; a negative count means a double release.

    Only meaningful for systems driven through the normal run loop: the
    model-checking explorer's BufferingNetwork delivers messages without
    returning them to the pool, so it must keep using
    :func:`check_coherence` directly.
    """
    check_coherence(system)
    problems: List[str] = []
    pending = len(system.events)
    if pending:
        problems.append(
            f"event queue not drained: {pending} callbacks still scheduled")
    pool = getattr(system.network, "pool", None)
    if pool is not None and pool.outstanding:
        problems.append(
            f"message pool not drained: outstanding={pool.outstanding} "
            "(acquired but never released)")
    if problems:
        raise ProtocolError("system not quiescent:\n" + "\n".join(problems))
