"""Tardis timestamp coherence backend (Yu & Devadas, PAPERS.md).

Tardis orders memory operations in *logical timestamp* space instead of
enforcing single-writer exclusivity in physical time.  Every line copy
carries a write timestamp ``wts`` (logical time of the last store) and a
read timestamp ``rts`` (the end of its lease); every cache keeps a
program timestamp ``pts``.  A shared copy is readable at logical time
``ts = max(pts, wts)`` as long as ``ts <= rts``; a store writes at
``wts' > rts``, i.e. logically *after* every lease it ever granted.
There is **no invalidation traffic**: stale copies simply expire.

Key differences from the ``baseline`` MESI backend:

* Reads are leased.  The directory extends ``rts`` to at least
  ``requester_pts + lease`` on every read, and a resident-but-expired
  copy *self-renews* with a 1-flit RENEW / RENEW_ACK exchange (a full
  DATA reply only when the data actually changed).
* Writes recall the owner (RECALL / RECALL_ACK) instead of invalidating
  sharers; the previous owner keeps a leased shared copy, extending its
  own lease before the downgrade so the reported ``rts`` covers it —
  the directory bumps its timestamps with the ack (ownership-transfer
  timestamp bump), guaranteeing the next writer's ``wts`` lands after
  every outstanding lease.
* Directory evictions of S entries are silent, but the timestamps are
  persisted in ``_ts_memory`` — re-fetching a line with ``wts = rts =
  0`` would let new leases overlap old ones and break the ordering.

TSO soundness on top of an out-of-order core that performs loads early:
the baseline protocol squashes M-speculative loads when an invalidation
arrives; tardis has no invalidations, so this backend synthesizes the
equivalent ordering points through the same ``invalidation_hook`` /
``eviction_hook`` callbacks, *before* delivering any value:

* **expiry sweep** — whenever ``pts`` advances, every shared copy whose
  lease just expired (``old_pts <= rts < new_pts``) fires
  ``invalidation_hook``: a younger load that bound from that lease is
  ordered *before* the value being delivered now, so it must squash;
* **version replacement** — installing data with a different ``wts``
  over a resident copy fires ``invalidation_hook`` (same-line CoRR:
  a younger load bound from the superseded version must not survive an
  older load reading the newer one);
* **eviction** — dropping a leased copy fires ``eviction_hook`` (the
  ``rts`` record is lost, so the sweep could no longer protect it).

Leased hits additionally advance ``pts`` to ``ts + 1`` (not ``ts``):
this bounds staleness — a spinning reader exhausts its lease within
``lease`` iterations and the renewal fetches fresh data — which is what
keeps spin-loop workloads live without invalidations.

The proof-paper invariants (SWMR per logical time, the data-value
invariant, timestamp monotonicity) are exposed as
:meth:`TardisBackend.coherence_problems` / ``cycle_problems`` for the
property-test battery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..common.errors import ProtocolError
from ..common.event_queue import EventQueue
from ..common.params import CacheParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, CommitMode, DirState, LineAddr, MsgType, line_of
from ..mem.cache_array import CacheArray, PresenceLRU
from ..mem.line_data import LineData, VersionedValue
from ..mem.mshr import MSHREntry, MSHRFile
from ..network.mesh import MeshNetwork
from ..network.message import Message
from ..obs.events import EventBus, Kind
from . import probe
from .backend import CoherenceBackend, register_backend
from .private_cache import LoadRequest


@dataclass(slots=True)
class TardisLine:
    """A line resident in a private cache, with its timestamps."""

    state: CacheState  # M (owned) or S (leased)
    data: LineData
    wts: int = 0
    rts: int = 0


@dataclass(slots=True, eq=False)
class TardisDirEntry:
    """One directory/LLC entry with authoritative timestamps."""

    line: LineAddr
    state: DirState = DirState.I
    owner: Optional[int] = None
    data: LineData = field(default_factory=LineData)
    wts: int = 0
    rts: int = 0
    queue: Deque[Message] = field(default_factory=deque)
    reader: Optional[int] = None  # requester awaiting a recall (read)
    writer: Optional[int] = None  # requester awaiting a recall (write)
    pending_pts: int = 0  # requester pts stashed across a recall
    pending_lease: int = 0  # requester lease ask stashed across a recall
    pending_renew: bool = False  # recall was triggered by a RENEW
    fetching: bool = False  # memory fetch in flight

    def is_stable(self) -> bool:
        return self.state in (DirState.I, DirState.S, DirState.M)

    def __repr__(self) -> str:
        return (
            f"<TDir {self.line!r} {self.state.value} owner={self.owner} "
            f"wts={self.wts} rts={self.rts} q={len(self.queue)}>"
        )


@dataclass(slots=True, eq=False)
class EvictingTardisEntry:
    """An M directory entry parked while its owner's copy is recalled."""

    line: LineAddr
    data: LineData
    wts: int = 0
    rts: int = 0


class TardisCache:
    """Private cache controller speaking the tardis protocol.

    Duck-types :class:`repro.coherence.private_cache.PrivateCache`'s
    core-facing interface (load / request_write / perform_store /
    perform_atomic / line_state / gauges / hooks) so both core models
    drive it unchanged.  ``write_blocked`` is always False — tardis has
    no WritersBlock, so the SoS-bypass machinery never engages.
    """

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        if writers_block:
            raise ProtocolError("tardis backend has no WritersBlock support")
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = False
        self.lease = params.tardis_lease
        #: Program timestamp: the logical time of this core's last
        #: memory operation; monotone non-decreasing.
        self.pts = 0
        self._lines: CacheArray[TardisLine] = CacheArray(params.l2_sets,
                                                         params.l2_ways)
        self._l1 = PresenceLRU(params.l1_sets, params.l1_ways)
        self.mshrs = MSHRFile(params.mshr_entries, params.mshr_reserved_for_sos)
        self.mshrs.observer = self._mshr_event
        #: Timestamps of lines parked in a writeback MSHR (MSHREntry has
        #: no timestamp slots; one writeback per line at a time).
        self._wb_ts: Dict[LineAddr, Tuple[int, int]] = {}
        #: Leases dropped by eviction while still live: {line: (wts,
        #: rts)}.  The expiry sweep walks this ledger so loads bound
        #: from an evicted copy are still squashed when ``pts`` crosses
        #: the lease they bound under (a resident copy's rts record
        #: would have done it; eviction must not lose the obligation).
        self._stale_leases: Dict[LineAddr, Tuple[int, int]] = {}
        #: Consecutive fills that arrived already expired, per line.
        #: Each failure doubles the lease requested next time, so the
        #: grant eventually outpaces however fast concurrent activity
        #: advances ``pts`` during the round trip (the classic tardis
        #: renewal-livelock escape hatch).
        self._renew_fails: Dict[LineAddr, int] = {}
        # Core hooks, wired by the core model after construction (same
        # contract as PrivateCache; tardis fires them at its synthetic
        # ordering points — see the module docstring).
        self.invalidation_hook: Callable[[LineAddr], bool] = lambda line: False
        self.lockdown_query: Callable[[LineAddr], bool] = lambda line: False
        self.eviction_hook: Callable[[LineAddr], None] = lambda line: None
        prefix = f"cache{tile}"
        self._stat_loads = stats.counter(f"{prefix}.loads")
        self._stat_hits = stats.counter(f"{prefix}.load_hits")
        self._stat_misses = stats.counter(f"{prefix}.load_misses")
        self._stat_writebacks = stats.counter("cache.writebacks")
        self._stat_renews = stats.counter("tardis.renews_sent")
        self._stat_expiries = stats.counter("tardis.lease_expiries")
        self._num_tiles = network.topology.num_tiles
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        self._dispatch = {
            MsgType.DATA: self._on_data,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.RENEW_ACK: self._on_renew_ack,
            MsgType.RECALL: self._on_recall,
            MsgType.WB_ACK: self._on_wb_ack,
        }
        network.register(tile, "cache", self.handle_message)

    # ------------------------------------------------------------------ util
    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler."""
        return {"mshr": self.mshrs.occupancy}

    def _mshr_event(self, action: str, entry: MSHREntry) -> None:
        bus = self.bus
        if not bus.active:
            return
        if action == "alloc":
            bus.emit(Kind.MSHR_ALLOC, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind,
                     sos=entry.is_sos_bypass)
        else:
            bus.emit(Kind.MSHR_FREE, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind)

    def home_of(self, line: LineAddr) -> int:
        return line.value % self._num_tiles

    def _send(self, msg_type: MsgType, dst: int, port: str, line: LineAddr,
              **payload) -> None:
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        network = self.network
        network.send(network.acquire_message(
            msg_type, self.tile, dst, port, line, payload))

    def line_state(self, line: LineAddr) -> CacheState:
        entry = self._lines.lookup(line, touch=False)
        return entry.state if entry else CacheState.I

    def _cov_state(self, line: LineAddr) -> str:
        return self.line_state(line).name

    def line_entry(self, line: LineAddr) -> Optional[TardisLine]:
        return self._lines.lookup(line, touch=False)

    def write_blocked(self, line: LineAddr) -> bool:
        """Tardis never blocks writes at the directory (no WritersBlock)."""
        return False

    def has_write_mshr(self, line: LineAddr) -> bool:
        mshr = self.mshrs.get(line)
        return bool(mshr and mshr.kind == "write")

    # ------------------------------------------------------------ timestamps
    def _usable(self, entry: TardisLine) -> bool:
        """May this copy serve a read at the current ``pts``?

        Leased copies need STRICTLY ts < rts: a leased bind advances
        ``pts`` to ts + 1, and binding exactly at the lease edge would
        expire the very lease the binding depends on — the expiry sweep
        fires during the bind's own advance, before the load is
        performed/squashable, leaving the binding unprotected against
        older loads that later bind at higher timestamps.  Keeping the
        post-bind ``pts`` within the lease means the rts record stays
        live, and whichever later advance crosses it squashes correctly.
        """
        if entry.state is CacheState.M:
            return True
        ts = self.pts if entry.wts <= self.pts else entry.wts
        return ts < entry.rts

    def _advance_pts(self, ts: int) -> None:
        """Advance ``pts`` and run the expiry sweep.

        Every leased copy whose lease was live at the old ``pts`` but is
        expired at the new one fires ``invalidation_hook`` — the exact
        set of lines whose bound-but-speculative younger loads are now
        ordered before the operation that advanced time.  The ledger of
        evicted-but-live leases is swept too, so an eviction between
        binding and crossing does not lose the squash obligation.
        """
        old = self.pts
        if ts <= old:
            return
        self.pts = ts
        expired = [line for line, entry in self._lines.items()
                   if entry.state is CacheState.S and old <= entry.rts < ts]
        for line in expired:
            self._stat_expiries.add()
            self.invalidation_hook(line)
        if self._stale_leases:
            crossed = [line for line, (__, rts) in self._stale_leases.items()
                       if rts < ts]
            for line in crossed:
                del self._stale_leases[line]
                self._stat_expiries.add()
                self.invalidation_hook(line)

    def _deliver_value(self, request: LoadRequest, entry: TardisLine) -> None:
        """Bind one load from *entry* (assumed usable) and advance time.

        Time advances (and the expiry sweep runs) BEFORE the value
        binds: loads already bound from now-expired leases must be
        squashed while this load still counts as non-performed — once
        it performs, younger stale loads would look "ordered" to the
        squash machinery and escape.  The strict ``_usable`` check
        guarantees the advance never crosses this entry's own lease.
        """
        ts = self.pts if entry.wts <= self.pts else entry.wts
        if entry.state is CacheState.S:
            # +1 on leased reads bounds staleness (see module docstring).
            self._advance_pts(ts + 1)
        else:
            self._advance_pts(ts)
        value = entry.data.read(request.byte_addr % self.params.line_bytes)
        request.on_value(value, False)

    # ------------------------------------------------------------- load path
    def load(self, request: LoadRequest, *, sos_bypass: bool = False) -> str:
        """Start a load.  Returns "hit", "miss", or "retry".

        ``sos_bypass`` is accepted for interface compatibility; tardis
        reads are never blocked behind a write, so an SoS load is just a
        load (it may still use the reserved MSHR).
        """
        cov = self._cov
        if cov is None:
            return self._load(request, sos_bypass)
        line = line_of(request.byte_addr, self.params.line_bytes)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._load(request, sos_bypass)
        probe.note(self, "cache", line,
                   "load_sos" if sos_bypass else "load", before, mark)
        return result

    def _load(self, request: LoadRequest, sos_bypass: bool) -> str:
        self._stat_loads.add()
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is not None and self._usable(entry):
            latency = (self.params.l1_hit_cycles if line in self._l1
                       else self.params.l2_hit_cycles)
            self._l1.touch(line)
            self._stat_hits.add()
            # Value binds at completion, not start: the lease may expire
            # inside the hit latency (another op advances pts).
            self.events.schedule(latency, lambda: self._finish_hit(request))
            return "hit"
        self._stat_misses.add()
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if mshr.kind == "writeback":
                return "retry"
            mshr.waiting_loads.append(request)
            return "miss"
        if not self.mshrs.can_allocate(sos=sos_bypass):
            return "retry"
        mshr = self.mshrs.allocate(line, "read", sos_bypass=sos_bypass)
        mshr.waiting_loads.append(request)
        lease = self.lease << min(self._renew_fails.get(line, 0), 8)
        if entry is not None:
            # Resident but lease expired: self-renew (1-flit exchange
            # unless the directory's wts moved past our copy's).
            self._stat_renews.add()
            self._send(MsgType.RENEW, self.home_of(line), "llc", line,
                       pts=self.pts, wts=entry.wts, lease=lease)
        else:
            self._send(MsgType.GETS, self.home_of(line), "llc", line,
                       pts=self.pts, lease=lease)
        return "miss"

    def _finish_hit(self, request: LoadRequest) -> None:
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line, touch=False)
        if entry is not None and self._usable(entry):
            self._deliver_value(request, entry)
            return
        # Lease expired (or line lost) during the access: replay; the
        # retry will miss and self-renew.
        request.on_must_retry(False)

    # ------------------------------------------------------------ write path
    def request_write(self, line: LineAddr,
                      on_granted: Callable[[], None]) -> str:
        """Acquire write permission; "granted", "pending" or "retry"."""
        cov = self._cov
        if cov is None:
            return self._request_write(line, on_granted)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._request_write(line, on_granted)
        probe.note(self, "cache", line, "write", before, mark)
        return result

    def _request_write(self, line: LineAddr,
                       on_granted: Callable[[], None]) -> str:
        entry = self._lines.lookup(line)
        if entry is not None and entry.state is CacheState.M:
            on_granted()
            return "granted"
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if mshr.kind == "write":
                mshr.payload_grants.append(on_granted)
                return "pending"
            if mshr.kind == "read":
                mshr.deferred_writes.append(on_granted)
                return "pending"
            return "retry"  # writeback in progress; replay later
        if not self.mshrs.can_allocate():
            return "retry"
        mshr = self.mshrs.allocate(line, "write")
        mshr.payload_grants = [on_granted]
        # No Upgrade path: a leased S copy may be stale, so a write
        # always fetches fresh data + timestamps.
        self._send(MsgType.GETX, self.home_of(line), "llc", line,
                   pts=self.pts)
        return "pending"

    def _store_timestamp(self, entry: TardisLine) -> int:
        """Logical time of a store to an owned copy: after our own past
        (``pts``) and after every lease the line ever granted."""
        ts = entry.rts + 1
        if self.pts > ts:
            ts = self.pts
        return ts

    def perform_store(self, byte_addr: int, version: int, value: int) -> None:
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: store to {line!r} without M permission"
            )
        ts = self._store_timestamp(entry)
        self._advance_pts(ts)
        entry.wts = entry.rts = ts
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "store", "M",
                       len(self._cov_sends))

    def perform_atomic(self, byte_addr: int, version: int,
                       value: int) -> VersionedValue:
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: atomic to {line!r} without M permission"
            )
        ts = self._store_timestamp(entry)
        self._advance_pts(ts)
        old = entry.data.read(byte_addr % self.params.line_bytes)
        entry.wts = entry.rts = ts
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "atomic", "M",
                       len(self._cov_sends))
        return old

    def send_deferred_ack(self, line: LineAddr) -> None:
        raise ProtocolError("tardis backend has no deferred acks "
                            "(no Nacks, no WritersBlock)")

    # ---------------------------------------------------------- msg handling
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"cache {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "cache", msg.line, msg.msg_type.name, before, mark)

    def _update_line(self, line: LineAddr, state: CacheState, data: LineData,
                     wts: int, rts: int) -> Optional[TardisLine]:
        """Install/refresh a copy; fires the version-replacement squash."""
        existing = self._lines.lookup(line)
        if existing is not None:
            if existing.wts != wts:
                # A strictly newer version supersedes the resident copy:
                # same ordering point as an invalidation for loads bound
                # from the old version (same-line CoRR).
                self.invalidation_hook(line)
            existing.state = state
            existing.data = data
            existing.wts = wts
            existing.rts = rts
            self._l1.touch(line)
            return existing
        victim = self._pick_victim(line)
        if victim == "full":
            return None  # every way busy: do not cache (rare)
        if victim is not None:
            victim_entry = self._lines.lookup(victim, touch=False)
            if (victim_entry.state is CacheState.M
                    and not self.mshrs.can_allocate()):
                return None  # no writeback MSHR: skip caching this fill
            self._evict(victim)
        stale = self._stale_leases.pop(line, None)
        if stale is not None and stale[0] != wts:
            # The line comes back as a different version than the one
            # whose lease we dropped: loads bound from the old copy are
            # stale relative to this install (same ordering point as the
            # resident version-replacement above).  Same-version
            # reinstalls just resume the lease — the fresh rts record
            # takes the ledger entry's place in the sweep.
            self.invalidation_hook(line)
        entry = TardisLine(state=state, data=data, wts=wts, rts=rts)
        self._lines.insert(line, entry)
        self._l1.touch(line)
        return entry

    def _complete_read(self, mshr: MSHREntry, line: LineAddr,
                       entry: Optional[TardisLine]) -> None:
        """Deliver waiting loads after a DATA / RENEW_ACK, then chain
        deferred writes.  Loads that cannot bind (lease already expired
        at delivery, or the fill was not cached) replay and re-renew."""
        waiting = list(mshr.waiting_loads)
        deferred = list(mshr.deferred_writes)
        self.mshrs.free(mshr)
        bound = missed = False
        for request in waiting:
            # Usability is re-checked per waiter: each leased bind
            # advances pts by one, which can expire the entry for the
            # next waiter in the same completion.
            if entry is not None and self._usable(entry):
                self._deliver_value(request, entry)
                bound = True
            else:
                request.on_must_retry(False)
                missed = True
        if missed:
            self._renew_fails[line] = self._renew_fails.get(line, 0) + 1
        elif bound:
            self._renew_fails.pop(line, None)
        for on_granted in deferred:
            self.request_write(line, on_granted)

    def _on_data(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "read":
            raise ProtocolError(f"cache {self.tile}: Data without read "
                                f"MSHR {msg!r}")
        payload = msg.payload
        entry = self._update_line(msg.line, CacheState.S, payload["data"],
                                  payload["wts"], payload["rts"])
        self._complete_read(mshr, msg.line, entry)

    def _on_renew_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "read":
            raise ProtocolError(f"cache {self.tile}: RenewAck without read "
                                f"MSHR {msg!r}")
        entry = self._lines.lookup(msg.line)
        if entry is None or entry.wts != msg.payload["wts"]:
            # The read MSHR pins the line against eviction and we are
            # not the owner, so the copy cannot have changed under us.
            raise ProtocolError(f"cache {self.tile}: RenewAck for a copy "
                                f"that moved: {msg!r}")
        if msg.payload["rts"] > entry.rts:
            entry.rts = msg.payload["rts"]
        self._complete_read(mshr, msg.line, entry)

    def _on_data_excl(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "write":
            raise ProtocolError(f"cache {self.tile}: DataE without write "
                                f"MSHR {msg!r}")
        payload = msg.payload
        entry = self._update_line(msg.line, CacheState.M, payload["data"],
                                  payload["wts"], payload["rts"])
        if entry is None:
            # Unlike a read fill, ownership cannot be dropped on the
            # floor — the directory now names us owner.
            raise ProtocolError(
                f"cache {self.tile}: no way free to install owned line "
                f"{msg.line!r}")
        waiting = list(mshr.waiting_loads)
        grants = list(mshr.payload_grants)
        self.mshrs.free(mshr)
        for request in waiting:
            self._deliver_value(request, entry)  # M copies always usable
        for on_granted in grants:
            on_granted()

    def _on_recall(self, msg: Message) -> None:
        """The directory recalls our owned copy (a writer or reader is
        waiting, or the home entry is being evicted)."""
        line = msg.line
        entry = self._lines.lookup(line, touch=False)
        if entry is not None and entry.state is CacheState.M:
            # Keep a leased shared copy; extend our own lease first so
            # the reported rts covers it (the directory merges with max,
            # so the next writer's wts lands after this lease).  It must
            # reach at least the current pts: reads served while owned
            # bound at timestamps up to pts, and the next writer's
            # version has to land strictly after every one of them.
            rts = max(entry.wts + self.lease, self.pts)
            if rts > entry.rts:
                entry.rts = rts
            entry.state = CacheState.S
            self._send(MsgType.RECALL_ACK, self.home_of(line), "llc", line,
                       data=entry.data.copy(), wts=entry.wts, rts=entry.rts)
            return
        wb = self.mshrs.get(line)
        if wb is not None and wb.kind == "writeback":
            # Our eviction writeback crossed the recall; answer from the
            # writeback buffer (the WbAck is FIFO-behind this Recall).
            wts, rts = self._wb_ts[line]
            self._send(MsgType.RECALL_ACK, self.home_of(line), "llc", line,
                       data=wb.data.copy(), wts=wts, rts=rts)
            return
        raise ProtocolError(f"cache {self.tile}: Recall but not owner {msg!r}")

    def _on_wb_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "writeback":
            raise ProtocolError(f"cache {self.tile}: WbAck w/o writeback "
                                f"{msg!r}")
        self._wb_ts.pop(msg.line, None)
        self.mshrs.free(mshr)

    # ------------------------------------------------------------- residency
    def _pick_victim(self, line: LineAddr):
        victim = self._lines.victim_for(line)
        if victim is None:
            return None
        victim_line, __ = victim
        if not self._busy(victim_line):
            return victim_line
        target_set = line.value % self.params.l2_sets
        for cand_line, __ in self._lines.items():
            if cand_line.value % self.params.l2_sets != target_set:
                continue
            if not self._busy(cand_line):
                return cand_line
        return "full"

    def _busy(self, line: LineAddr) -> bool:
        return self.mshrs.get(line) is not None

    def _evict(self, line: LineAddr) -> None:
        cov = self._cov
        if cov is None:
            self._evict_impl(line)
            return
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        self._evict_impl(line)
        probe.note(self, "cache", line, "evict", before, mark)

    def _evict_impl(self, line: LineAddr) -> None:
        entry = self._lines.lookup(line, touch=False)
        if entry is None:
            return
        if entry.state is CacheState.M:
            # Reads served while owned bound at timestamps up to the
            # current pts; extend the relinquished lease to cover them
            # so the next writer's version lands strictly after.
            if self.pts > entry.rts:
                entry.rts = self.pts
            wb = self.mshrs.allocate(line, "writeback")
            wb.data = entry.data
            self._wb_ts[line] = (entry.wts, entry.rts)
            self._stale_leases[line] = (entry.wts, entry.rts)
            self._stat_writebacks.add()
            self._send(MsgType.PUTM, self.home_of(line), "llc", line,
                       data=entry.data.copy(), wts=entry.wts, rts=entry.rts)
        elif entry.rts >= self.pts:
            # Dropping a still-live lease: remember it so the expiry
            # sweep can squash loads bound from it when pts crosses its
            # rts (an expired lease already had its crossing fire while
            # the copy was resident).
            self._stale_leases[line] = (entry.wts, entry.rts)
        self._lines.remove(line)
        self._l1.drop(line)


class TardisDirectory:
    """Directory / LLC bank for the tardis protocol.

    Reads are served *non-blocking* from any state except M (where the
    owner's copy must be recalled first); there is no Unblock handshake
    — per-channel FIFO delivery guarantees a later Recall arrives after
    the DataE that created the owner it targets.  Internal structures
    (``_array``, ``_evicting``, ``_pending_allocs``) mirror
    :class:`DirectoryBank` so generic residue checks work on both.
    """

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        if writers_block:
            raise ProtocolError("tardis backend has no WritersBlock support")
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = False
        self.lease = params.tardis_lease
        self._array: CacheArray[TardisDirEntry] = CacheArray(
            params.llc_sets_per_bank, params.llc_ways
        )
        self._memory: Dict[LineAddr, LineData] = {}
        #: (wts, rts) persisted across LLC evictions: outstanding leases
        #: must stay ordered against future writes even when the entry
        #: spills to memory.
        self._ts_memory: Dict[LineAddr, Tuple[int, int]] = {}
        self._evicting: Dict[LineAddr, EvictingTardisEntry] = {}
        self._pending_allocs: List[Message] = []
        self._retry_scheduled = False
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        self._stat_requests = stats.counter("dir.requests")
        self._stat_evictions = stats.counter("dir.llc_evictions")
        self._stat_renews = stats.counter("tardis.renewals")
        self._stat_renew_data = stats.counter("tardis.renewals_with_data")
        self._stat_recalls = stats.counter("tardis.recalls")
        self._dispatch = {
            MsgType.GETS: self._on_request,
            MsgType.GETX: self._on_request,
            MsgType.RENEW: self._on_request,
            MsgType.PUTM: self._on_putm,
            MsgType.RECALL_ACK: self._on_recall_ack,
        }
        network.register(tile, "llc", self.handle_message)

    # ------------------------------------------------------------------ util
    def _send(self, msg_type: MsgType, dst: int, line: LineAddr,
              delay: Optional[int] = None, **payload) -> None:
        """Send after the bank's access latency (uniform delay keeps
        per-channel FIFO order — a Recall must never overtake the DataE
        that created the owner it recalls)."""
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        if delay is None:
            delay = self.params.llc_hit_cycles
        msg = self.network.acquire_message(msg_type, self.tile, dst, "cache",
                                           line, payload)
        self.events.schedule(delay, lambda: self.network.send(msg))

    def _memory_data(self, line: LineAddr) -> LineData:
        if line not in self._memory:
            self._memory[line] = LineData()
        return self._memory[line]

    def _cov_state(self, line: LineAddr) -> str:
        if line in self._evicting:
            return "EVICTING"
        entry = self._array.lookup(line, touch=False)
        return entry.state.name if entry is not None else "I"

    # --------------------------------------------------------------- receive
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"directory {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "dir", msg.line, msg.msg_type.name, before, mark)

    # -------------------------------------------------------------- requests
    def _on_request(self, msg: Message) -> None:
        self._stat_requests.add()
        entry = self._array.lookup(msg.line)
        if entry is None:
            if msg.line in self._evicting:
                # Mid-recall-eviction: data at the LLC is stale until
                # the owner answers; park everything.
                msg.parked = True
                self._pending_allocs.append(msg)
                return
            entry = self._try_allocate(msg.line)
            if entry is None:
                msg.parked = True
                self._pending_allocs.append(msg)
                return
        if not entry.is_stable() or entry.fetching:
            msg.parked = True
            entry.queue.append(msg)
            return
        self._process_request(entry, msg)

    def _process_request(self, entry: TardisDirEntry, msg: Message) -> None:
        if msg.msg_type is MsgType.GETX:
            self._process_getx(entry, msg)
        else:
            self._process_read(entry, msg)

    def _extend_lease(self, entry: TardisDirEntry, req_pts: int,
                      req_lease: int = 0) -> None:
        lease = req_lease if req_lease > self.lease else self.lease
        rts = req_pts + lease
        if entry.wts + lease > rts:
            rts = entry.wts + lease
        if rts > entry.rts:
            entry.rts = rts

    def _process_read(self, entry: TardisDirEntry, msg: Message) -> None:
        """GETS or RENEW: lease the LLC copy, recalling the owner first
        when one exists."""
        requester = msg.src
        req_pts = msg.payload.get("pts", 0)
        req_lease = msg.payload.get("lease", 0)
        if entry.state is DirState.M:
            if entry.owner == requester:
                raise ProtocolError(
                    f"read from current owner {requester} for {entry.line!r}")
            entry.state = DirState.BUSY_READ
            entry.reader = requester
            entry.pending_pts = req_pts
            entry.pending_lease = req_lease
            entry.pending_renew = msg.msg_type is MsgType.RENEW
            self._stat_recalls.add()
            self._send(MsgType.RECALL, entry.owner, entry.line)
            return
        self._extend_lease(entry, req_pts, req_lease)
        entry.state = DirState.S
        if (msg.msg_type is MsgType.RENEW
                and msg.payload.get("wts") == entry.wts):
            # Data unchanged: 1-flit lease extension.
            self._stat_renews.add()
            self._send(MsgType.RENEW_ACK, requester, entry.line,
                       wts=entry.wts, rts=entry.rts)
            return
        if msg.msg_type is MsgType.RENEW:
            self._stat_renews.add()
            self._stat_renew_data.add()
        self._send(MsgType.DATA, requester, entry.line,
                   data=entry.data.copy(), wts=entry.wts, rts=entry.rts)

    def _process_getx(self, entry: TardisDirEntry, msg: Message) -> None:
        writer = msg.src
        if entry.state is DirState.M:
            if entry.owner == writer:
                raise ProtocolError(
                    f"GetX from current owner {writer} for {entry.line!r}")
            entry.state = DirState.BUSY_WRITE
            entry.writer = writer
            self._stat_recalls.add()
            self._send(MsgType.RECALL, entry.owner, entry.line)
            return
        self._grant_exclusive(entry, writer)

    def _grant_exclusive(self, entry: TardisDirEntry, writer: int) -> None:
        """Hand ownership to *writer*.  No Unblock: the entry moves to M
        immediately — any later Recall is FIFO-behind this DataE, so the
        writer has installed by the time it arrives."""
        self._send(MsgType.DATA_EXCL, writer, entry.line,
                   data=entry.data.copy(), wts=entry.wts, rts=entry.rts)
        entry.state = DirState.M
        entry.owner = writer

    # ------------------------------------------------------------- responses
    def _merge_timestamps(self, entry, wts: int, rts: int) -> None:
        if wts > entry.wts:
            entry.wts = wts
        if rts > entry.rts:
            entry.rts = rts

    def _on_recall_ack(self, msg: Message) -> None:
        line = msg.line
        payload = msg.payload
        evicting = self._evicting.get(line)
        if evicting is not None:
            evicting.data.merge_from(payload["data"])
            self._merge_timestamps(evicting, payload["wts"], payload["rts"])
            self._memory[line] = evicting.data
            self._ts_memory[line] = (evicting.wts, evicting.rts)
            del self._evicting[line]
            self._schedule_retry()
            return
        entry = self._array.lookup(line)
        if entry is None:
            raise ProtocolError(f"RecallAck for unknown line {msg!r}")
        entry.data.merge_from(payload["data"])
        # Ownership-transfer timestamp bump: the ack's rts covers every
        # lease the owner granted itself, so the next wts (> rts) is
        # ordered after all of them.
        self._merge_timestamps(entry, payload["wts"], payload["rts"])
        entry.owner = None
        if entry.state is DirState.BUSY_READ:
            reader = entry.reader
            entry.reader = None
            entry.state = DirState.S
            self._extend_lease(entry, entry.pending_pts, entry.pending_lease)
            if entry.pending_renew:
                self._stat_renews.add()
                self._stat_renew_data.add()
                entry.pending_renew = False
            self._send(MsgType.DATA, reader, line,
                       data=entry.data.copy(), wts=entry.wts, rts=entry.rts)
        elif entry.state is DirState.BUSY_WRITE:
            writer = entry.writer
            entry.writer = None
            self._grant_exclusive(entry, writer)
        else:
            raise ProtocolError(f"RecallAck in state {entry.state}: {msg!r}")
        self._drain_queue(entry)

    def _on_putm(self, msg: Message) -> None:
        line = msg.line
        payload = msg.payload
        evicting = self._evicting.get(line)
        if evicting is not None:
            # Writeback crossed our eviction recall; the RecallAck (sent
            # from the writeback buffer) still completes the eviction.
            evicting.data.merge_from(payload["data"])
            self._merge_timestamps(evicting, payload["wts"], payload["rts"])
            self._send(MsgType.WB_ACK, msg.src, line)
            return
        entry = self._array.lookup(line)
        if entry is None:
            # Entry spilled silently while the owner... cannot happen for
            # M entries (they go through the recall buffer); treat any
            # stray writeback defensively.
            data = self._memory_data(line)
            data.merge_from(payload["data"])
            old = self._ts_memory.get(line, (0, 0))
            self._ts_memory[line] = (max(old[0], payload["wts"]),
                                     max(old[1], payload["rts"]))
            self._send(MsgType.WB_ACK, msg.src, line)
            return
        if entry.owner == msg.src:
            entry.data.merge_from(payload["data"])
            self._merge_timestamps(entry, payload["wts"], payload["rts"])
            if entry.is_stable():
                # Normal owner writeback: the LLC copy is authoritative
                # again.  Mid-recall (BUSY_*) the state advances when the
                # RecallAck arrives instead.
                entry.owner = None
                entry.state = DirState.S
            self._send(MsgType.WB_ACK, msg.src, line)
            if entry.is_stable():
                self._drain_queue(entry)
        else:
            # Stale PutM from a core that is no longer owner.
            self._send(MsgType.WB_ACK, msg.src, line)

    # ----------------------------------------------------------- allocation
    def _try_allocate(self, line: LineAddr) -> Optional[TardisDirEntry]:
        victim = self._array.victim_for(line)
        if victim is not None:
            victim_line, victim_entry = victim
            if (not victim_entry.is_stable() or victim_entry.queue
                    or victim_entry.state is DirState.M):
                victim_entry = self._find_victim(line)
                if victim_entry is None:
                    return None
                victim_line = victim_entry.line
            if not self._evict(victim_line, victim_entry):
                return None
        wts, rts = self._ts_memory.get(line, (0, 0))
        entry = TardisDirEntry(line=line, data=self._memory_data(line).copy(),
                               wts=wts, rts=rts)
        entry.fetching = True
        self._array.insert(line, entry)
        self.events.schedule(self.params.memory_cycles,
                             lambda: self._fetch_done(entry))
        return entry

    def _find_victim(self, line: LineAddr) -> Optional[TardisDirEntry]:
        """Prefer a victim that spills silently (I/S) over one whose
        owner must be recalled; LRU order within each preference."""
        target_set = line.value % self.params.llc_sets_per_bank
        recallable = None
        for cand_line, cand in self._array.items():
            if cand_line.value % self.params.llc_sets_per_bank != target_set:
                continue
            if not cand.is_stable() or cand.queue:
                continue
            if cand.state is DirState.M:
                if recallable is None:
                    recallable = cand
                continue
            return cand
        return recallable

    def _evict(self, line: LineAddr, entry: TardisDirEntry) -> bool:
        cov = self._cov
        if cov is None:
            return self._evict_impl(line, entry)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        evicted = self._evict_impl(line, entry)
        if evicted:
            probe.note(self, "dir", line, "evict", before, mark)
        return evicted

    def _evict_impl(self, line: LineAddr, entry: TardisDirEntry) -> bool:
        if entry.state is DirState.M:
            if len(self._evicting) >= self.params.dir_eviction_buffer:
                return False
            self._stat_evictions.add()
            self._stat_recalls.add()
            self._array.remove(line)
            self._evicting[line] = EvictingTardisEntry(
                line=line, data=entry.data, wts=entry.wts, rts=entry.rts)
            self._send(MsgType.RECALL, entry.owner, line)
            return True
        # I/S entries spill silently; persisting the timestamps keeps
        # outstanding leases ordered against future writes.
        self._stat_evictions.add()
        self._array.remove(line)
        self._memory[line] = entry.data
        self._ts_memory[line] = (entry.wts, entry.rts)
        return True

    def _fetch_done(self, entry: TardisDirEntry) -> None:
        entry.fetching = False
        self._drain_queue(entry)
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if not self._pending_allocs or self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.events.schedule(1, self._retry_pending)

    def _retry_pending(self) -> None:
        self._retry_scheduled = False
        pending, self._pending_allocs = self._pending_allocs, []
        release = self.network.pool.release
        for msg in pending:
            msg.parked = False
            self._on_request(msg)
            if not msg.parked:
                release(msg)

    def _drain_queue(self, entry: TardisDirEntry) -> None:
        release = self.network.pool.release
        while entry.queue and entry.is_stable() and not entry.fetching:
            msg = entry.queue.popleft()
            msg.parked = False
            self._process_request(entry, msg)
            if not msg.parked:
                release(msg)
        self._schedule_retry()

    # --------------------------------------------------------------- inspect
    def entry(self, line: LineAddr) -> Optional[TardisDirEntry]:
        return self._array.lookup(line, touch=False)

    def evicting_entry(self, line: LineAddr) -> Optional[EvictingTardisEntry]:
        return self._evicting.get(line)

    def authoritative_ts(self, line: LineAddr) -> Tuple[int, int]:
        """The directory's (wts, rts) view of *line*, wherever it lives."""
        entry = self._array.lookup(line, touch=False)
        if entry is not None:
            return entry.wts, entry.rts
        evicting = self._evicting.get(line)
        if evicting is not None:
            return evicting.wts, evicting.rts
        return self._ts_memory.get(line, (0, 0))

    def snapshot(self) -> str:
        busy = [repr(e) for __, e in self._array.items() if not e.is_stable()]
        return f"dir{self.tile}: busy={busy} evicting={list(self._evicting)}"

    def gauges(self) -> Dict[str, int]:
        """Same gauge schema as the baseline bank (wb is always 0)."""
        dirq = len(self._pending_allocs)
        for __, entry in self._array.items():
            dirq += len(entry.queue)
        return {"dirq": dirq, "wb": 0, "evb": len(self._evicting)}


class TardisBackend(CoherenceBackend):
    """Registry entry wiring TardisCache/TardisDirectory into the sim."""

    name = "tardis"
    message_types = (
        MsgType.GETS, MsgType.GETX, MsgType.PUTM, MsgType.DATA,
        MsgType.DATA_EXCL, MsgType.WB_ACK, MsgType.RENEW,
        MsgType.RENEW_ACK, MsgType.RECALL, MsgType.RECALL_ACK,
    )
    supports_writers_block = False
    has_invalidations = False
    #: OOO_WB needs WritersBlock; tardis enforces load-load order via
    #: the expiry sweep + squash instead.  OOO_UNSAFE stays available as
    #: the checker-validation ablation.
    supported_commit_modes = (CommitMode.IN_ORDER, CommitMode.OOO,
                              CommitMode.OOO_UNSAFE)

    def transition_alphabet(self) -> frozenset:
        from .alphabet import TARDIS_ALPHABET
        return TARDIS_ALPHABET

    def build_cache(self, tile, params, network, events, stats, *,
                    writers_block, bus=None):
        return TardisCache(tile, params, network, events, stats,
                           writers_block=writers_block, bus=bus)

    def build_directory(self, tile, params, network, events, stats, *,
                        writers_block, bus=None):
        return TardisDirectory(tile, params, network, events, stats,
                               writers_block=writers_block, bus=bus)

    # ------------------------------------------------------------ invariants
    def coherence_problems(self, system) -> List[str]:
        """Quiescent-state invariants from the Tardis proof paper.

        * SWMR (timestamp form): at most one owned (M) copy per line;
          leased S copies may coexist with it only with leases entirely
          in the owner's past (``copy.rts < owner.wts`` is NOT required
          at quiescence — the owner may not have written yet — but
          ``copy.wts <= authoritative wts`` always is).
        * Data-value invariant: a copy carrying the authoritative wts
          carries the authoritative data; a copy with an older wts has
          ``rts < authoritative wts`` (validity intervals of different
          versions never overlap).
        * Timestamp sanity: ``wts <= rts`` everywhere; directory
          timestamps dominate every granted lease.
        * No residual transients: stable entries, empty queues, drained
          MSHRs and eviction buffers.
        """
        from .invariants import directory_banks
        problems: List[str] = []
        banks = directory_banks(system)
        lines = set()
        for cache in system.caches:
            for line, __ in cache._lines.items():
                lines.add(line)
        for bank in banks:
            for line, __ in bank._array.items():
                lines.add(line)

        for line in sorted(lines, key=int):
            home = banks[int(line) % len(banks)]
            entry = home.entry(line)
            if entry is not None and (not entry.is_stable() or entry.queue):
                problems.append(f"{line!r}: residual transient {entry!r}")
                continue
            owners = []
            copies = []
            for tile, cache in enumerate(system.caches):
                cached = cache.line_entry(line)
                if cached is None:
                    continue
                if cached.wts > cached.rts:
                    problems.append(
                        f"{line!r}: cache {tile} wts {cached.wts} > rts "
                        f"{cached.rts}")
                if cached.state is CacheState.M:
                    owners.append(tile)
                else:
                    copies.append(tile)
            if len(owners) > 1:
                problems.append(f"{line!r}: multiple owners {owners}")
            if owners:
                if entry is None or entry.state is not DirState.M \
                        or entry.owner != owners[0]:
                    problems.append(
                        f"{line!r}: owned by cache {owners[0]} but dir "
                        f"entry is {entry!r}")
                auth = system.caches[owners[0]].line_entry(line)
                auth_wts, auth_data = auth.wts, auth.data
            elif entry is not None:
                if entry.state is DirState.M:
                    problems.append(
                        f"{line!r}: dir names owner {entry.owner} but no "
                        f"cache holds M")
                if entry.wts > entry.rts:
                    problems.append(
                        f"{line!r}: dir wts {entry.wts} > rts {entry.rts}")
                auth_wts, auth_data = entry.wts, entry.data
            else:
                auth_wts, __ = home.authoritative_ts(line)
                auth_data = home._memory.get(line)
            for tile in copies:
                cached = system.caches[tile].line_entry(line)
                if cached.wts > auth_wts:
                    problems.append(
                        f"{line!r}: cache {tile} wts {cached.wts} ahead of "
                        f"authoritative {auth_wts}")
                elif cached.wts == auth_wts:
                    if (auth_data is not None
                            and cached.data.values != auth_data.values):
                        problems.append(
                            f"{line!r}: cache {tile} current-version data "
                            f"{cached.data!r} differs from {auth_data!r}")
                elif cached.rts >= auth_wts:
                    problems.append(
                        f"{line!r}: cache {tile} stale version "
                        f"[{cached.wts},{cached.rts}] overlaps write at "
                        f"{auth_wts}")
        for bank in banks:
            if bank._evicting:
                problems.append(
                    f"dir{bank.tile}: eviction buffer not empty "
                    f"{list(bank._evicting)}")
            if bank._pending_allocs:
                problems.append(f"dir{bank.tile}: parked requests left over")
        for cache in system.caches:
            leftovers = cache.mshrs.entries()
            if leftovers:
                problems.append(f"cache{cache.tile}: MSHRs not drained "
                                f"{leftovers}")
            if cache._wb_ts and not cache.mshrs.entries():
                problems.append(f"cache{cache.tile}: leaked writeback "
                                f"timestamps {dict(cache._wb_ts)}")
        return problems

    def cycle_problems(self, system) -> List[str]:
        """Invariants that hold at *every* cycle, mid-transaction:

        * at most one owned (M) copy per line (a new DataE is only sent
          after the previous owner's RecallAck, which downgraded it);
        * ``wts <= rts`` on every copy and stable directory entry;
        * ``pts`` is monotone non-decreasing per cache (tracked across
          probe invocations via an attribute on the cache);
        * a leased (S) copy never carries a wts ahead of its home
          directory's authoritative wts while the home entry is stable
          and unowned.
        """
        from .invariants import directory_banks
        problems: List[str] = []
        banks = directory_banks(system)
        owners: Dict[LineAddr, List[int]] = {}
        for cache in system.caches:
            last = getattr(cache, "_probe_last_pts", 0)
            if cache.pts < last:
                problems.append(
                    f"cache{cache.tile}: pts went backwards "
                    f"{last} -> {cache.pts}")
            cache._probe_last_pts = cache.pts
            for line, entry in cache._lines.items():
                if entry.wts > entry.rts:
                    problems.append(
                        f"{line!r}: cache {cache.tile} wts {entry.wts} > "
                        f"rts {entry.rts}")
                if entry.state is CacheState.M:
                    owners.setdefault(line, []).append(cache.tile)
                else:
                    home = banks[int(line) % len(banks)]
                    dentry = home.entry(line)
                    if (dentry is not None and dentry.is_stable()
                            and dentry.state is not DirState.M
                            and entry.wts > dentry.wts):
                        problems.append(
                            f"{line!r}: cache {cache.tile} leased wts "
                            f"{entry.wts} ahead of dir wts {dentry.wts}")
        for line, tiles in owners.items():
            if len(tiles) > 1:
                problems.append(f"{line!r}: multiple owners {tiles}")
        return problems


register_backend(TardisBackend())
