"""RCP reversible coherence backend (PAPERS.md: "A Case for Reversible
Coherence Protocol").

RCP is the invisible-speculation alternative to the paper's
WritersBlock: instead of making early loads *non*-speculative, it makes
the coherence side-effects of speculative loads *reversible*.  A load
that is not yet ordered (an older load is still outstanding) acquires
its line in a dedicated speculative-read state:

* **Speculative acquire** — an unordered load misses with ``GETS_SPEC``
  and installs the fill in ``CacheState.SPEC``.  The home directory
  records the requester in a ``spec`` set *separate* from the stable
  sharer list, so speculative readers are invisible to the protocol's
  conflict bookkeeping until they either commit or are reversed.
* **Reversal** — a conflicting write rolls the acquisition back: the
  directory sends ``UNDO`` to every speculative reader (and plain
  ``INV`` to stable sharers / the owner).  The cache drops its SPEC
  copy, fires the core's ``invalidation_hook`` — the exact squash path
  an invalidation drives, so bound-but-unordered loads on the line are
  squashed — and answers ``UNDO_ACK``.  The write is granted only after
  every ack arrives, which is what makes the scheme sound under TSO:
  once a store completes, no reversed copy survives anywhere, so a
  committed load can never have read from a line that was later
  reversed out from under it.
* **Confirm-on-commit** — the first *ordered* load that touches a SPEC
  copy promotes it to a stable S locally and sends a fire-and-forget
  ``CONFIRM``; the home moves the core from ``spec`` to the sharer
  list.  Confirms that lose a race (an ``UNDO``/``INV`` crossed them,
  the entry was evicted or re-allocated) are ignored — the reversal
  already reached the cache, whose ``UNDO`` handler accepts promoted
  copies.
* **Self-reversal** — a core's own store to a line it holds in SPEC is
  itself a conflicting write: ``request_write`` reverses the local
  speculative copy (drop + ``invalidation_hook``) before requesting
  ownership, so a write MSHR never coexists with a SPEC copy.

SPEC copies are never writable (``perform_store`` raises) and always
carry the home's authoritative data while the home entry is stable —
the "spec lines never dirty" invariant checked by ``cycle_problems``
alongside "no orphan spec copies" (every resident SPEC copy is
registered in its home's ``spec`` set, which is what guarantees a
future write's reversal reaches it).

Unlike tardis there *is* invalidation traffic (``has_invalidations``),
but there is no WritersBlock: the protocol's answer to load-load
reordering is reversal, so ``ooo-wb`` is rejected and the conformance
default is plain OOO commit with squash-based recovery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Set

from ..common.errors import ProtocolError
from ..common.event_queue import EventQueue
from ..common.params import CacheParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, CommitMode, DirState, LineAddr, MsgType, line_of
from ..mem.cache_array import CacheArray, PresenceLRU
from ..mem.line_data import LineData, VersionedValue
from ..mem.mshr import MSHREntry, MSHRFile
from ..network.mesh import MeshNetwork
from ..network.message import Message
from ..obs.events import EventBus, Kind
from . import probe
from .backend import CoherenceBackend, register_backend
from .private_cache import LoadRequest


@dataclass(slots=True)
class RcpLine:
    """A line resident in a private cache (M, S, or speculative SPEC)."""

    state: CacheState
    data: LineData


@dataclass(slots=True, eq=False)
class RcpDirEntry:
    """One directory/LLC entry with split stable/speculative reader sets."""

    line: LineAddr
    state: DirState = DirState.I
    owner: Optional[int] = None
    data: LineData = field(default_factory=LineData)
    #: Stable sharers (may be stale after silent evictions; never missing
    #: a resident S copy).
    sharers: Set[int] = field(default_factory=set)
    #: Speculative readers — invisible to the stable sharer list; a
    #: conflicting write reverses them with Undo instead of Inv.
    spec: Set[int] = field(default_factory=set)
    queue: Deque[Message] = field(default_factory=deque)
    #: Outstanding Ack/UndoAck/AckData count while BUSY_WRITE.
    acks_left: int = 0
    writer: Optional[int] = None  # requester awaiting the ack fan-in
    reader: Optional[int] = None  # requester awaiting a recall (read)
    reader_spec: bool = False  # that read was speculative
    fetching: bool = False  # memory fetch in flight

    def is_stable(self) -> bool:
        return self.state in (DirState.I, DirState.S, DirState.M)

    def __repr__(self) -> str:
        return (
            f"<RDir {self.line!r} {self.state.value} owner={self.owner} "
            f"sharers={sorted(self.sharers)} spec={sorted(self.spec)} "
            f"acks={self.acks_left} q={len(self.queue)}>"
        )


@dataclass(slots=True, eq=False)
class RcpEvictingEntry:
    """A directory entry parked while its copies are flushed for eviction."""

    line: LineAddr
    data: LineData
    acks_left: int = 0


class RcpCache:
    """Private cache controller speaking the RCP protocol.

    Duck-types :class:`repro.coherence.private_cache.PrivateCache`'s
    core-facing interface.  ``write_blocked`` is always False — RCP has
    no WritersBlock, so the SoS-bypass machinery never engages.
    """

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        if writers_block:
            raise ProtocolError("rcp backend has no WritersBlock support")
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = False
        self._lines: CacheArray[RcpLine] = CacheArray(params.l2_sets,
                                                      params.l2_ways)
        self._l1 = PresenceLRU(params.l1_sets, params.l1_ways)
        self.mshrs = MSHRFile(params.mshr_entries, params.mshr_reserved_for_sos)
        self.mshrs.observer = self._mshr_event
        # Core hooks, wired by the core model after construction (same
        # contract as PrivateCache; Undo fires invalidation_hook, which
        # is the squash path reversal is defined to drive).
        self.invalidation_hook: Callable[[LineAddr], bool] = lambda line: False
        self.lockdown_query: Callable[[LineAddr], bool] = lambda line: False
        self.eviction_hook: Callable[[LineAddr], None] = lambda line: None
        prefix = f"cache{tile}"
        self._stat_loads = stats.counter(f"{prefix}.loads")
        self._stat_hits = stats.counter(f"{prefix}.load_hits")
        self._stat_misses = stats.counter(f"{prefix}.load_misses")
        self._stat_writebacks = stats.counter("cache.writebacks")
        self._stat_invs = stats.counter("cache.invalidations_received")
        self._stat_spec_reads = stats.counter("rcp.spec_reads")
        self._stat_confirms = stats.counter("rcp.confirms")
        self._stat_reversals = stats.counter("rcp.reversals")
        self._num_tiles = network.topology.num_tiles
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        self._dispatch = {
            MsgType.DATA: self._on_data,
            MsgType.DATA_EXCL: self._on_data_excl,
            MsgType.INV: self._on_inv,
            MsgType.UNDO: self._on_undo,
            MsgType.RECALL: self._on_recall,
            MsgType.WB_ACK: self._on_wb_ack,
        }
        network.register(tile, "cache", self.handle_message)

    # ------------------------------------------------------------------ util
    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler."""
        return {"mshr": self.mshrs.occupancy}

    def _mshr_event(self, action: str, entry: MSHREntry) -> None:
        bus = self.bus
        if not bus.active:
            return
        if action == "alloc":
            bus.emit(Kind.MSHR_ALLOC, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind,
                     sos=entry.is_sos_bypass)
        else:
            bus.emit(Kind.MSHR_FREE, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind)

    def home_of(self, line: LineAddr) -> int:
        return line.value % self._num_tiles

    def _send(self, msg_type: MsgType, dst: int, port: str, line: LineAddr,
              **payload) -> None:
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        network = self.network
        network.send(network.acquire_message(
            msg_type, self.tile, dst, port, line, payload))

    def line_state(self, line: LineAddr) -> CacheState:
        entry = self._lines.lookup(line, touch=False)
        return entry.state if entry else CacheState.I

    def _cov_state(self, line: LineAddr) -> str:
        return self.line_state(line).name

    def line_entry(self, line: LineAddr) -> Optional[RcpLine]:
        return self._lines.lookup(line, touch=False)

    def write_blocked(self, line: LineAddr) -> bool:
        """RCP never parks writes in WritersBlock (no such state)."""
        return False

    def has_write_mshr(self, line: LineAddr) -> bool:
        mshr = self.mshrs.get(line)
        return bool(mshr and mshr.kind == "write")

    # ------------------------------------------------------------- load path
    def load(self, request: LoadRequest, *, sos_bypass: bool = False) -> str:
        """Start a load.  Returns "hit", "miss", or "retry".

        ``sos_bypass`` is accepted for interface compatibility; RCP
        reads are never blocked behind a write, so an SoS load is just a
        load (it may still use the reserved MSHR).
        """
        cov = self._cov
        if cov is None:
            return self._load(request, sos_bypass)
        line = line_of(request.byte_addr, self.params.line_bytes)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._load(request, sos_bypass)
        probe.note(self, "cache", line,
                   "load_sos" if sos_bypass else "load", before, mark)
        return result

    def _load(self, request: LoadRequest, sos_bypass: bool) -> str:
        self._stat_loads.add()
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is not None:
            latency = (self.params.l1_hit_cycles if line in self._l1
                       else self.params.l2_hit_cycles)
            self._l1.touch(line)
            self._stat_hits.add()
            # Value binds at completion, not start: the copy may be
            # reversed (or promoted) inside the hit latency.
            self.events.schedule(latency, lambda: self._finish_hit(request))
            return "hit"
        self._stat_misses.add()
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if mshr.kind == "writeback":
                return "retry"
            mshr.waiting_loads.append(request)
            return "miss"
        if not self.mshrs.can_allocate(sos=sos_bypass):
            return "retry"
        mshr = self.mshrs.allocate(line, "read", sos_bypass=sos_bypass)
        mshr.waiting_loads.append(request)
        if request.is_ordered():
            self._send(MsgType.GETS, self.home_of(line), "llc", line)
        else:
            # Speculative acquire: the home tracks us in its spec set,
            # reversible by a conflicting write.
            self._stat_spec_reads.add()
            self._send(MsgType.GETS_SPEC, self.home_of(line), "llc", line)
        return "miss"

    def _finish_hit(self, request: LoadRequest) -> None:
        cov = self._cov
        if cov is None:
            return self._finish_hit_impl(request)
        line = line_of(request.byte_addr, self.params.line_bytes)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        self._finish_hit_impl(request)
        probe.note(self, "cache", line, "load", before, mark)

    def _finish_hit_impl(self, request: LoadRequest) -> None:
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line, touch=False)
        if entry is None:
            # Reversed (or evicted) during the access: replay.
            request.on_must_retry(False)
            return
        if entry.state is CacheState.SPEC and request.is_ordered():
            self._promote(line, entry)
        value = entry.data.read(request.byte_addr % self.params.line_bytes)
        request.on_value(value, False)

    def _promote(self, line: LineAddr, entry: RcpLine) -> None:
        """Confirm-on-commit: an ordered load touched a SPEC copy."""
        entry.state = CacheState.S
        self._stat_confirms.add()
        self._send(MsgType.CONFIRM, self.home_of(line), "llc", line)

    # ------------------------------------------------------------ write path
    def request_write(self, line: LineAddr,
                      on_granted: Callable[[], None]) -> str:
        """Acquire write permission; "granted", "pending" or "retry"."""
        cov = self._cov
        if cov is None:
            return self._request_write(line, on_granted)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._request_write(line, on_granted)
        probe.note(self, "cache", line, "write", before, mark)
        return result

    def _request_write(self, line: LineAddr,
                       on_granted: Callable[[], None]) -> str:
        entry = self._lines.lookup(line)
        if entry is not None and entry.state is CacheState.M:
            on_granted()
            return "granted"
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if mshr.kind == "write":
                mshr.payload_grants.append(on_granted)
                return "pending"
            if mshr.kind == "read":
                mshr.deferred_writes.append(on_granted)
                return "pending"
            return "retry"  # writeback in progress; replay later
        if not self.mshrs.can_allocate():
            return "retry"
        if entry is not None and entry.state is CacheState.SPEC:
            # Self-reversal: our own store conflicts with our own
            # speculative read, so roll the acquisition back before
            # requesting ownership (younger loads bound from the SPEC
            # copy are squashed by the hook — the store orders first).
            self._drop_line(line)
            self._stat_reversals.add()
            self.invalidation_hook(line)
        # No Upgrade path: a stable S copy stays registered at the home,
        # which drops us from its sets without a self-Inv; the exclusive
        # fill always carries fresh authoritative data.
        mshr = self.mshrs.allocate(line, "write")
        mshr.payload_grants = [on_granted]
        self._send(MsgType.GETX, self.home_of(line), "llc", line)
        return "pending"

    def perform_store(self, byte_addr: int, version: int, value: int) -> None:
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: store to {line!r} without M permission"
            )
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "store", "M",
                       len(self._cov_sends))

    def perform_atomic(self, byte_addr: int, version: int,
                       value: int) -> VersionedValue:
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: atomic to {line!r} without M permission"
            )
        old = entry.data.read(byte_addr % self.params.line_bytes)
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "atomic", "M",
                       len(self._cov_sends))
        return old

    def send_deferred_ack(self, line: LineAddr) -> None:
        raise ProtocolError("rcp backend has no deferred acks "
                            "(no Nacks, no WritersBlock)")

    # ---------------------------------------------------------- msg handling
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"cache {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "cache", msg.line, msg.msg_type.name, before, mark)

    def _install(self, line: LineAddr, state: CacheState,
                 data: LineData) -> Optional[RcpLine]:
        existing = self._lines.lookup(line)
        if existing is not None:
            existing.state = state
            existing.data = data
            self._l1.touch(line)
            return existing
        victim = self._pick_victim(line)
        if victim == "full":
            return None  # every way busy: do not cache (rare)
        if victim is not None:
            victim_entry = self._lines.lookup(victim, touch=False)
            if (victim_entry.state is CacheState.M
                    and not self.mshrs.can_allocate()):
                return None  # no writeback MSHR: skip caching this fill
            self._evict(victim)
        entry = RcpLine(state=state, data=data)
        self._lines.insert(line, entry)
        self._l1.touch(line)
        return entry

    def _complete_read(self, mshr: MSHREntry, line: LineAddr,
                       entry: Optional[RcpLine], data: LineData) -> None:
        """Deliver waiting loads after a DATA fill, then chain deferred
        writes.  An ordered load delivered from a SPEC fill promotes it
        (the fill's speculation is confirmed by the commit)."""
        waiting = list(mshr.waiting_loads)
        deferred = list(mshr.deferred_writes)
        self.mshrs.free(mshr)
        for request in waiting:
            if entry is None:
                # Every way was busy so the fill was not cached: serve
                # the response data use-once.
                value = data.read(request.byte_addr % self.params.line_bytes)
                request.on_value(value, False)
                continue
            if entry.state is CacheState.SPEC and request.is_ordered():
                self._promote(line, entry)
            value = entry.data.read(request.byte_addr % self.params.line_bytes)
            request.on_value(value, False)
        for on_granted in deferred:
            self.request_write(line, on_granted)

    def _on_data(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "read":
            raise ProtocolError(f"cache {self.tile}: Data without read "
                                f"MSHR {msg!r}")
        data: LineData = msg.payload["data"]
        state = (CacheState.SPEC if msg.payload.get("spec")
                 else CacheState.S)
        entry = self._install(msg.line, state, data)
        self._complete_read(mshr, msg.line, entry, data)

    def _on_data_excl(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "write":
            raise ProtocolError(f"cache {self.tile}: DataE without write "
                                f"MSHR {msg!r}")
        entry = self._install(msg.line, CacheState.M, msg.payload["data"])
        if entry is None:
            # Unlike a read fill, ownership cannot be dropped on the
            # floor — the directory now names us owner.
            raise ProtocolError(
                f"cache {self.tile}: no way free to install owned line "
                f"{msg.line!r}")
        waiting = list(mshr.waiting_loads)
        grants = list(mshr.payload_grants)
        self.mshrs.free(mshr)
        for request in waiting:
            value = entry.data.read(request.byte_addr % self.params.line_bytes)
            request.on_value(value, False)
        for on_granted in grants:
            on_granted()

    def _on_inv(self, msg: Message) -> None:
        """Invalidate our stable copy (conflicting write, or the home is
        evicting its entry).  The ack always collects at the directory —
        the blocking home counts the fan-in itself."""
        line = msg.line
        self._stat_invs.add()
        entry = self._lines.lookup(line, touch=False)
        data: Optional[LineData] = None
        if entry is not None:
            if entry.state is CacheState.M:
                data = entry.data
            self._drop_line(line)
        self.invalidation_hook(line)
        if data is not None:
            self._send(MsgType.ACK_DATA, self.home_of(line), "llc", line,
                       data=data.copy())
        else:
            # Covers stale-sharer Invs (our copy left silently) and the
            # writeback-crossing case — the in-flight PutM carries the
            # data, FIFO-ahead of this Ack.
            self._send(MsgType.ACK, self.home_of(line), "llc", line)

    def _on_undo(self, msg: Message) -> None:
        """Reversal: a conflicting write rolls back our speculative
        acquisition.  The hook fires before the ack, so every load bound
        from the reversed copy is squashed before the write can be
        granted.  A promoted (S) copy is reversed the same way — its
        Confirm crossed this Undo and the home ignored it."""
        line = msg.line
        entry = self._lines.lookup(line, touch=False)
        if entry is not None:
            if entry.state is CacheState.M:
                raise ProtocolError(
                    f"cache {self.tile}: Undo hit owned copy {msg!r}")
            self._drop_line(line)
        self._stat_reversals.add()
        self.invalidation_hook(line)
        self._send(MsgType.UNDO_ACK, self.home_of(line), "llc", line)

    def _on_recall(self, msg: Message) -> None:
        """The directory recalls our owned copy for a waiting reader; we
        keep a stable shared copy (the home re-adds us as a sharer)."""
        line = msg.line
        entry = self._lines.lookup(line, touch=False)
        if entry is not None and entry.state is CacheState.M:
            entry.state = CacheState.S
            self._send(MsgType.RECALL_ACK, self.home_of(line), "llc", line,
                       data=entry.data.copy())
            return
        wb = self.mshrs.get(line)
        if wb is not None and wb.kind == "writeback":
            # Our eviction writeback crossed the recall; answer from the
            # writeback buffer (the WbAck is FIFO-behind this Recall).
            self._send(MsgType.RECALL_ACK, self.home_of(line), "llc", line,
                       data=wb.data.copy())
            return
        raise ProtocolError(f"cache {self.tile}: Recall but not owner {msg!r}")

    def _on_wb_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "writeback":
            raise ProtocolError(f"cache {self.tile}: WbAck w/o writeback "
                                f"{msg!r}")
        self.mshrs.free(mshr)

    # ------------------------------------------------------------- residency
    def _pick_victim(self, line: LineAddr):
        victim = self._lines.victim_for(line)
        if victim is None:
            return None
        victim_line, __ = victim
        if not self._busy(victim_line):
            return victim_line
        target_set = line.value % self.params.l2_sets
        for cand_line, __ in self._lines.items():
            if cand_line.value % self.params.l2_sets != target_set:
                continue
            if not self._busy(cand_line):
                return cand_line
        return "full"

    def _busy(self, line: LineAddr) -> bool:
        return self.mshrs.get(line) is not None

    def _evict(self, line: LineAddr) -> None:
        cov = self._cov
        if cov is None:
            self._evict_impl(line)
            return
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        self._evict_impl(line)
        probe.note(self, "cache", line, "evict", before, mark)

    def _evict_impl(self, line: LineAddr) -> None:
        entry = self._lines.lookup(line, touch=False)
        if entry is None:
            return
        if entry.state is CacheState.M:
            wb = self.mshrs.allocate(line, "writeback")
            wb.data = entry.data
            self._stat_writebacks.add()
            self._send(MsgType.PUTM, self.home_of(line), "llc", line,
                       data=entry.data.copy())
        # S and SPEC copies drop silently: the home keeps the sharer /
        # spec record, so a future write's Inv/Undo still reaches this
        # core and fires the squash hook for loads bound from the copy.
        self._drop_line(line)

    def _drop_line(self, line: LineAddr) -> None:
        self._lines.remove(line)
        self._l1.drop(line)


class RcpDirectory:
    """Directory / LLC bank for the RCP protocol.

    A blocking home: a conflicting write moves the entry to BUSY_WRITE
    and the directory itself collects the Inv/Undo fan-in (no Unblock,
    no requester-side ack counting); reads of an owned line recall the
    owner through BUSY_READ.  Internal structures (``_array``,
    ``_evicting``, ``_pending_allocs``) mirror :class:`DirectoryBank`
    so generic residue checks work on both.
    """

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        if writers_block:
            raise ProtocolError("rcp backend has no WritersBlock support")
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = False
        self._array: CacheArray[RcpDirEntry] = CacheArray(
            params.llc_sets_per_bank, params.llc_ways
        )
        self._memory: Dict[LineAddr, LineData] = {}
        self._evicting: Dict[LineAddr, RcpEvictingEntry] = {}
        self._pending_allocs: List[Message] = []
        self._retry_scheduled = False
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        self._stat_requests = stats.counter("dir.requests")
        self._stat_evictions = stats.counter("dir.llc_evictions")
        self._stat_recalls = stats.counter("rcp.recalls")
        self._dispatch = {
            MsgType.GETS: self._on_request,
            MsgType.GETS_SPEC: self._on_request,
            MsgType.GETX: self._on_request,
            MsgType.PUTM: self._on_putm,
            MsgType.ACK: self._on_ack,
            MsgType.ACK_DATA: self._on_ack,
            MsgType.UNDO_ACK: self._on_ack,
            MsgType.CONFIRM: self._on_confirm,
            MsgType.RECALL_ACK: self._on_recall_ack,
        }
        network.register(tile, "llc", self.handle_message)

    # ------------------------------------------------------------------ util
    def _send(self, msg_type: MsgType, dst: int, line: LineAddr,
              delay: Optional[int] = None, **payload) -> None:
        """Send after the bank's access latency (uniform delay keeps
        per-channel FIFO order — an Undo must never overtake the Data
        that installed the speculative copy it reverses)."""
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        if delay is None:
            delay = self.params.llc_hit_cycles
        msg = self.network.acquire_message(msg_type, self.tile, dst, "cache",
                                           line, payload)
        self.events.schedule(delay, lambda: self.network.send(msg))

    def _memory_data(self, line: LineAddr) -> LineData:
        if line not in self._memory:
            self._memory[line] = LineData()
        return self._memory[line]

    def _cov_state(self, line: LineAddr) -> str:
        if line in self._evicting:
            return "EVICTING"
        entry = self._array.lookup(line, touch=False)
        return entry.state.name if entry is not None else "I"

    # --------------------------------------------------------------- receive
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"directory {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "dir", msg.line, msg.msg_type.name, before, mark)

    # -------------------------------------------------------------- requests
    def _on_request(self, msg: Message) -> None:
        self._stat_requests.add()
        entry = self._array.lookup(msg.line)
        if entry is None:
            if msg.line in self._evicting:
                # Mid-eviction: copies are still being flushed; park.
                msg.parked = True
                self._pending_allocs.append(msg)
                return
            entry = self._try_allocate(msg.line)
            if entry is None:
                msg.parked = True
                self._pending_allocs.append(msg)
                return
        if not entry.is_stable() or entry.fetching:
            msg.parked = True
            entry.queue.append(msg)
            return
        self._process_request(entry, msg)

    def _process_request(self, entry: RcpDirEntry, msg: Message) -> None:
        if msg.msg_type is MsgType.GETX:
            self._process_getx(entry, msg)
        else:
            self._process_read(entry, msg)

    def _track_reader(self, entry: RcpDirEntry, requester: int,
                      spec: bool) -> None:
        """Register a served read in exactly one of the two sets (a core
        re-reading under the other mode migrates)."""
        if spec:
            entry.sharers.discard(requester)
            entry.spec.add(requester)
        else:
            entry.spec.discard(requester)
            entry.sharers.add(requester)

    def _process_read(self, entry: RcpDirEntry, msg: Message) -> None:
        """GETS or GETS_SPEC: serve the LLC copy, recalling the owner
        first when one exists.  Speculative reads are served identically
        but tracked in the spec set, reversible by a later write."""
        requester = msg.src
        spec = msg.msg_type is MsgType.GETS_SPEC
        if entry.state is DirState.M:
            if entry.owner == requester:
                raise ProtocolError(
                    f"read from current owner {requester} for {entry.line!r}")
            entry.state = DirState.BUSY_READ
            entry.reader = requester
            entry.reader_spec = spec
            self._stat_recalls.add()
            self._send(MsgType.RECALL, entry.owner, entry.line)
            return
        self._track_reader(entry, requester, spec)
        entry.state = DirState.S
        self._send(MsgType.DATA, requester, entry.line,
                   data=entry.data.copy(), spec=spec)

    def _process_getx(self, entry: RcpDirEntry, msg: Message) -> None:
        writer = msg.src
        if entry.state is DirState.M:
            if entry.owner == writer:
                raise ProtocolError(
                    f"GetX from current owner {writer} for {entry.line!r}")
            entry.state = DirState.BUSY_WRITE
            entry.writer = writer
            entry.acks_left = 1
            self._send(MsgType.INV, entry.owner, entry.line)
            return
        # The requester's own registration (if any) is dropped without a
        # self-Inv: its stable copy carries the authoritative data and
        # the exclusive fill will overwrite it; a SPEC copy was already
        # self-reversed at request_write.
        entry.sharers.discard(writer)
        entry.spec.discard(writer)
        inv_targets = sorted(entry.sharers)
        undo_targets = sorted(entry.spec)
        if not inv_targets and not undo_targets:
            self._grant_exclusive(entry, writer)
            return
        entry.state = DirState.BUSY_WRITE
        entry.writer = writer
        entry.acks_left = len(inv_targets) + len(undo_targets)
        entry.sharers.clear()
        entry.spec.clear()
        for tile in inv_targets:
            self._send(MsgType.INV, tile, entry.line)
        for tile in undo_targets:
            self._send(MsgType.UNDO, tile, entry.line)

    def _grant_exclusive(self, entry: RcpDirEntry, writer: int) -> None:
        """Hand ownership to *writer*.  Every other copy has been
        flushed (ack fan-in complete), so SWMR holds from here."""
        self._send(MsgType.DATA_EXCL, writer, entry.line,
                   data=entry.data.copy())
        entry.state = DirState.M
        entry.owner = writer
        entry.writer = None
        entry.sharers.clear()
        entry.spec.clear()

    # ------------------------------------------------------------- responses
    def _on_ack(self, msg: Message) -> None:
        """Ack / UndoAck / AckData fan-in for a write or an eviction."""
        line = msg.line
        data: Optional[LineData] = msg.payload.get("data")
        evicting = self._evicting.get(line)
        if evicting is not None:
            if data is not None:
                evicting.data.merge_from(data)
            evicting.acks_left -= 1
            if evicting.acks_left == 0:
                self._memory[line] = evicting.data
                del self._evicting[line]
                self._schedule_retry()
            return
        entry = self._array.lookup(line)
        if (entry is None or entry.state is not DirState.BUSY_WRITE
                or entry.acks_left <= 0):
            raise ProtocolError(f"directory {self.tile}: stray ack {msg!r}")
        if data is not None:
            entry.data.merge_from(data)
        entry.acks_left -= 1
        if entry.acks_left == 0:
            self._grant_exclusive(entry, entry.writer)
            self._drain_queue(entry)

    def _on_confirm(self, msg: Message) -> None:
        """Promote a speculative reader to a stable sharer.  A confirm
        that lost a race — the copy was reversed, the entry evicted or
        re-allocated before it arrived — is ignored: the cache-side Undo
        handler already accepted the reversal of the promoted copy."""
        entry = self._array.lookup(msg.line)
        if entry is None:
            return  # evicted (or evicting) since: stale
        if entry.state is DirState.M and entry.owner == msg.src:
            # Impossible by channel FIFO: the Confirm was sent before
            # any GetX that could have made the sender owner.
            raise ProtocolError(
                f"directory {self.tile}: Confirm from current owner {msg!r}")
        if msg.src in entry.spec:
            entry.spec.discard(msg.src)
            entry.sharers.add(msg.src)

    def _on_recall_ack(self, msg: Message) -> None:
        line = msg.line
        entry = self._array.lookup(line)
        if entry is None or entry.state is not DirState.BUSY_READ:
            raise ProtocolError(f"RecallAck without recalling entry {msg!r}")
        entry.data.merge_from(msg.payload["data"])
        prev_owner = entry.owner
        entry.owner = None
        entry.state = DirState.S
        if prev_owner is not None:
            # The recalled owner kept a stable shared copy.
            entry.sharers.add(prev_owner)
        reader = entry.reader
        spec = entry.reader_spec
        entry.reader = None
        entry.reader_spec = False
        self._track_reader(entry, reader, spec)
        self._send(MsgType.DATA, reader, line,
                   data=entry.data.copy(), spec=spec)
        self._drain_queue(entry)

    def _on_putm(self, msg: Message) -> None:
        line = msg.line
        payload = msg.payload
        evicting = self._evicting.get(line)
        if evicting is not None:
            # Writeback crossed our eviction Inv; the Ack (sent after
            # this PutM) still completes the eviction count.
            evicting.data.merge_from(payload["data"])
            self._send(MsgType.WB_ACK, msg.src, line)
            return
        entry = self._array.lookup(line)
        if entry is None:
            # Defensive: a stray writeback for a spilled line.
            self._memory_data(line).merge_from(payload["data"])
            self._send(MsgType.WB_ACK, msg.src, line)
            return
        if entry.owner == msg.src:
            entry.data.merge_from(payload["data"])
            if entry.is_stable():
                # Normal owner writeback.  Mid-recall / mid-Inv (BUSY_*)
                # the state advances when the crossing ack arrives.
                entry.owner = None
                entry.state = DirState.S
            self._send(MsgType.WB_ACK, msg.src, line)
            if entry.is_stable():
                self._drain_queue(entry)
        else:
            # Stale PutM from a core that is no longer owner.
            self._send(MsgType.WB_ACK, msg.src, line)

    # ----------------------------------------------------------- allocation
    def _try_allocate(self, line: LineAddr) -> Optional[RcpDirEntry]:
        victim = self._array.victim_for(line)
        if victim is not None:
            victim_line, victim_entry = victim
            if (not victim_entry.is_stable() or victim_entry.queue
                    or victim_entry.state is DirState.M
                    or victim_entry.sharers or victim_entry.spec):
                victim_entry = self._find_victim(line)
                if victim_entry is None:
                    return None
                victim_line = victim_entry.line
            if not self._evict(victim_line, victim_entry):
                return None
        entry = RcpDirEntry(line=line, data=self._memory_data(line).copy())
        entry.fetching = True
        self._array.insert(line, entry)
        self.events.schedule(self.params.memory_cycles,
                             lambda: self._fetch_done(entry))
        return entry

    def _find_victim(self, line: LineAddr) -> Optional[RcpDirEntry]:
        """Prefer a victim that spills silently (no copies) over one
        needing an Inv/Undo fan-out, over one whose owner must be
        flushed; LRU order within each preference."""
        target_set = line.value % self.params.llc_sets_per_bank
        with_copies = None
        owned = None
        for cand_line, cand in self._array.items():
            if cand_line.value % self.params.llc_sets_per_bank != target_set:
                continue
            if not cand.is_stable() or cand.queue:
                continue
            if cand.state is DirState.M:
                if owned is None:
                    owned = cand
                continue
            if cand.sharers or cand.spec:
                if with_copies is None:
                    with_copies = cand
                continue
            return cand
        return with_copies if with_copies is not None else owned

    def _evict(self, line: LineAddr, entry: RcpDirEntry) -> bool:
        cov = self._cov
        if cov is None:
            return self._evict_impl(line, entry)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        evicted = self._evict_impl(line, entry)
        if evicted:
            probe.note(self, "dir", line, "evict", before, mark)
        return evicted

    def _evict_impl(self, line: LineAddr, entry: RcpDirEntry) -> bool:
        if entry.state is DirState.M:
            if len(self._evicting) >= self.params.dir_eviction_buffer:
                return False
            self._stat_evictions.add()
            self._array.remove(line)
            self._evicting[line] = RcpEvictingEntry(
                line=line, data=entry.data, acks_left=1)
            # The owner's copy must die (unlike a read recall): once the
            # entry spills, the home forgets whom a future write would
            # have to flush.
            self._send(MsgType.INV, entry.owner, line)
            return True
        targets = sorted(entry.sharers | entry.spec)
        if targets:
            if len(self._evicting) >= self.params.dir_eviction_buffer:
                return False
            self._stat_evictions.add()
            self._array.remove(line)
            self._evicting[line] = RcpEvictingEntry(
                line=line, data=entry.data, acks_left=len(targets))
            for tile in targets:
                if tile in entry.spec:
                    self._send(MsgType.UNDO, tile, line)
                else:
                    self._send(MsgType.INV, tile, line)
            return True
        self._stat_evictions.add()
        self._array.remove(line)
        self._memory[line] = entry.data
        return True

    def _fetch_done(self, entry: RcpDirEntry) -> None:
        entry.fetching = False
        self._drain_queue(entry)
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        if not self._pending_allocs or self._retry_scheduled:
            return
        self._retry_scheduled = True
        self.events.schedule(1, self._retry_pending)

    def _retry_pending(self) -> None:
        self._retry_scheduled = False
        pending, self._pending_allocs = self._pending_allocs, []
        release = self.network.pool.release
        for msg in pending:
            msg.parked = False
            self._on_request(msg)
            if not msg.parked:
                release(msg)

    def _drain_queue(self, entry: RcpDirEntry) -> None:
        release = self.network.pool.release
        while entry.queue and entry.is_stable() and not entry.fetching:
            msg = entry.queue.popleft()
            msg.parked = False
            self._process_request(entry, msg)
            if not msg.parked:
                release(msg)
        self._schedule_retry()

    # --------------------------------------------------------------- inspect
    def entry(self, line: LineAddr) -> Optional[RcpDirEntry]:
        return self._array.lookup(line, touch=False)

    def evicting_entry(self, line: LineAddr) -> Optional[RcpEvictingEntry]:
        return self._evicting.get(line)

    def snapshot(self) -> str:
        busy = [repr(e) for __, e in self._array.items() if not e.is_stable()]
        return f"dir{self.tile}: busy={busy} evicting={list(self._evicting)}"

    def gauges(self) -> Dict[str, int]:
        """Same gauge schema as the baseline bank (wb is always 0)."""
        dirq = len(self._pending_allocs)
        for __, entry in self._array.items():
            dirq += len(entry.queue)
        return {"dirq": dirq, "wb": 0, "evb": len(self._evicting)}


class RcpBackend(CoherenceBackend):
    """Registry entry wiring RcpCache/RcpDirectory into the sim."""

    name = "rcp"
    message_types = (
        MsgType.GETS, MsgType.GETS_SPEC, MsgType.GETX, MsgType.PUTM,
        MsgType.DATA, MsgType.DATA_EXCL, MsgType.WB_ACK, MsgType.INV,
        MsgType.ACK, MsgType.ACK_DATA, MsgType.UNDO, MsgType.UNDO_ACK,
        MsgType.CONFIRM, MsgType.RECALL, MsgType.RECALL_ACK,
    )
    supports_writers_block = False
    has_invalidations = True
    has_speculative_state = True
    #: OOO_WB needs WritersBlock; RCP's answer to load-load reordering
    #: is reversal + squash under plain OOO.  OOO_UNSAFE stays available
    #: as the checker-validation ablation.
    supported_commit_modes = (CommitMode.IN_ORDER, CommitMode.OOO,
                              CommitMode.OOO_UNSAFE)

    def transition_alphabet(self) -> frozenset:
        from .alphabet import RCP_ALPHABET
        return RCP_ALPHABET

    def build_cache(self, tile, params, network, events, stats, *,
                    writers_block, bus=None):
        return RcpCache(tile, params, network, events, stats,
                        writers_block=writers_block, bus=bus)

    def build_directory(self, tile, params, network, events, stats, *,
                        writers_block, bus=None):
        return RcpDirectory(tile, params, network, events, stats,
                            writers_block=writers_block, bus=bus)

    # ------------------------------------------------------------ invariants
    def coherence_problems(self, system) -> List[str]:
        """Quiescent-state invariants for reversible coherence.

        * SWMR: at most one M copy; an owner excludes every other copy
          (stable or speculative) — all were flushed before the grant.
        * Registration soundness: every resident S copy is on its home's
          sharer list and every resident SPEC copy in its home's spec
          set ("no orphan spec copies": an unregistered SPEC copy would
          never be reversed, so a committed load could source from a
          line a completed write should have reversed).
        * Spec lines never dirty: S and SPEC copies carry the home's
          authoritative data.
        * No residual transients: stable entries, empty queues, zero
          outstanding acks, drained MSHRs and eviction buffers.
        """
        from .invariants import directory_banks
        problems: List[str] = []
        banks = directory_banks(system)
        lines = set()
        for cache in system.caches:
            for line, __ in cache._lines.items():
                lines.add(line)
        for bank in banks:
            for line, __ in bank._array.items():
                lines.add(line)

        for line in sorted(lines, key=int):
            home = banks[int(line) % len(banks)]
            entry = home.entry(line)
            holders = {
                tile: cache.line_state(line)
                for tile, cache in enumerate(system.caches)
                if cache.line_state(line) is not CacheState.I
            }
            owners = [t for t, s in holders.items() if s is CacheState.M]
            shared = [t for t, s in holders.items() if s is CacheState.S]
            spec = [t for t, s in holders.items() if s is CacheState.SPEC]
            if len(owners) > 1:
                problems.append(f"{line!r}: multiple owners {owners}")
            if owners and (shared or spec):
                problems.append(
                    f"{line!r}: owner {owners} coexists with copies "
                    f"S={shared} SPEC={spec}")
            if entry is None:
                if holders:
                    problems.append(
                        f"{line!r}: cached at {sorted(holders)} but no dir "
                        f"entry")
                continue
            if not entry.is_stable() or entry.queue or entry.acks_left:
                problems.append(f"{line!r}: residual transient {entry!r}")
                continue
            if entry.state is DirState.M:
                if not owners or entry.owner != owners[0]:
                    problems.append(
                        f"{line!r}: dir owner {entry.owner} but holders "
                        f"{holders}")
                continue
            if owners:
                problems.append(
                    f"{line!r}: owned by cache {owners[0]} but dir entry "
                    f"is {entry!r}")
                continue
            for tile in shared:
                if tile not in entry.sharers:
                    problems.append(
                        f"{line!r}: cache {tile} in S but missing from "
                        f"sharer list {sorted(entry.sharers)}")
            for tile in spec:
                if tile not in entry.spec:
                    problems.append(
                        f"{line!r}: orphan SPEC copy at cache {tile} not in "
                        f"spec set {sorted(entry.spec)}")
            for tile in shared + spec:
                cached = system.caches[tile].line_entry(line)
                if cached.data.values != entry.data.values:
                    problems.append(
                        f"{line!r}: copy at cache {tile} data "
                        f"{cached.data!r} differs from LLC {entry.data!r}")
        for bank in banks:
            if bank._evicting:
                problems.append(
                    f"dir{bank.tile}: eviction buffer not empty "
                    f"{list(bank._evicting)}")
            if bank._pending_allocs:
                problems.append(f"dir{bank.tile}: parked requests left over")
        for cache in system.caches:
            leftovers = cache.mshrs.entries()
            if leftovers:
                problems.append(f"cache{cache.tile}: MSHRs not drained "
                                f"{leftovers}")
        return problems

    def cycle_problems(self, system) -> List[str]:
        """Invariants that hold at *every* cycle, mid-transaction:

        * at most one M copy per line, and an owner never coexists with
          any other copy (the grant waits for the full ack fan-in);
        * while a home entry is stable, every resident SPEC copy of the
          line is registered in its spec set (reversals can reach it)
          and carries the home's authoritative data (spec never dirty).
          Transients are exempt: a reversal in flight leaves the copy
          resident after the sets were folded into the ack count.
        """
        from .invariants import directory_banks
        problems: List[str] = []
        banks = directory_banks(system)
        holders: Dict[LineAddr, List] = {}
        for cache in system.caches:
            for line, entry in cache._lines.items():
                holders.setdefault(line, []).append((cache.tile, entry))
        for line, copies in holders.items():
            owners = [t for t, e in copies if e.state is CacheState.M]
            if len(owners) > 1:
                problems.append(f"{line!r}: multiple owners {owners}")
            elif owners and len(copies) > 1:
                problems.append(
                    f"{line!r}: owner {owners[0]} coexists with copies at "
                    f"{sorted(t for t, __ in copies)}")
            home = banks[int(line) % len(banks)]
            dentry = home.entry(line)
            if dentry is None or not dentry.is_stable() or dentry.fetching \
                    or dentry.acks_left:
                continue
            for tile, entry in copies:
                if entry.state is not CacheState.SPEC:
                    continue
                if tile not in dentry.spec:
                    problems.append(
                        f"{line!r}: orphan SPEC copy at cache {tile} not in "
                        f"spec set {sorted(dentry.spec)}")
                if entry.data.values != dentry.data.values:
                    problems.append(
                        f"{line!r}: SPEC copy at cache {tile} data "
                        f"{entry.data!r} diverged from LLC {dentry.data!r}")
        return problems


register_backend(RcpBackend())
