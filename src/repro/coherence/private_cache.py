"""Private cache controller (L1+L2 as one coherence point).

The controller speaks the directory protocol on behalf of one core and
exposes a small callback-based interface to the core model:

* :meth:`load` — perform or start a read for one load instruction;
* :meth:`request_write` — acquire write permission for a line (store
  prefetch or SB head);
* :meth:`perform_store` / :meth:`perform_atomic` — write the local M copy;
* :meth:`send_deferred_ack` — called by the core when the last lockdown
  for a Nacked invalidation lifts (paper §3.2).

The core side plugs in two hooks:

* ``invalidation_hook(line) -> bool`` — called for every invalidation
  that must be answered; returns True when a lockdown exists (so the
  cache Nacks and the ack is deferred) and False otherwise (plain Ack).
  Squash-and-re-execute cores squash inside the hook and return False.
* ``lockdown_query(line) -> bool`` — is a lockdown currently held on
  *line*?  Used to avoid evicting locked lines (paper §3.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..common.errors import ProtocolError
from ..common.event_queue import EventQueue
from ..common.params import CacheParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, LineAddr, MsgType, line_of
from ..mem.cache_array import CacheArray, PresenceLRU
from ..mem.line_data import LineData, VersionedValue
from ..mem.mshr import MSHREntry, MSHRFile
from ..network.mesh import MeshNetwork
from ..network.message import Message
from ..obs.events import EventBus, Kind
from . import probe


@dataclass(slots=True)
class PrivateLine:
    """A line resident in the private hierarchy."""

    state: CacheState
    data: LineData


@dataclass(slots=True, eq=False)
class LoadRequest:
    """A load instruction's view of the cache interface.

    ``on_value(value, uncacheable)`` delivers the versioned value;
    ``on_must_retry(wait_for_sos)`` fires when the access must be
    replayed: with ``wait_for_sos=True`` the load received tear-off data
    it may not use (it was unordered) and re-issues once it becomes the
    SoS load; with ``False`` the line was lost mid-access and the load
    replays immediately.  ``is_ordered()`` asks the core whether all
    older loads are performed.
    """

    byte_addr: int
    is_ordered: Callable[[], bool]
    on_value: Callable[[VersionedValue, bool], None]
    on_must_retry: Callable[[bool], None]


class PrivateCache:
    """MESI private cache with lockdown/WritersBlock support."""

    def __init__(self, tile: int, params: CacheParams, network: MeshNetwork,
                 events: EventQueue, stats: StatsRegistry, *,
                 writers_block: bool,
                 bus: Optional[EventBus] = None) -> None:
        self.tile = tile
        self.params = params
        self.network = network
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.writers_block_enabled = writers_block
        self._lines: CacheArray[PrivateLine] = CacheArray(params.l2_sets, params.l2_ways)
        self._l1 = PresenceLRU(params.l1_sets, params.l1_ways)
        self.mshrs = MSHRFile(params.mshr_entries, params.mshr_reserved_for_sos)
        self.mshrs.observer = self._mshr_event
        # Transition-coverage gate (repro.obs.coverage): None when off.
        self._cov = None
        self._cov_sends: List[str] = []
        # Core hooks, wired by the core model after construction.
        self.invalidation_hook: Callable[[LineAddr], bool] = lambda line: False
        self.lockdown_query: Callable[[LineAddr], bool] = lambda line: False
        self.eviction_hook: Callable[[LineAddr], None] = lambda line: None
        prefix = f"cache{tile}"
        self._stat_loads = stats.counter(f"{prefix}.loads")
        self._stat_hits = stats.counter(f"{prefix}.load_hits")
        self._stat_misses = stats.counter(f"{prefix}.load_misses")
        self._stat_tearoff_used = stats.counter("cache.tearoffs_used")
        self._stat_tearoff_retry = stats.counter("cache.tearoffs_unusable")
        self._stat_nacks = stats.counter("cache.nacks_sent")
        self._stat_invs = stats.counter("cache.invalidations_received")
        self._stat_writebacks = stats.counter("cache.writebacks")
        self._num_tiles = network.topology.num_tiles
        # Message dispatch, built once (a per-delivery dict is hot-path
        # allocation churn).
        self._dispatch = {
            MsgType.DATA: self._on_data,
            MsgType.DATA_EXCL: self._on_data,
            MsgType.PERM: self._on_perm,
            MsgType.DATA_UNCACHEABLE: self._on_data_uncacheable,
            MsgType.ACK: self._on_ack,
            MsgType.ACK_DATA: self._on_ack_data,
            MsgType.INV: self._on_inv,
            MsgType.FWD_GETS: self._on_fwd_gets,
            MsgType.FWD_GETX: self._on_fwd_getx,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.BLOCKED_HINT: self._on_blocked_hint,
        }
        network.register(tile, "cache", self.handle_message)

    # ------------------------------------------------------------------ util
    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler."""
        return {"mshr": self.mshrs.occupancy}

    def _mshr_event(self, action: str, entry: MSHREntry) -> None:
        """MSHRFile observer: surface occupancy begin/end on the bus."""
        bus = self.bus
        if not bus.active:
            return
        if action == "alloc":
            bus.emit(Kind.MSHR_ALLOC, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind,
                     sos=entry.is_sos_bypass)
        else:
            bus.emit(Kind.MSHR_FREE, self.tile, uid=entry.uid,
                     line=int(entry.line), kind=entry.kind)

    def home_of(self, line: LineAddr) -> int:
        return line.value % self._num_tiles

    def _send(self, msg_type: MsgType, dst: int, port: str, line: LineAddr,
              **payload) -> None:
        if self._cov is not None:
            self._cov_sends.append(msg_type.name)
        network = self.network
        network.send(network.acquire_message(
            msg_type, self.tile, dst, port, line, payload))

    def line_state(self, line: LineAddr) -> CacheState:
        entry = self._lines.lookup(line, touch=False)
        return entry.state if entry else CacheState.I

    def _cov_state(self, line: LineAddr) -> str:
        return self.line_state(line).name

    def line_entry(self, line: LineAddr) -> Optional[PrivateLine]:
        return self._lines.lookup(line, touch=False)

    def write_blocked(self, line: LineAddr) -> bool:
        """Has the directory hinted that our write for *line* is blocked?"""
        mshr = self.mshrs.get(line)
        return bool(mshr and mshr.kind == "write" and mshr.blocked_hint)

    def has_write_mshr(self, line: LineAddr) -> bool:
        mshr = self.mshrs.get(line)
        return bool(mshr and mshr.kind == "write")

    # ------------------------------------------------------------- load path
    def load(self, request: LoadRequest, *, sos_bypass: bool = False) -> str:
        """Start a load access.  Returns "hit", "miss", or "retry".

        "retry" means no MSHR was available (or the access must be
        replayed for another structural reason); the core retries later.
        With ``sos_bypass`` the load launches an *uncacheable* read on a
        fresh (possibly reserved) MSHR, ignoring any same-line write MSHR
        it would otherwise piggyback on (paper §3.5.2).
        """
        cov = self._cov
        if cov is None:
            return self._load(request, sos_bypass)
        line = line_of(request.byte_addr, self.params.line_bytes)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._load(request, sos_bypass)
        probe.note(self, "cache", line,
                   "load_sos" if sos_bypass else "load", before, mark)
        return result

    def _load(self, request: LoadRequest, sos_bypass: bool) -> str:
        self._stat_loads.add()
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is not None and entry.state is not CacheState.I:
            latency = (self.params.l1_hit_cycles if line in self._l1
                       else self.params.l2_hit_cycles)
            self._l1.touch(line)
            self._stat_hits.add()
            # The value is bound when the access COMPLETES, not when it
            # starts: an invalidation landing inside the hit latency must
            # not let the load keep the stale value unprotected (it is
            # not "performed" yet, so no lockdown/squash would cover it).
            self.events.schedule(latency, lambda: self._finish_hit(request))
            return "hit"
        self._stat_misses.add()
        if sos_bypass:
            if not self.mshrs.can_allocate(sos=True):
                return "retry"
            mshr = self.mshrs.allocate(line, "read", sos_bypass=True)
            mshr.uncacheable = True
            mshr.waiting_loads.append(request)
            self._send(MsgType.GETS, self.home_of(line), "llc", line,
                       uncacheable=True)
            return "miss"
        mshr = self.mshrs.get(line)
        if mshr is not None:
            # Piggyback on the outstanding transaction for this line
            # (read, write, or writeback-in-progress).
            if mshr.kind == "writeback":
                # The line is leaving; wait for the writeback to finish,
                # then the core will replay and miss cleanly.
                return "retry"
            mshr.waiting_loads.append(request)
            return "miss"
        if not self.mshrs.can_allocate():
            return "retry"
        mshr = self.mshrs.allocate(line, "read")
        mshr.waiting_loads.append(request)
        self._send(MsgType.GETS, self.home_of(line), "llc", line)
        return "miss"

    def _finish_hit(self, request: LoadRequest) -> None:
        """Complete a hit: deliver the line's *current* value, or replay
        the access as a miss if the line was invalidated mid-access."""
        line = line_of(request.byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line, touch=False)
        if entry is not None and entry.state is not CacheState.I:
            value = entry.data.read(request.byte_addr % self.params.line_bytes)
            request.on_value(value, False)
            return
        # Lost the line during the access: tell the core to replay.
        request.on_must_retry(False)

    # ------------------------------------------------------------ write path
    def request_write(self, line: LineAddr, on_granted: Callable[[], None]) -> str:
        """Acquire write permission for *line*; returns "granted",
        "pending" or "retry" (MSHR full)."""
        cov = self._cov
        if cov is None:
            return self._request_write(line, on_granted)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        result = self._request_write(line, on_granted)
        probe.note(self, "cache", line, "write", before, mark)
        return result

    def _request_write(self, line: LineAddr,
                       on_granted: Callable[[], None]) -> str:
        entry = self._lines.lookup(line)
        if entry is not None and entry.state in (CacheState.M, CacheState.E):
            entry.state = CacheState.M  # silent E->M upgrade
            on_granted()
            return "granted"
        mshr = self.mshrs.get(line)
        if mshr is not None:
            if mshr.kind == "write":
                mshr.payload_grants.append(on_granted)
                return "pending"
            if mshr.kind == "read":
                # A read for the line is in flight; chain the write after
                # it to avoid requesting from ourselves at the directory.
                mshr.deferred_writes.append(on_granted)
                return "pending"
            return "retry"  # writeback in progress; replay later
        if not self.mshrs.can_allocate():
            return "retry"
        mshr = self.mshrs.allocate(line, "write")
        mshr.payload_grants = [on_granted]
        mshr.acks_received = 0
        mshr.acks_expected = None
        if entry is not None and entry.state is CacheState.S:
            mshr.was_upgrade = True
            self._send(MsgType.UPGRADE, self.home_of(line), "llc", line)
        else:
            mshr.was_upgrade = False
            self._send(MsgType.GETX, self.home_of(line), "llc", line)
        return "pending"

    def perform_store(self, byte_addr: int, version: int, value: int) -> None:
        """Write the local M-state copy (store becomes globally visible)."""
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: store to {line!r} without M permission"
            )
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "store", "M",
                       len(self._cov_sends))

    def perform_atomic(self, byte_addr: int, version: int,
                       value: int) -> VersionedValue:
        """Atomically read-then-write the local M copy (RMW)."""
        line = line_of(byte_addr, self.params.line_bytes)
        entry = self._lines.lookup(line)
        if entry is None or entry.state is not CacheState.M:
            raise ProtocolError(
                f"core {self.tile}: atomic to {line!r} without M permission"
            )
        old = entry.data.read(byte_addr % self.params.line_bytes)
        entry.data.write(byte_addr % self.params.line_bytes, version, value)
        self._l1.touch(line)
        if self._cov is not None:
            probe.note(self, "cache", line, "atomic", "M",
                       len(self._cov_sends))
        return old

    def send_deferred_ack(self, line: LineAddr) -> None:
        """The last lockdown for a Nacked invalidation lifted (paper §3.2)."""
        self._send(MsgType.DEFERRED_ACK, self.home_of(line), "llc", line)

    # ---------------------------------------------------------- msg handling
    def handle_message(self, msg: Message) -> None:
        handler = self._dispatch.get(msg.msg_type)
        if handler is None:
            raise ProtocolError(f"cache {self.tile}: unexpected {msg!r}")
        if self._cov is None:
            handler(msg)
            return
        before = self._cov_state(msg.line)
        mark = len(self._cov_sends)
        handler(msg)
        probe.note(self, "cache", msg.line, msg.msg_type.name, before, mark)

    # Data responses -------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None:
            raise ProtocolError(f"cache {self.tile}: data without MSHR {msg!r}")
        data: LineData = msg.payload["data"]
        if mshr.kind == "read":
            state = (CacheState.E if msg.msg_type is MsgType.DATA_EXCL
                     else CacheState.S)
            self._install(msg.line, state, data)
            self._send(MsgType.UNBLOCK, self.home_of(msg.line), "llc", msg.line)
            not_installed = self._lines.lookup(msg.line, touch=False) is None
            self._complete_read(mshr, msg.line, data)
            if state is CacheState.E and not_installed:
                # Every way was locked so the exclusive fill was not
                # installed — but the directory now believes we own the
                # line.  Relinquish ownership right away so forwarded
                # requests never find a phantom owner.
                wb = self.mshrs.allocate(msg.line, "writeback")
                wb.data = data
                self._stat_writebacks.add()
                self._send(MsgType.PUTM, self.home_of(msg.line), "llc",
                           msg.line, data=data.copy())
        elif mshr.kind == "write":
            mshr.has_data = True
            mshr.data = data
            if "ack_count" in msg.payload:
                mshr.acks_expected = msg.payload["ack_count"]
            self._maybe_complete_write(mshr, msg.line)
        else:
            raise ProtocolError(f"cache {self.tile}: data for {mshr!r}")

    def _on_perm(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "write":
            raise ProtocolError(f"cache {self.tile}: Perm without write MSHR {msg!r}")
        entry = self._lines.lookup(msg.line)
        if entry is None or entry.state is not CacheState.S:
            raise ProtocolError(
                f"cache {self.tile}: Perm but line not in S for {msg!r}"
            )
        mshr.has_data = True
        mshr.data = entry.data  # permission-only: data already local
        mshr.acks_expected = msg.payload["ack_count"]
        self._maybe_complete_write(mshr, msg.line)

    def _on_data_uncacheable(self, msg: Message) -> None:
        """Tear-off copy: usable once, by an ordered load only (§3.4)."""
        mshr = self._find_read_mshr(msg.line)
        if mshr is None:
            raise ProtocolError(f"cache {self.tile}: DataU without MSHR {msg!r}")
        if msg.payload.get("retry"):
            # The directory bounced the tear-off (we own the line and
            # the fresh copy is in flight to us): replay every load.
            for request in mshr.waiting_loads:
                self._stat_tearoff_retry.add()
                request.on_must_retry(True)
            self.mshrs.free(mshr)
            return
        data: LineData = msg.payload["data"]
        consumed = False
        for request in mshr.waiting_loads:
            if not consumed and request.is_ordered():
                value = data.read(request.byte_addr % self.params.line_bytes)
                self._stat_tearoff_used.add()
                request.on_value(value, True)
                consumed = True
            else:
                self._stat_tearoff_retry.add()
                request.on_must_retry(True)
        self.mshrs.free(mshr)

    def _find_read_mshr(self, line: LineAddr) -> Optional[MSHREntry]:
        primary = self.mshrs.get(line)
        if primary is not None and primary.kind == "read":
            return primary
        for entry in self.mshrs.entries():
            if entry.is_sos_bypass and entry.line == line:
                return entry
        return None

    def _complete_read(self, mshr: MSHREntry, line: LineAddr,
                       data: LineData) -> None:
        entry = self._lines.lookup(line)
        # If every way was locked down, _install skipped caching: serve
        # the waiting loads straight from the response data (use-once).
        source = entry.data if entry is not None else data
        deferred_writes = mshr.deferred_writes
        for request in mshr.waiting_loads:
            value = source.read(request.byte_addr % self.params.line_bytes)
            request.on_value(value, False)
        self.mshrs.free(mshr)
        for on_granted in deferred_writes:
            self.request_write(line, on_granted)

    def _maybe_complete_write(self, mshr: MSHREntry, line: LineAddr) -> None:
        if not mshr.has_data or mshr.acks_expected is None:
            return
        if mshr.acks_received < mshr.acks_expected:
            return
        self._install(line, CacheState.M, mshr.data)
        self._send(MsgType.UNBLOCK, self.home_of(line), "llc", line)
        waiting = list(mshr.waiting_loads)
        grants = list(mshr.payload_grants)
        self.mshrs.free(mshr)
        entry = self._lines.lookup(line)
        for request in waiting:
            value = entry.data.read(request.byte_addr % self.params.line_bytes)
            request.on_value(value, False)
        for on_granted in grants:
            on_granted()

    def _on_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "write":
            raise ProtocolError(f"cache {self.tile}: Ack without write MSHR {msg!r}")
        mshr.acks_received += 1
        self._maybe_complete_write(mshr, msg.line)

    def _on_ack_data(self, msg: Message) -> None:
        """Owner's combined invalidation-ack + data (3-hop write)."""
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "write":
            raise ProtocolError(f"cache {self.tile}: AckData w/o write MSHR {msg!r}")
        mshr.has_data = True
        mshr.data = msg.payload["data"]
        mshr.acks_expected = msg.payload.get("ack_count", 1)
        mshr.acks_received += 1
        self._maybe_complete_write(mshr, msg.line)

    # Invalidations and forwards -------------------------------------------
    def _on_inv(self, msg: Message) -> None:
        self._stat_invs.add()
        line = msg.line
        to_dir = bool(msg.payload.get("ack_to_dir"))
        entry = self._lines.lookup(line, touch=False)
        data: Optional[LineData] = None
        if entry is not None:
            if entry.state in (CacheState.M, CacheState.E):
                # Only eviction recalls invalidate an owner with Inv.
                if not to_dir:
                    raise ProtocolError(
                        f"cache {self.tile}: write Inv hit owner copy {msg!r}"
                    )
                data = entry.data
            self._drop_line(line)
        locked = self.invalidation_hook(line)
        if locked and self.writers_block_enabled:
            self._stat_nacks.add()
            if data is not None:
                self._send(MsgType.NACK_DATA, self.home_of(line), "llc", line,
                           data=data.copy())
            else:
                self._send(MsgType.NACK, self.home_of(line), "llc", line)
            return
        if to_dir:
            payload = {"data": data.copy()} if data is not None else {}
            self._send(MsgType.ACK if data is None else MsgType.ACK_DATA,
                       self.home_of(line), "llc", line, **payload)
        else:
            self._send(MsgType.ACK, msg.payload["ack_to"], "cache", line)

    def _on_fwd_gets(self, msg: Message) -> None:
        line = msg.line
        requester = msg.requester
        entry = self._lines.lookup(line, touch=False)
        if msg.payload.get("uncacheable"):
            # Use-once snapshot for an SoS bypass read; we keep M.
            data = self._owned_data(line, entry, msg)
            self._send(MsgType.DATA_UNCACHEABLE, requester, "cache", line,
                       data=data.copy())
            return
        data = self._owned_data(line, entry, msg)
        self._send(MsgType.DATA, requester, "cache", line,
                   data=data.copy(), ack_count=0)
        self._send(MsgType.COPYBACK, self.home_of(line), "llc", line,
                   data=data.copy())
        if entry is not None:
            entry.state = CacheState.S  # downgrade; we stay a sharer

    def _on_fwd_getx(self, msg: Message) -> None:
        line = msg.line
        requester = msg.requester
        entry = self._lines.lookup(line, touch=False)
        data = self._owned_data(line, entry, msg)
        if entry is not None:
            self._drop_line(line)
        locked = self.invalidation_hook(line)
        self._stat_invs.add()
        if locked and self.writers_block_enabled:
            # Nack+Data to the directory (parks the data at the shared
            # level) and Data straight to the writer (paper Fig. 3.B).
            self._stat_nacks.add()
            self._send(MsgType.NACK_DATA, self.home_of(line), "llc", line,
                       data=data.copy())
            self._send(MsgType.DATA, requester, "cache", line,
                       data=data.copy(), ack_count=1)
        else:
            self._send(MsgType.ACK_DATA, requester, "cache", line,
                       data=data.copy(), ack_count=1)

    def _owned_data(self, line: LineAddr, entry: Optional[PrivateLine],
                    msg: Message) -> LineData:
        if entry is not None and entry.state in (CacheState.M, CacheState.E):
            return entry.data
        wb = self.mshrs.get(line)
        if wb is not None and wb.kind == "writeback":
            return wb.data
        raise ProtocolError(
            f"cache {self.tile}: forwarded request but not owner: {msg!r}"
        )

    def _on_wb_ack(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is None or mshr.kind != "writeback":
            raise ProtocolError(f"cache {self.tile}: WbAck w/o writeback {msg!r}")
        self.mshrs.free(mshr)

    def _on_blocked_hint(self, msg: Message) -> None:
        mshr = self.mshrs.get(msg.line)
        if mshr is not None and mshr.kind == "write":
            mshr.blocked_hint = True

    # ------------------------------------------------------------- residency
    def _install(self, line: LineAddr, state: CacheState, data: LineData) -> None:
        existing = self._lines.lookup(line)
        if existing is not None:
            existing.state = state
            existing.data = data
            self._l1.touch(line)
            return
        victim = self._pick_victim(line)
        if victim == "full":
            # Every way holds a locked or in-flight line: fall back to
            # not caching (treat the data as use-once).  The caller reads
            # through the MSHR-completion path which already delivered
            # values, so dropping residency here is safe but rare.
            return
        if victim is not None:
            victim_entry = self._lines.lookup(victim, touch=False)
            needs_wb = victim_entry.state in (CacheState.M, CacheState.E)
            if needs_wb and not self.mshrs.can_allocate():
                return  # no writeback MSHR: skip caching this fill
            self._evict(victim)
        self._lines.insert(line, PrivateLine(state=state, data=data))
        self._l1.touch(line)

    def _pick_victim(self, line: LineAddr):
        victim = self._lines.victim_for(line)
        if victim is None:
            return None
        victim_line, victim_entry = victim
        if not self.lockdown_query(victim_line) and not self._busy(victim_line):
            return victim_line
        # LRU victim is locked down or busy (paper §3.8: never squash on
        # eviction; we keep locked lines resident instead).  Try the other
        # ways in LRU order.
        target_set = line.value % self.params.l2_sets
        for cand_line, __ in self._lines.items():
            if cand_line.value % self.params.l2_sets != target_set:
                continue
            if not self.lockdown_query(cand_line) and not self._busy(cand_line):
                return cand_line
        return "full"

    def _busy(self, line: LineAddr) -> bool:
        return self.mshrs.get(line) is not None

    def _evict(self, line: LineAddr) -> None:
        cov = self._cov
        if cov is None:
            return self._evict_impl(line)
        before = self._cov_state(line)
        mark = len(self._cov_sends)
        self._evict_impl(line)
        probe.note(self, "cache", line, "evict", before, mark)

    def _evict_impl(self, line: LineAddr) -> None:
        entry = self._lines.lookup(line, touch=False)
        if entry is None:
            return
        if entry.state in (CacheState.M, CacheState.E):
            wb = self.mshrs.allocate(line, "writeback")
            wb.data = entry.data
            self._stat_writebacks.add()
            self._send(MsgType.PUTM, self.home_of(line), "llc", line,
                       data=entry.data.copy())
        elif entry.state is CacheState.S and not self.params.silent_shared_evictions:
            # Non-silent eviction: the directory forgets us, so no future
            # invalidation will reach the LQ — squash-mode cores must
            # squash M-speculative loads on this line now (paper §3.8).
            self.eviction_hook(line)
            self._send(MsgType.PUTS, self.home_of(line), "llc", line)
        self._drop_line(line)

    def _drop_line(self, line: LineAddr) -> None:
        self._lines.remove(line)
        self._l1.drop(line)
