"""Pluggable coherence backends.

A :class:`CoherenceBackend` packages one protocol's state machines —
line-state transitions in the private caches, directory ownership and
eviction policy, and the message vocabulary the two exchange — behind a
narrow factory interface.  The simulator (``repro.sim``), the sleep-set
POR explorer (``repro.verification``), and the conformance checker
(``repro.conform``) all construct caches and directory banks through a
backend instead of naming protocol classes, so an alternative protocol
is a registry entry away from the full test matrix.

Two backends ship today:

``baseline``
    The paper's directory MESI protocol with the WritersBlock extension
    (:mod:`repro.coherence.directory` / ``private_cache``).  The refactor
    is a strict no-op for it: construction goes through thin factories
    and the 36 golden digests are byte-identical.

``tardis``
    Timestamp coherence after Yu & Devadas (PAPERS.md): leases instead
    of invalidations, logical write/read timestamps on every line, and
    directory-side timestamp bumping on ownership transfer.  See
    :mod:`repro.coherence.tardis` and docs/coherence.md.

Registering a third backend (the ROADMAP reserves a slot for RCP) takes
a subclass plus one :func:`register_backend` call; docs/coherence.md
walks through the contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..common.errors import ConfigError
from ..common.types import CommitMode, MsgType
from .directory import DirectoryBank
from .private_cache import PrivateCache


class CoherenceBackend:
    """One coherence protocol behind the simulator-facing interface.

    Subclasses override the two ``build_*`` factories (returning objects
    that duck-type :class:`PrivateCache` / :class:`DirectoryBank` — see
    docs/coherence.md for the exact method contract) and the two
    invariant hooks.  Capability flags let callers and the test matrix
    skip mechanisms a protocol does not have instead of failing on them.
    """

    #: Registry key and CLI spelling (``--backend <name>``).
    name: str = "?"
    #: Mesh message types this protocol may emit (trace filtering + docs).
    message_types: Tuple[MsgType, ...] = ()
    #: WritersBlock machinery (lockdowns, Nack/deferred-Ack, tear-off
    #: reads) is available.  Protocols without it reject
    #: ``writers_block=True`` and the OOO_WB commit mode.
    supports_writers_block: bool = True
    #: The protocol enforces ordering by sending invalidations.  When
    #: False, cores still receive ``invalidation_hook`` callbacks — the
    #: backend synthesizes them at the equivalent ordering points (e.g.
    #: tardis lease expiry) so squash-based TSO recovery keeps working.
    has_invalidations: bool = True
    #: Commit modes the backend can run soundly; ``None`` means all.
    supported_commit_modes: Optional[Tuple[CommitMode, ...]] = None

    # -- construction -------------------------------------------------
    def build_cache(self, tile, params, network, events, stats, *,
                    writers_block, bus=None):
        """Build the private cache for *tile* (PrivateCache contract)."""
        raise NotImplementedError

    def build_directory(self, tile, params, network, events, stats, *,
                        writers_block, bus=None):
        """Build the directory (LLC) bank for *tile*."""
        raise NotImplementedError

    def validate_params(self, params) -> None:
        """Reject system configurations this protocol cannot honour.

        Called by :class:`repro.sim.MulticoreSystem` at construction
        (not by ``SystemParams.validate`` — params must stay importable
        without the coherence layer).
        """
        if params.writers_block and not self.supports_writers_block:
            raise ConfigError(
                f"backend {self.name!r} does not implement WritersBlock; "
                "run with writers_block=False")
        if (self.supported_commit_modes is not None
                and params.commit_mode not in self.supported_commit_modes):
            supported = ", ".join(m.value for m in self.supported_commit_modes)
            raise ConfigError(
                f"backend {self.name!r} does not support commit mode "
                f"{params.commit_mode.value!r} (supported: {supported})")

    # -- invariants ---------------------------------------------------
    def coherence_problems(self, system) -> List[str]:
        """Structural invariant violations on a *quiescent* system."""
        raise NotImplementedError

    def cycle_problems(self, system) -> List[str]:
        """Invariant violations checkable at *any* cycle (may be mid-
        transaction); used by the per-cycle property-test probe."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<CoherenceBackend {self.name}>"


class BaselineBackend(CoherenceBackend):
    """The existing WritersBlock/MESI implementation, untouched."""

    name = "baseline"
    message_types = (
        MsgType.GETS, MsgType.GETX, MsgType.UPGRADE, MsgType.PUTS,
        MsgType.PUTM, MsgType.DATA, MsgType.DATA_EXCL,
        MsgType.DATA_UNCACHEABLE, MsgType.INV, MsgType.FWD_GETS,
        MsgType.FWD_GETX, MsgType.WB_ACK, MsgType.BLOCKED_HINT,
        MsgType.ACK, MsgType.NACK, MsgType.NACK_DATA, MsgType.ACK_DATA,
        MsgType.DEFERRED_ACK, MsgType.UNBLOCK, MsgType.COPYBACK,
        MsgType.PERM,
    )
    supports_writers_block = True
    has_invalidations = True

    def build_cache(self, tile, params, network, events, stats, *,
                    writers_block, bus=None):
        return PrivateCache(tile, params, network, events, stats,
                            writers_block=writers_block, bus=bus)

    def build_directory(self, tile, params, network, events, stats, *,
                        writers_block, bus=None):
        return DirectoryBank(tile, params, network, events, stats,
                             writers_block=writers_block, bus=bus)

    def coherence_problems(self, system) -> List[str]:
        from .invariants import baseline_coherence_problems
        return baseline_coherence_problems(system)

    def cycle_problems(self, system) -> List[str]:
        from .invariants import baseline_cycle_problems
        return baseline_cycle_problems(system)


_REGISTRY: Dict[str, CoherenceBackend] = {}


def register_backend(backend: CoherenceBackend) -> CoherenceBackend:
    """Add *backend* to the registry (idempotent per name)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> CoherenceBackend:
    """Look up a registered backend by name."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigError(f"unknown coherence backend {name!r}; "
                          f"registered: {backend_names()}")
    return backend


def backend_names() -> List[str]:
    """Registered backend names, sorted (CLI choices, test params)."""
    return sorted(_REGISTRY)


register_backend(BaselineBackend())
