"""Bounded model checking of the real protocol controllers."""

from .explorer import (
    BufferingNetwork,
    ExplorationResult,
    VerifCore,
    VerifSystem,
    explore,
)
from .properties import (
    combined_invariant,
    conform_invariant,
    no_residue,
    sos_never_blocked,
    swmr_invariant,
    writersblock_blocks_writes,
)

__all__ = [
    "BufferingNetwork",
    "ExplorationResult",
    "VerifCore",
    "VerifSystem",
    "explore",
    "combined_invariant",
    "conform_invariant",
    "no_residue",
    "sos_never_blocked",
    "swmr_invariant",
    "writersblock_blocks_writes",
]
