"""Bounded state-space exploration of the real coherence protocol.

The simulator's network delivers messages at deterministic times, so a
single run exercises one interleaving.  This explorer instead *buffers*
every network send and branches on which pending message to deliver
next (respecting the per-(src, dst) FIFO order that deterministic X-Y
routing guarantees), deep-copying the whole system at each branch.
Between deliveries, all locally scheduled work (latency callbacks,
controller follow-ups) runs to quiescence — so the unit of reordering
is exactly the unordered-network nondeterminism the paper's protocol
must tolerate.

At every fully quiescent state the caller's invariant checks run; at
the end of each execution path a *termination* check verifies nothing
is stuck (all injected operations completed).  State fingerprinting
prunes re-explored interleavings.

This is bounded model checking of the *actual implementation*, not an
abstract model: the explored objects are the production
:class:`PrivateCache` and :class:`DirectoryBank` instances.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..coherence.backend import get_backend
from ..coherence.private_cache import LoadRequest, PrivateCache
from ..common.errors import SimulationError
from ..common.event_queue import EventQueue
from ..common.params import CacheParams, NetworkParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, LineAddr
from ..network.mesh import MeshNetwork
from ..network.message import Message


class BufferingNetwork(MeshNetwork):
    """Collects sends into a pending pool instead of scheduling them."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pending: List[Message] = []

    def send(self, msg: Message) -> int:
        if (msg.dst, msg.dst_port) not in self._endpoints:
            raise SimulationError(f"no endpoint for {msg!r}")
        self.pending.append(msg)
        return self.events.now

    def deliverable(self) -> List[int]:
        """Indices of pending messages that may be delivered next.

        Per-(src, dst, port) FIFO: only the *oldest* pending message of
        each channel is deliverable (deterministic routing guarantees
        same-pair ordering); across channels, any order is possible.
        """
        seen: set = set()
        indices: List[int] = []
        for idx, msg in enumerate(self.pending):
            key = (msg.src, msg.dst, msg.dst_port)
            if key not in seen:
                seen.add(key)
                indices.append(idx)
        return indices

    def deliver(self, index: int) -> None:
        msg = self.pending.pop(index)
        self._endpoints[(msg.dst, msg.dst_port)](msg)

    @staticmethod
    def delivery_key(msg: Message) -> Tuple:
        """Transition identity for partial-order reduction.

        Delivering a message only mutates the receiving controller and
        appends fresh sends (whose channel carries the *sender's* tile
        as src), so the tuple (type, channel, line) names the transition
        stably across reorderings: the head of a (src, dst, port)
        channel is untouched by deliveries on other channels.
        """
        return (msg.msg_type.value, msg.src, msg.dst, msg.dst_port,
                int(msg.line))

    @staticmethod
    def independent(key_a: Tuple, key_b: Tuple) -> bool:
        """May two deliveries commute (conservatively)?

        Requires *both* different receiving endpoints (the mutated
        controller state is disjoint) and different cache lines (so no
        shared line/directory entry is involved).  Endpoint alone would
        already commute for state, but staying line-disjoint keeps the
        argument independent of any cross-line bookkeeping a controller
        might add later.
        """
        return (key_a[2], key_a[3]) != (key_b[2], key_b[3]) and \
            key_a[4] != key_b[4]


class VerifCore:
    """A scripted core-side agent (deepcopy-safe: no closures).

    Owns the lockdown set and the outcomes of its issued loads/writes.
    """

    def __init__(self, tile: int) -> None:
        self.tile = tile
        self.cache: Optional[PrivateCache] = None
        self.lockdowns: set = set()
        self.nacked: set = set()
        self.load_results: List[Tuple[int, Tuple[int, int], bool]] = []
        self.load_retries: int = 0
        #: Byte addresses of loads bounced with ``on_must_retry`` and
        #: not yet reissued (a tardis fill can arrive already expired).
        #: Scenarios drain this from ``on_quiescent`` via
        #: :meth:`reissue_retries`.
        self.retry_addrs: List[int] = []
        self.writes_granted: int = 0
        self._next_load = 0

    # --- cache hooks -------------------------------------------------------
    def invalidation_hook(self, line: LineAddr) -> bool:
        if line in self.lockdowns:
            self.nacked.add(line)
            return True
        return False

    def lockdown_query(self, line: LineAddr) -> bool:
        return line in self.lockdowns

    def eviction_hook(self, line: LineAddr) -> None:
        return None

    # --- LoadRequest callbacks (bound methods: deepcopy-safe) --------------
    def _on_value(self, versioned, uncacheable: bool) -> None:
        self.load_results.append((self._current_load, versioned, uncacheable))

    def _on_retry(self, wait_for_sos: bool = True) -> None:
        self.load_retries += 1
        self.retry_addrs.append(self._current_addr)

    def _is_ordered(self) -> bool:
        return True  # scripted loads act as the SoS load

    def _is_unordered(self) -> bool:
        return False  # scripted speculative loads never become ordered

    def issue_spec_load(self, byte_addr: int) -> None:
        """Issue a load that reports itself unordered — on rcp it misses
        with a speculative (reversible) acquire instead of a stable
        read.  Other backends treat it as a plain load."""
        self._current_load = self._next_load
        self._current_addr = byte_addr
        self._next_load += 1
        request = LoadRequest(byte_addr=byte_addr,
                              is_ordered=self._is_unordered,
                              on_value=self._on_value,
                              on_must_retry=self._on_retry)
        self.cache.load(request)

    def issue_load(self, byte_addr: int) -> None:
        self._current_load = self._next_load
        self._current_addr = byte_addr
        self._next_load += 1
        request = LoadRequest(byte_addr=byte_addr,
                              is_ordered=self._is_ordered,
                              on_value=self._on_value,
                              on_must_retry=self._on_retry)
        self.cache.load(request)

    def issue_sos_load(self, byte_addr: int) -> None:
        """Issue a load with the SoS bypass: launch a fresh uncacheable
        read instead of piggybacking on a blocked same-line write MSHR
        (paper §3.5.2 — what a real core does for its SoS load once the
        directory hints the write is blocked)."""
        self._current_load = self._next_load
        self._current_addr = byte_addr
        self._next_load += 1
        request = LoadRequest(byte_addr=byte_addr,
                              is_ordered=self._is_ordered,
                              on_value=self._on_value,
                              on_must_retry=self._on_retry)
        self.cache.load(request, sos_bypass=True)

    def reissue_retries(self) -> int:
        """Reissue every bounced load once; returns how many."""
        addrs, self.retry_addrs = self.retry_addrs, []
        for addr in addrs:
            self.issue_load(addr)
        return len(addrs)

    def _on_granted(self) -> None:
        self.writes_granted += 1

    def request_write(self, line: LineAddr) -> None:
        self.cache.request_write(line, self._on_granted)

    def release_lockdown(self, line: LineAddr) -> None:
        self.lockdowns.discard(line)
        if line in self.nacked:
            self.nacked.discard(line)
            self.cache.send_deferred_ack(line)


class VerifSystem:
    """Protocol-only system (no pipelines) built for exploration.

    ``backend`` selects the coherence protocol under exploration (see
    :mod:`repro.coherence.backend`); directories and caches come from
    the backend's factories, so the explored objects are always the
    production controllers.  A backend without WritersBlock support
    (tardis) silently forces ``writers_block=False`` — the flag only
    parameterizes the baseline protocol.
    """

    def __init__(self, num_tiles: int = 4, *, writers_block: bool = True,
                 cache_params: Optional[CacheParams] = None,
                 backend: str = "baseline") -> None:
        self.backend = get_backend(backend)
        if not self.backend.supports_writers_block:
            writers_block = False
        self.events = EventQueue()
        self.stats = StatsRegistry()
        params = cache_params or CacheParams()
        self.network = BufferingNetwork(
            num_tiles, NetworkParams(model_contention=False), self.events,
            self.stats)
        self.dirs = [self.backend.build_directory(
            t, params, self.network, self.events, self.stats,
            writers_block=writers_block) for t in range(num_tiles)]
        self.caches = [self.backend.build_cache(
            t, params, self.network, self.events, self.stats,
            writers_block=writers_block) for t in range(num_tiles)]
        self.cores = [VerifCore(t) for t in range(num_tiles)]
        #: Scenario scratch space: lives on the system so it forks with
        #: it at each exploration branch (use instead of closure state).
        self.scratch: Dict[str, object] = {}
        for core, cache in zip(self.cores, self.caches):
            core.cache = cache
            cache.invalidation_hook = core.invalidation_hook
            cache.lockdown_query = core.lockdown_query
            cache.eviction_hook = core.eviction_hook

    def settle(self, limit: int = 100_000) -> None:
        """Run all locally scheduled events (not network deliveries)."""
        steps = 0
        while not self.events.empty:
            self.events.run_due()
            if self.events.empty:
                break
            self.events.advance_to_next_event()
            steps += 1
            if steps > limit:
                raise SimulationError("settle() did not converge")

    def fingerprint(self) -> Tuple:
        """Hashable summary of protocol-visible state.

        Backend-tolerant: baseline-only fields (sharer lists, deferred
        counts) and tardis-only fields (wts/rts leases, per-cache pts,
        the stale-lease ledger, spilled timestamps) are read with
        ``getattr`` defaults, so the same dedup key works for every
        registered protocol without over-merging states that differ
        only in timestamp bookkeeping.
        """
        pend = tuple(sorted(
            (m.msg_type.value, m.src, m.dst, m.dst_port, int(m.line),
             tuple(sorted((k, str(v)) for k, v in m.payload.items()
                          if k != "data")))
            for m in self.network.pending))
        caches = tuple(
            (tuple(sorted((int(line), entry.state.value,
                           getattr(entry, "wts", 0),
                           getattr(entry, "rts", 0))
                          for line, entry in cache._lines.items())),
             getattr(cache, "pts", 0),
             tuple(sorted((int(line), ts) for line, ts in
                          getattr(cache, "_stale_leases", {}).items())),
             tuple(sorted((int(line), n) for line, n in
                          getattr(cache, "_renew_fails", {}).items())))
            for cache in self.caches)
        mshrs = tuple(
            tuple(sorted((int(e.line), e.kind, e.acks_received,
                          str(e.acks_expected), e.has_data)
                         for e in cache.mshrs.entries()))
            for cache in self.caches)
        dirs = tuple(
            (tuple(sorted((int(line), entry.state.value, str(entry.owner),
                           tuple(sorted(getattr(entry, "sharers", ()))),
                           tuple(sorted(getattr(entry, "spec", ()))),
                           getattr(entry, "acks_left", 0),
                           len(entry.queue),
                           getattr(entry, "deferred_expected", 0),
                           getattr(entry, "wts", 0),
                           getattr(entry, "rts", 0),
                           str(getattr(entry, "reader", None)),
                           str(getattr(entry, "writer", None)),
                           getattr(entry, "fetching", False))
                          for line, entry in bank._array.items())),
             tuple(sorted(int(line) for line in bank._evicting)),
             tuple(sorted((int(line), ts) for line, ts in
                          getattr(bank, "_ts_memory", {}).items())))
            for bank in self.dirs)
        cores = tuple(
            (tuple(sorted(int(l) for l in core.lockdowns)),
             tuple(sorted(int(l) for l in core.nacked)),
             len(core.load_results), tuple(core.retry_addrs),
             core.writes_granted)
            for core in self.cores)
        return (pend, caches, mshrs, dirs, cores)


@dataclass
class ExplorationResult:
    states_explored: int = 0
    paths_completed: int = 0
    deduplicated: int = 0
    sleep_pruned: int = 0
    max_pending: int = 0
    violations: List[str] = field(default_factory=list)
    # Search telemetry (docs/verification.md): how the DFS spent its
    # budget, not just what it concluded.
    transitions: int = 0  # deliveries executed (forked children)
    frontier_peak: int = 0  # deepest the DFS stack ever grew
    memoized: int = 0  # distinct fingerprints in the memo table
    depth_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of popped states answered by the memo table."""
        visits = self.states_explored + self.deduplicated
        return self.deduplicated / visits if visits else 0.0

    @property
    def sleep_prune_ratio(self) -> float:
        """Fraction of enabled deliveries the sleep sets never forked."""
        enabled = self.transitions + self.sleep_pruned
        return self.sleep_pruned / enabled if enabled else 0.0


def explore(setup: Callable[[VerifSystem], None],
            invariant: Callable[[VerifSystem], Optional[str]],
            final_check: Callable[[VerifSystem], Optional[str]], *,
            num_tiles: int = 4, writers_block: bool = True,
            max_states: int = 20_000, por: bool = True,
            backend: str = "baseline",
            cache_params: Optional[CacheParams] = None,
            on_quiescent: Optional[Callable[[VerifSystem], None]] = None,
            coverage=None,
            progress: Optional[Callable[[ExplorationResult], None]] = None,
            ) -> ExplorationResult:
    """Explore every delivery order of the scenario built by *setup*.

    ``invariant(system)`` runs at every explored state and returns an
    error string (or None); ``final_check(system)`` runs on each fully
    quiescent path end.  ``on_quiescent`` lets scenarios inject
    follow-up operations when the network drains (e.g. release a
    lockdown only after the invalidation arrived).

    With ``por=True`` (the default) the search carries *sleep sets*
    [Godefroid]: after exploring delivery ``t`` from a state, the
    siblings explored later inherit ``t`` in their sleep set as long as
    they are independent of it (different endpoint *and* different
    line, :meth:`BufferingNetwork.independent`), so the commuted
    ``t``-then-sibling order is never re-executed.  Both orders of an
    independent pair reach the same state, and the pruned path's
    intermediate states are exactly the states the explored path
    visits, so the reachable *state set* — hence every invariant check
    and every reachable deadlock — is preserved; only redundant
    transitions are dropped.  State memoization keeps the smallest
    sleep set seen per fingerprint: a revisit with a superset sleep set
    is pruned outright, a revisit that would explore *more* (smaller
    sleep) re-expands and records the intersection.

    ``coverage`` takes a :class:`repro.obs.coverage.CoverageObserver`:
    it attaches to the root system's controllers before ``setup`` and
    survives every ``deepcopy`` fork as a shared singleton, so one map
    accumulates the transitions of all explored interleavings.
    ``progress(result)`` fires every 2048 explored states (live
    telemetry for long exhaustive runs).
    """
    root = VerifSystem(num_tiles, writers_block=writers_block,
                       backend=backend, cache_params=cache_params)
    if coverage is not None:
        coverage.attach(*root.caches, *root.dirs)
    setup(root)
    root.settle()
    result = ExplorationResult()
    seen: Dict[Tuple, frozenset] = {}
    stack: List[Tuple[VerifSystem, frozenset, int]] = [(root, frozenset(), 0)]
    result.frontier_peak = 1
    while stack and result.states_explored < max_states:
        system, sleep, depth = stack.pop()
        fp = system.fingerprint()
        recorded = seen.get(fp)
        if recorded is not None and recorded <= sleep:
            result.deduplicated += 1
            continue
        seen[fp] = sleep if recorded is None else (recorded & sleep)
        result.states_explored += 1
        result.depth_histogram[depth] = \
            result.depth_histogram.get(depth, 0) + 1
        if progress is not None and result.states_explored % 2048 == 0:
            result.memoized = len(seen)
            progress(result)
        result.max_pending = max(result.max_pending,
                                 len(system.network.pending))
        problem = invariant(system)
        if problem:
            result.violations.append(problem)
            continue
        choices = system.network.deliverable()
        if not choices:
            if on_quiescent is not None:
                before = system.fingerprint()
                on_quiescent(system)
                system.settle()
                if system.network.pending or system.fingerprint() != before:
                    stack.append((system, frozenset(), depth))
                    continue
            problem = final_check(system)
            if problem:
                result.violations.append(problem)
            result.paths_completed += 1
            continue
        keys = [BufferingNetwork.delivery_key(system.network.pending[i])
                for i in choices]
        if por:
            awake = [(i, k) for i, k in zip(choices, keys)
                     if k not in sleep]
            result.sleep_pruned += len(choices) - len(awake)
        else:
            awake = list(zip(choices, keys))
        if not awake:
            # Every enabled delivery commutes into an already-explored
            # sibling order; this state's continuations are covered.
            continue
        explored_here: List[Tuple] = []
        for index, key in awake:
            child = copy.deepcopy(system)
            child.network.deliver(index)
            child.settle()
            result.transitions += 1
            if por:
                child_sleep = frozenset(
                    other for other in sleep.union(explored_here)
                    if BufferingNetwork.independent(other, key))
            else:
                child_sleep = frozenset()
            stack.append((child, child_sleep, depth + 1))
            explored_here.append(key)
        if len(stack) > result.frontier_peak:
            result.frontier_peak = len(stack)
    result.memoized = len(seen)
    return result
