"""Invariants and canned scenarios for protocol exploration."""

from __future__ import annotations

from typing import Optional

from ..common.types import CacheState, DirState, LineAddr
from .explorer import VerifSystem


def swmr_invariant(system: VerifSystem) -> Optional[str]:
    """Single-writer / multiple-reader over every line, every state."""
    lines = set()
    for cache in system.caches:
        for line, __ in cache._lines.items():
            lines.add(line)
    for line in lines:
        states = [cache.line_state(line) for cache in system.caches]
        exclusive = [i for i, s in enumerate(states)
                     if s in (CacheState.M, CacheState.E)]
        others = [i for i, s in enumerate(states)
                  if s is not CacheState.I]
        if len(exclusive) > 1:
            return f"SWMR violated on {line!r}: owners {exclusive}"
        if exclusive and len(others) > 1:
            return (f"SWMR violated on {line!r}: owner {exclusive[0]} "
                    f"with other copies {others}")
    return None


def writersblock_blocks_writes(system: VerifSystem) -> Optional[str]:
    """While a dir entry is in WRITERS_BLOCK, no cache other than the
    pending writer may hold write permission.

    The pending writer itself is exempt: once the deferred ack reaches
    it, it installs M and only *then* unblocks the directory — so there
    is a legal window where the writer owns the line while the entry is
    still formally in WRITERS_BLOCK.  What must never happen is a
    *different* cache gaining write permission past the block, or the
    writer gaining it while deferred acks are still outstanding.
    """
    for bank in system.dirs:
        for line, entry in bank._array.items():
            if entry.state is not DirState.WRITERS_BLOCK:
                continue
            for cache in system.caches:
                state = cache.line_state(line)
                if state not in (CacheState.M, CacheState.E):
                    continue
                if cache.tile != entry.writer:
                    return (f"{line!r} in WritersBlock but non-writer "
                            f"cache {cache.tile} holds {state}")
                if entry.deferred_expected:
                    return (f"{line!r}: writer {cache.tile} holds {state} "
                            f"with {entry.deferred_expected} deferred "
                            f"acks outstanding")
    return None


def sos_never_blocked(system: VerifSystem) -> Optional[str]:
    """The paper's deadlock-avoidance rule (§3.5.2): an SoS load is
    never stuck behind a WritersBlock'd write.

    The directory may block *writes* indefinitely (WritersBlock), and a
    core only learns via the blocked hint — so the protocol's guarantee
    is one of *capability*: whenever a write sits blocked with an
    ordered (SoS) load parked on it, the cache must be able to tear
    that load off onto a fresh uncacheable read **right now**.
    Concretely, on every reachable state:

    * for every blocked-hinted write MSHR with an ordered waiting
      load, either an SoS-bypass MSHR for the line is already in
      flight or the reserved-MSHR quota has a free slot
      (``can_allocate(sos=True)`` — the paper's "at least one MSHR
      always reserved for SoS loads");
    * every SoS-bypass MSHR is an uncacheable read and is itself never
      blocked-hinted (the directory services uncacheable reads even
      while the line sits in WRITERS_BLOCK).
    """
    for cache in system.caches:
        for entry in cache.mshrs.entries():
            if entry.kind == "write" and entry.blocked_hint and any(
                    request.is_ordered()
                    for request in entry.waiting_loads):
                bypass_inflight = any(
                    other.is_sos_bypass and other.line == entry.line
                    for other in cache.mshrs.entries())
                if not bypass_inflight and \
                        not cache.mshrs.can_allocate(sos=True):
                    return (f"SoS load blocked: ordered load waits on "
                            f"blocked write MSHR {entry!r} of cache "
                            f"{cache.tile} and no SoS MSHR can launch")
            if entry.is_sos_bypass:
                if entry.kind != "read" or not entry.uncacheable:
                    return (f"SoS bypass MSHR not an uncacheable read: "
                            f"{entry!r} on cache {cache.tile}")
                if entry.blocked_hint:
                    return (f"SoS bypass MSHR blocked-hinted: {entry!r} "
                            f"on cache {cache.tile}")
    return None


def combined_invariant(system: VerifSystem) -> Optional[str]:
    return swmr_invariant(system) or writersblock_blocks_writes(system)


def conform_invariant(system: VerifSystem) -> Optional[str]:
    """Everything the conformance explorer asserts on every state."""
    return combined_invariant(system) or sos_never_blocked(system)


def backend_cycle_invariant(system: VerifSystem) -> Optional[str]:
    """The system's backend-specific every-cycle invariants (first
    violation, or None) — timestamp SWMR / monotonicity for tardis,
    exclusive-owner SWMR for baseline."""
    problems = system.backend.cycle_problems(system)
    return problems[0] if problems else None


def backend_quiescent_invariant(system: VerifSystem) -> Optional[str]:
    """The backend's full quiescent-state invariants (path-end only:
    they assume no in-flight messages)."""
    problems = system.backend.coherence_problems(system)
    return problems[0] if problems else None


def no_residue(system: VerifSystem) -> Optional[str]:
    """Path-end check: nothing in flight, nothing transient, no MSHRs."""
    if system.network.pending:
        return f"messages left in flight: {system.network.pending}"
    for bank in system.dirs:
        for line, entry in bank._array.items():
            if not entry.is_stable() or entry.queue:
                return f"dir residue on {line!r}: {entry!r}"
        if bank._evicting:
            return f"eviction buffer residue: {list(bank._evicting)}"
    for cache in system.caches:
        if cache.mshrs.entries():
            return (f"cache {cache.tile} MSHR residue: "
                    f"{cache.mshrs.entries()}")
    return None
