"""Axiomatic TSO checking — thin wrapper over the relational engine.

The monolithic checker this module used to hold was split into
:mod:`repro.consistency.relations` (derive po/rf/co/fr once) and
:mod:`repro.consistency.models` (memory models as declarative specs,
one generic engine).  ``check_tso`` remains the stable entry point the
simulator and tests call; it is exactly the generic engine run with the
:data:`~repro.consistency.models.TSO` spec and raises the same
:class:`~repro.common.errors.TSOViolationError` as before.
"""

from __future__ import annotations

from .models import TSO, check_execution
from .execution import ExecutionLog

__all__ = ["check_tso"]


def check_tso(log: ExecutionLog) -> None:
    """Raise :class:`TSOViolationError` if the execution violates TSO."""
    check_execution(log, TSO)
