"""Execution recording for consistency checking.

Every store (and atomic) is assigned a globally unique, monotonically
increasing *version* id when its value is produced.  When a store
performs (writes an M-state cache line), its version is appended to the
per-address **coherence order** — ownership of the line is exclusive, so
append order at perform time *is* the coherence order.  Loads record the
version they observed.  The axiomatic TSO checker consumes this log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class MemEvent:
    """One committed memory access, as observed by the memory system."""

    kind: str  # "ld" | "st" | "at" (atomic read-modify-write)
    core: int
    seq: int  # per-core program-order sequence number
    addr: int  # byte address
    version_read: Optional[int] = None  # ld / at
    version_written: Optional[int] = None  # st / at
    cycle: int = 0
    forwarded: bool = False  # value came from the local SQ/SB
    uncacheable: bool = False  # value came from a tear-off copy


@dataclass
class StoreInfo:
    version: int
    core: int
    seq: int
    addr: int
    value: int


class ExecutionLog:
    """Collects memory events and per-address coherence orders."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[MemEvent] = []
        self.stores: Dict[int, StoreInfo] = {}
        self.coherence_order: Dict[int, List[int]] = {}
        self._next_version = 1

    # -------------------------------------------------------------- versions
    def new_version(self, core: int, seq: int, addr: int, value: int) -> int:
        """Mint a version id for a store whose value just became known."""
        version = self._next_version
        self._next_version += 1
        self.stores[version] = StoreInfo(version, core, seq, addr, value)
        return version

    def store_performed(self, version: int) -> None:
        """The store became globally visible: append to coherence order."""
        info = self.stores[version]
        self.coherence_order.setdefault(info.addr, []).append(version)

    # --------------------------------------------------------------- events
    def record_load(self, core: int, seq: int, addr: int, version: int,
                    cycle: int, *, forwarded: bool = False,
                    uncacheable: bool = False) -> None:
        if self.enabled:
            self.events.append(MemEvent("ld", core, seq, addr,
                                        version_read=version, cycle=cycle,
                                        forwarded=forwarded,
                                        uncacheable=uncacheable))

    def record_store(self, core: int, seq: int, addr: int, version: int,
                     cycle: int) -> None:
        if self.enabled:
            self.events.append(MemEvent("st", core, seq, addr,
                                        version_written=version, cycle=cycle))

    def record_atomic(self, core: int, seq: int, addr: int,
                      version_read: int, version_written: int,
                      cycle: int) -> None:
        if self.enabled:
            self.events.append(MemEvent("at", core, seq, addr,
                                        version_read=version_read,
                                        version_written=version_written,
                                        cycle=cycle))

    # --------------------------------------------------------------- access
    def events_by_core(self) -> Dict[int, List[MemEvent]]:
        by_core: Dict[int, List[MemEvent]] = {}
        for event in self.events:
            by_core.setdefault(event.core, []).append(event)
        for events in by_core.values():
            events.sort(key=lambda e: e.seq)
        return by_core

    def value_of(self, version: int) -> int:
        """Value written by *version* (0 = initial contents)."""
        if version == 0:
            return 0
        return self.stores[version].value
