"""Relational view of an :class:`~repro.consistency.execution.ExecutionLog`.

The axiomatic engine (:mod:`repro.consistency.models`) checks memory
models as acyclicity axioms over a handful of standard relations.  This
module derives them all from the log **once**, so every model is pure
configuration on top:

``po``
    Program order: per-core event index lists, sorted by the per-core
    ``seq`` number (commit *cycle* is irrelevant — two events committing
    on the same cycle are still ordered by ``seq``).
``rf``
    Reads-from: one edge per load/atomic from the event that wrote the
    version it observed.  Reads of version 0 (the initial contents)
    have no writer and contribute no rf edge.  Each edge is tagged
    internal (``rfi``, same core — store forwarding) or external
    (``rfe``); TSO-like models drop ``rfi`` from the global order.
``co``
    Coherence order: the adjacent (immediate-successor) edges of each
    address's version list.  The simulator appends versions at perform
    time while holding the line in M state, so append order *is* co.
``fr``
    From-reads: every read points at the co-successor of the version it
    read; a from-init read (version 0) points at the address's first
    writer.

The graph helpers at the bottom (:func:`find_cycle`) return a **minimal
witness deterministically**: the shortest cycle in the graph, with ties
broken by the smallest node sequence, independent of dict/set insertion
order.  Violation messages therefore never flap across runs.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .execution import ExecutionLog, MemEvent

Edge = Tuple[int, int]


@dataclass(frozen=True)
class RfEdge:
    """One reads-from edge (event indices); internal = same core."""

    writer: int
    reader: int
    internal: bool


@dataclass
class Relations:
    """All base relations of one execution, over event indices."""

    events: List[MemEvent]
    #: per-core event indices in program order (sorted core ids)
    po: Dict[int, List[int]] = field(default_factory=dict)
    rf: List[RfEdge] = field(default_factory=list)
    #: adjacent coherence edges, per address
    co: Dict[int, List[Edge]] = field(default_factory=dict)
    fr: List[Edge] = field(default_factory=list)
    #: event index that produced each version
    writer_of: Dict[int, int] = field(default_factory=dict)

    def co_edges(self) -> List[Edge]:
        return [edge for edges in self.co.values() for edge in edges]

    def rf_edges(self, *, external_only: bool = False) -> List[Edge]:
        return [(e.writer, e.reader) for e in self.rf
                if not (external_only and e.internal)]


def is_read(event: MemEvent) -> bool:
    return event.kind in ("ld", "at")


def is_write(event: MemEvent) -> bool:
    return event.kind in ("st", "at")


def build_relations(log: ExecutionLog) -> Relations:
    """Derive po, rf, co and fr from a recorded execution."""
    events = log.events
    rel = Relations(events=events)

    # po ------------------------------------------------------------------
    by_core: Dict[int, List[int]] = defaultdict(list)
    for idx, event in enumerate(events):
        by_core[event.core].append(idx)
    for core in sorted(by_core):
        idxs = sorted(by_core[core], key=lambda i: events[i].seq)
        rel.po[core] = idxs

    # writer index per version --------------------------------------------
    for idx, event in enumerate(events):
        if event.version_written is not None:
            rel.writer_of[event.version_written] = idx

    # co: adjacent edges of each address's version list -------------------
    co_pos: Dict[int, Dict[int, int]] = {}
    for addr, versions in log.coherence_order.items():
        co_pos[addr] = {version: pos for pos, version in enumerate(versions)}
        edges: List[Edge] = []
        for pos in range(len(versions) - 1):
            src = rel.writer_of.get(versions[pos])
            dst = rel.writer_of.get(versions[pos + 1])
            if src is not None and dst is not None:
                edges.append((src, dst))
        rel.co[addr] = edges

    # rf and fr ------------------------------------------------------------
    for idx, event in enumerate(events):
        if event.version_read is None:
            continue
        version = event.version_read
        writer = rel.writer_of.get(version)
        if writer is not None and writer != idx:
            rel.rf.append(RfEdge(writer, idx,
                                 internal=events[writer].core == event.core))
        versions = log.coherence_order.get(event.addr, [])
        if version == 0:
            next_pos = 0  # from-init read: fr to the first writer
        else:
            next_pos = co_pos.get(event.addr, {}).get(version, -2) + 1
        if 0 <= next_pos < len(versions):
            successor = rel.writer_of.get(versions[next_pos])
            if successor is not None and successor != idx:
                rel.fr.append((idx, successor))
    return rel


# ------------------------------------------------------------------ graphs
def has_cycle(n: int, adjacency: Dict[int, Set[int]]) -> bool:
    """Kahn's algorithm: True iff the graph has a cycle (fast path)."""
    indegree = [0] * n
    for dsts in adjacency.values():
        for dst in dsts:
            indegree[dst] += 1
    queue = deque(i for i in range(n) if indegree[i] == 0)
    removed = 0
    while queue:
        node = queue.popleft()
        removed += 1
        for dst in adjacency.get(node, ()):
            indegree[dst] -= 1
            if indegree[dst] == 0:
                queue.append(dst)
    return removed != n


def find_cycle(n: int, adjacency: Dict[int, Set[int]]
               ) -> Optional[List[int]]:
    """Return the minimal witness cycle, deterministically.

    Minimal means fewest nodes; among equally short cycles the one whose
    rotated node list (starting at its smallest node) is lexicographically
    least wins.  The result depends only on the edge *set*, never on
    dict/set insertion order, so violation messages are stable.
    """
    if not has_cycle(n, adjacency):
        return None
    best: Optional[List[int]] = None
    for start in range(n):
        # BFS with sorted neighbour expansion: shortest path back to
        # start; the parent pointers then reconstruct one shortest cycle
        # through `start` that is deterministic for a given edge set.
        parent: Dict[int, Optional[int]] = {start: None}
        queue: deque = deque([start])
        found: Optional[List[int]] = None
        while queue and found is None:
            node = queue.popleft()
            for dst in sorted(adjacency.get(node, ())):
                if dst == start:
                    path = [node]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])
                    found = list(reversed(path))
                    break
                if dst not in parent:
                    parent[dst] = node
                    queue.append(dst)
        if found is None:
            continue
        rotated = _rotate_min(found)
        if best is None or (len(rotated), rotated) < (len(best), best):
            best = rotated
    return best


def _rotate_min(cycle: List[int]) -> List[int]:
    """Rotate a cycle's node list to start at its smallest node."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def describe_cycle(events: List[MemEvent], cycle: List[int]) -> str:
    return " -> ".join(
        f"[{events[i].kind} c{events[i].core}#{events[i].seq} "
        f"a={events[i].addr:#x} r={events[i].version_read} "
        f"w={events[i].version_written}]"
        for i in cycle
    )
