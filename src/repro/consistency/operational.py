"""Operational reference machines, one per memory model.

The x86-TSO machine is Owens/Sarkar/Sewell ("x86-TSO: a rigorous and
usable programmer's model"): a single shared memory, one FIFO store
buffer per hardware thread, and a nondeterministic scheduler.  At each
step the machine may (a) execute the next instruction of some thread —
loads read from the own store buffer first (youngest matching entry),
then memory; stores append to the buffer; RMWs require an *empty* own
buffer and act atomically on memory — or (b) drain the oldest entry of
some store buffer to memory.

Two sibling machines make the conformance matrix operational:

* ``sc`` — the same machine with the store buffer removed: stores hit
  memory at execute, so every schedule is a plain interleaving.
* ``rmo`` — an out-of-order issue machine: any not-yet-executed op of a
  thread may fire as long as every *po-earlier* op it must stay behind
  has fired.  An op stays behind fences, and behind same-location ops —
  except a load hoisting above its own thread's store, which forwards
  that store's value (the classic st→ld relaxation, now per location).
  The machine keeps a single memory, so the model is store-atomic.

:func:`enumerate_outcomes` explores every schedule of a small program
and returns the set of reachable final register valuations;
:func:`enumerate_final_states` also carries the final memory, which
litmus families whose ``exists`` constrains memory (R, 2+2W, ...) need.
This is the ground truth the *simulator* (operational,
microarchitectural) and the *axiomatic enumeration* are validated
against:

* every outcome observed on the simulator must be operationally
  reachable (soundness of the whole machine);
* an execution whose outcome is operationally unreachable must be
  rejected by the axiomatic checker (checker completeness on these
  shapes).

Programs are tiny: threads are lists of :class:`TOp` — ``ld``, ``st``,
and ``rmw`` on named locations.  State spaces are memoized; typical
litmus shapes explore a few thousand states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class TOp:
    """One abstract operation: ('ld', loc, reg) / ('st', loc, value) /
    ('rmw', loc, reg, value) — the rmw loads into reg then stores value —
    or ('mf',): an MFENCE, which blocks until the own buffer drains."""

    kind: str  # "ld" | "st" | "rmw" | "mf"
    loc: str = ""
    reg: str = ""
    value: int = 0


def ld(loc: str, reg: str) -> TOp:
    return TOp("ld", loc, reg=reg)


def st(loc: str, value: int) -> TOp:
    return TOp("st", loc, value=value)


def rmw(loc: str, reg: str, value: int) -> TOp:
    return TOp("rmw", loc, reg=reg, value=value)


def mf() -> TOp:
    return TOp("mf")


State = Tuple[
    Tuple[int, ...],  # per-thread program counter
    Tuple[Tuple[Tuple[str, int], ...], ...],  # per-thread store buffer
    Tuple[Tuple[str, int], ...],  # memory (sorted items)
    Tuple[Tuple[str, int], ...],  # registers (sorted "t{i}:{reg}" items)
]


FinalState = Tuple[FrozenSet[Tuple[str, int]], FrozenSet[Tuple[str, int]]]


def enumerate_outcomes(threads: Sequence[Sequence[TOp]],
                       *, model: str = "tso", max_states: int = 200_000
                       ) -> Set[FrozenSet[Tuple[str, int]]]:
    """All reachable final register valuations under *model*."""
    return {registers for registers, __ in
            enumerate_final_states(threads, model=model,
                                   max_states=max_states)}


def enumerate_final_states(threads: Sequence[Sequence[TOp]],
                           *, model: str = "tso",
                           max_states: int = 200_000) -> Set[FinalState]:
    """All reachable final (registers, memory) pairs under *model*."""
    if model == "rmo":
        return _enumerate_rmo(threads, max_states=max_states)
    if model not in ("tso", "sc"):
        raise ValueError(f"no operational machine for model {model!r}")
    step = _successors if model == "tso" else _successors_sc
    initial: State = (
        tuple(0 for __ in threads),
        tuple(() for __ in threads),
        (),
        (),
    )
    outcomes: Set[FinalState] = set()
    seen: Set[State] = set()
    stack: List[State] = [initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        if len(seen) > max_states:
            raise RuntimeError("state space too large; shrink the program")
        pcs, buffers, memory, registers = state
        successors = step(threads, state)
        if not successors:
            outcomes.add((frozenset(registers), frozenset(memory)))
            continue
        stack.extend(successors)
    return outcomes


def _read(memory: Tuple[Tuple[str, int], ...], loc: str) -> int:
    for name, value in memory:
        if name == loc:
            return value
    return 0


def _write(memory: Tuple[Tuple[str, int], ...], loc: str,
           value: int) -> Tuple[Tuple[str, int], ...]:
    items = dict(memory)
    items[loc] = value
    return tuple(sorted(items.items()))


def _set_reg(registers: Tuple[Tuple[str, int], ...], key: str,
             value: int) -> Tuple[Tuple[str, int], ...]:
    items = dict(registers)
    items[key] = value
    return tuple(sorted(items.items()))


def _successors(threads, state: State) -> List[State]:
    pcs, buffers, memory, registers = state
    next_states: List[State] = []
    for tid in range(len(threads)):
        # (b) drain the oldest store-buffer entry to memory.
        if buffers[tid]:
            (loc, value), rest = buffers[tid][0], buffers[tid][1:]
            new_buffers = _replace(buffers, tid, rest)
            next_states.append(
                (pcs, new_buffers, _write(memory, loc, value), registers))
        # (a) execute the thread's next instruction.
        if pcs[tid] >= len(threads[tid]):
            continue
        op = threads[tid][pcs[tid]]
        new_pcs = _replace(pcs, tid, pcs[tid] + 1)
        if op.kind == "st":
            new_buffers = _replace(
                buffers, tid, buffers[tid] + ((op.loc, op.value),))
            next_states.append((new_pcs, new_buffers, memory, registers))
        elif op.kind == "ld":
            value = _forwarded(buffers[tid], op.loc)
            if value is None:
                value = _read(memory, op.loc)
            new_regs = _set_reg(registers, f"t{tid}:{op.reg}", value)
            next_states.append((new_pcs, buffers, memory, new_regs))
        elif op.kind == "mf":
            if buffers[tid]:
                continue  # MFENCE waits for the own buffer to drain
            next_states.append((new_pcs, buffers, memory, registers))
        elif op.kind == "rmw":
            if buffers[tid]:
                continue  # RMW requires a drained own buffer (fence)
            old = _read(memory, op.loc)
            new_regs = _set_reg(registers, f"t{tid}:{op.reg}", old)
            next_states.append(
                (new_pcs, buffers, _write(memory, op.loc, op.value),
                 new_regs))
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
    return next_states


def _successors_sc(threads, state: State) -> List[State]:
    """SC: the TSO machine minus the store buffer (stores hit memory at
    execute, MFENCE is a no-op, RMW needs no drain)."""
    pcs, buffers, memory, registers = state
    next_states: List[State] = []
    for tid in range(len(threads)):
        if pcs[tid] >= len(threads[tid]):
            continue
        op = threads[tid][pcs[tid]]
        new_pcs = _replace(pcs, tid, pcs[tid] + 1)
        if op.kind == "st":
            next_states.append(
                (new_pcs, buffers, _write(memory, op.loc, op.value),
                 registers))
        elif op.kind == "ld":
            value = _read(memory, op.loc)
            new_regs = _set_reg(registers, f"t{tid}:{op.reg}", value)
            next_states.append((new_pcs, buffers, memory, new_regs))
        elif op.kind == "mf":
            next_states.append((new_pcs, buffers, memory, registers))
        elif op.kind == "rmw":
            old = _read(memory, op.loc)
            new_regs = _set_reg(registers, f"t{tid}:{op.reg}", old)
            next_states.append(
                (new_pcs, buffers, _write(memory, op.loc, op.value),
                 new_regs))
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
    return next_states


# ----------------------------------------------------------------- rmo
RmoState = Tuple[
    Tuple[FrozenSet[int], ...],  # per-thread executed op indices
    Tuple[Tuple[str, int], ...],  # memory
    Tuple[Tuple[str, int], ...],  # registers
]


def _rmo_blockers(thread: Sequence[TOp]) -> List[Tuple[int, ...]]:
    """For each op, the po-earlier indices it must wait for under RMO.

    An op waits for fences (and a fence for everything), and for
    same-location predecessors — except a load above a same-location
    store, which may hoist (it forwards the store's value instead).
    """
    blockers: List[Tuple[int, ...]] = []
    for j, op in enumerate(thread):
        waits = []
        for i in range(j):
            prev = thread[i]
            if prev.kind == "mf" or op.kind == "mf":
                waits.append(i)
            elif prev.kind == "rmw" or op.kind == "rmw":
                waits.append(i)  # atomics are full fences
            elif prev.loc == op.loc:
                if prev.kind == "st" and op.kind == "ld":
                    continue  # st→ld hoists via forwarding
                waits.append(i)
        blockers.append(tuple(waits))
    return blockers


def _enumerate_rmo(threads: Sequence[Sequence[TOp]],
                   *, max_states: int) -> Set[FinalState]:
    blockers = [_rmo_blockers(thread) for thread in threads]
    initial: RmoState = (
        tuple(frozenset() for __ in threads), (), ())
    outcomes: Set[FinalState] = set()
    seen: Set[RmoState] = set()
    stack: List[RmoState] = [initial]
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        if len(seen) > max_states:
            raise RuntimeError("state space too large; shrink the program")
        done, memory, registers = state
        successors: List[RmoState] = []
        for tid, thread in enumerate(threads):
            for j, op in enumerate(thread):
                if j in done[tid]:
                    continue
                if any(i not in done[tid] for i in blockers[tid][j]):
                    continue
                new_done = _replace(done, tid, done[tid] | {j})
                if op.kind == "st":
                    successors.append(
                        (new_done, _write(memory, op.loc, op.value),
                         registers))
                elif op.kind == "ld":
                    value = _rmo_load_value(thread, done[tid], j, memory)
                    new_regs = _set_reg(registers, f"t{tid}:{op.reg}", value)
                    successors.append((new_done, memory, new_regs))
                elif op.kind == "mf":
                    successors.append((new_done, memory, registers))
                elif op.kind == "rmw":
                    old = _read(memory, op.loc)
                    new_regs = _set_reg(registers, f"t{tid}:{op.reg}", old)
                    successors.append(
                        (new_done, _write(memory, op.loc, op.value),
                         new_regs))
                else:
                    raise ValueError(f"unknown op kind {op.kind!r}")
        if not successors:
            outcomes.add((frozenset(registers), frozenset(memory)))
            continue
        stack.extend(successors)
    return outcomes


def _rmo_load_value(thread: Sequence[TOp], done: FrozenSet[int],
                    j: int, memory: Tuple[Tuple[str, int], ...]) -> int:
    """A load executing at *j*: forward from the youngest po-earlier
    same-location store that has not yet executed, else read memory."""
    op = thread[j]
    for i in range(j - 1, -1, -1):
        prev = thread[i]
        if prev.kind in ("st", "rmw") and prev.loc == op.loc:
            if i not in done:
                return prev.value
            break  # youngest same-loc store already in memory order
    return _read(memory, op.loc)


def _forwarded(buffer: Tuple[Tuple[str, int], ...], loc: str):
    for name, value in reversed(buffer):
        if name == loc:
            return value
    return None


def _replace(items: tuple, index: int, value) -> tuple:
    return items[:index] + (value,) + items[index + 1:]


def outcome_reachable(threads: Sequence[Sequence[TOp]],
                      expected: Dict[str, int]) -> bool:
    """Is a final valuation with (at least) *expected* register values
    reachable?  Keys are ``"t{tid}:{reg}"``."""
    wanted = set(expected.items())
    for outcome in enumerate_outcomes(threads):
        if wanted <= set(outcome):
            return True
    return False
