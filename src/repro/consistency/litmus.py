"""Litmus tests: classic TSO shapes plus the paper's Tables 1-3.

A :class:`LitmusTest` describes per-thread memory operations with timing
knobs (compute delays, unresolved-address loads).  :func:`run_litmus`
executes it on the full simulator and returns the final register values;
:func:`sweep_litmus` re-runs across a grid of timing offsets to hunt for
forbidden outcomes.  Because every run also passes through the axiomatic
checker, a litmus test failing would surface both as a forbidden outcome
*and* a checker cycle.

:func:`enumerate_interleavings` reproduces Table 2 analytically: all
interleavings of two instruction streams, classified legal/illegal under
TSO by the same axiomatic rules.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..common.params import SystemParams, table6_system
from ..common.types import CommitMode
from ..workloads.trace import AddressSpace, TraceBuilder
from .execution import ExecutionLog
from .tso_checker import check_tso
from ..common.errors import TSOViolationError


@dataclass(frozen=True)
class Op:
    """One litmus operation: ("ld", var, out_name) or ("st", var, value)."""

    kind: str  # "ld" | "st" | "delay" | "ld_slow" | "ld_dep" | "fence" | "spin" | "at"
    var: str = ""
    arg: int = 0
    out: str = ""  # register result name for loads


def ld(var: str, out: str) -> Op:
    return Op("ld", var, out=out)


def ld_slow(var: str, out: str, delay: int = 150) -> Op:
    """A load whose address resolves only after *delay* cycles."""
    return Op("ld_slow", var, arg=delay, out=out)


def ld_dep(var: str, out: str) -> Op:
    """A load whose address carries a dependency on the previous load.

    Compiles to a gate on the preceding load's result register feeding
    the address, so the access cannot even *start* before the older
    load performs (the paper's address-dependency timing case).  TSO
    legality is unchanged — dependencies only constrain the
    microarchitecture, which is exactly why the differential checker
    wants them as variants.
    """
    return Op("ld_dep", var, out=out)


def st(var: str, value: int) -> Op:
    return Op("st", var, arg=value)


def fence() -> Op:
    """A full fence (x86 MFENCE).

    The trace ISA has no fence instruction; atomics are full fences
    (they drain the store buffer and stall until globally performed),
    so the fence compiles to a fetch-and-add on a private per-thread
    scratch line that no other op touches.
    """
    return Op("fence")


def delay(cycles: int) -> Op:
    return Op("delay", arg=cycles)


def spin_nonzero(var: str, out: str) -> Op:
    """Spin until *var* becomes non-zero; *out* gets the observed value."""
    return Op("spin", var, out=out)


@dataclass
class LitmusTest:
    """A named litmus test with its TSO-forbidden outcomes."""

    name: str
    threads: List[List[Op]]
    forbidden: List[Dict[str, int]]
    description: str = ""
    variables: Optional[List[str]] = None

    def all_vars(self) -> List[str]:
        if self.variables:
            return self.variables
        seen: List[str] = []
        for thread in self.threads:
            for op in thread:
                if op.var and op.var not in seen:
                    seen.append(op.var)
        return seen


@dataclass
class LitmusOutcome:
    registers: Dict[str, int]
    forbidden_hit: bool
    checker_violation: Optional[str] = None
    #: final value of each litmus variable (last coherence-order write)
    memory: Dict[str, int] = field(default_factory=dict)


def _build_traces(test: LitmusTest, space: AddressSpace,
                  extra_delays: Sequence[int]):
    """Compile litmus threads to traces.

    Returns ``(traces, reg_map, var_addr)`` where ``var_addr`` maps each
    litmus variable to its byte address (final-memory extraction).
    """
    addr = {var: space.new_var(var) for var in test.all_vars()}
    traces = []
    out_regs: List[Tuple[int, int, str]] = []  # (thread, reg, name)
    for tid, thread in enumerate(test.threads):
        t = TraceBuilder()
        if tid < len(extra_delays) and extra_delays[tid]:
            t.compute(latency=extra_delays[tid])
        last_load_reg: Optional[int] = None
        fence_addr: Optional[int] = None
        for op in thread:
            if op.kind == "ld":
                reg = t.reg()
                t.load(reg, addr[op.var])
                out_regs.append((tid, reg, op.out))
                last_load_reg = reg
            elif op.kind == "ld_slow":
                base = t.reg()
                t.compute(base, latency=op.arg)  # value 0: slow zero offset
                reg = t.reg()
                t.load(reg, addr[op.var], addr_reg=base)
                out_regs.append((tid, reg, op.out))
                last_load_reg = reg
            elif op.kind == "ld_dep":
                if last_load_reg is None:
                    raise ValueError(
                        f"ld_dep({op.var!r}) has no preceding load in "
                        f"thread {tid} to depend on")
                gate = t.reg()
                t.gate(gate, (last_load_reg,))  # 0 only once dep performs
                reg = t.reg()
                t.load(reg, addr[op.var], addr_reg=gate)
                out_regs.append((tid, reg, op.out))
                last_load_reg = reg
            elif op.kind == "fence":
                if fence_addr is None:
                    fence_addr = space.new_var(f"__fence_t{tid}")
                t.faa(t.reg(), fence_addr)  # atomic == full fence
            elif op.kind == "st":
                t.store(addr[op.var], op.arg)
            elif op.kind == "delay":
                t.compute(latency=op.arg)
            elif op.kind == "spin":
                r_val = t.reg()
                top = t.here
                t.load(r_val, addr[op.var])
                t.beqz(r_val, top, predict_taken=True)
                out_regs.append((tid, r_val, op.out))
            elif op.kind == "at":
                reg = t.reg()
                t.faa(reg, addr[op.var], op.arg)
                out_regs.append((tid, reg, op.out))
            else:
                raise ValueError(f"unknown litmus op {op.kind!r}")
        traces.append(t.build())
    return traces, out_regs, addr


def litmus_traces(test: LitmusTest, space: AddressSpace,
                  extra_delays: Sequence[int] = ()):
    """Compile *test* to per-core traces.

    Public wrapper used by the perf corpus and the golden-determinism
    pins, which need the raw traces (to run through ``run_traces`` and
    digest the full :class:`~repro.sim.results.SimResult`) rather than
    the register-outcome view of :func:`run_litmus`.
    Returns ``(traces, out_regs, var_addr)`` like :func:`_build_traces`.
    """
    return _build_traces(test, space, extra_delays)


def run_litmus(test: LitmusTest, params: Optional[SystemParams] = None, *,
               extra_delays: Sequence[int] = ()) -> LitmusOutcome:
    """Run one timing instance of *test*; check registers and TSO."""
    from ..sim.system import MulticoreSystem  # local import: avoid cycle

    if params is None:
        params = table6_system("SLM", num_cores=4)
    space = AddressSpace(params.cache.line_bytes)
    traces, out_regs, var_addr = _build_traces(test, space, extra_delays)
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    registers = {
        name: system.cores[tid].reg_values.get(reg, 0)
        for tid, reg, name in out_regs
    }
    memory: Dict[str, int] = {}
    for var, byte_addr in var_addr.items():
        versions = result.log.coherence_order.get(byte_addr, [])
        memory[var] = result.log.value_of(versions[-1]) if versions else 0
    violation: Optional[str] = None
    try:
        check_tso(result.log)
    except TSOViolationError as exc:
        violation = str(exc)
    forbidden_hit = any(
        all(registers.get(k) == v for k, v in combo.items())
        for combo in test.forbidden
    )
    return LitmusOutcome(registers=registers, forbidden_hit=forbidden_hit,
                         checker_violation=violation, memory=memory)


def perturbation_delays(test: LitmusTest, count: int,
                        rng: random.Random) -> List[Tuple[int, ...]]:
    """*count* random per-thread start-offset tuples drawn from *rng*.

    The caller owns the :class:`random.Random` instance (and therefore
    the seed): nothing here touches module-global randomness, so a
    pinned seed gives byte-stable sweep schedules in the BENCH drivers.
    """
    threads = len(test.threads)
    return [tuple(rng.randrange(0, 121, 10) for __ in range(threads))
            for __ in range(count)]


def sweep_litmus(test: LitmusTest, params: Optional[SystemParams] = None, *,
                 delays: Sequence[Sequence[int]] = ((0, 0), (0, 40), (40, 0),
                                                    (0, 80), (80, 0),
                                                    (20, 60), (60, 20)),
                 perturb: int = 0,
                 rng: Optional[random.Random] = None,
                 ) -> List[LitmusOutcome]:
    """Run *test* across a grid of per-thread start offsets.

    ``perturb`` appends that many random offset tuples generated from
    *rng* (an explicit, caller-seeded :class:`random.Random`; default
    ``random.Random(0)``) via :func:`perturbation_delays`.
    """
    combos = [tuple(combo) for combo in delays]
    if perturb:
        combos.extend(perturbation_delays(
            test, perturb, rng if rng is not None else random.Random(0)))
    return [run_litmus(test, params, extra_delays=combo) for combo in combos]


# ----------------------------------------------------------- the test suite
def table1_test() -> LitmusTest:
    """Paper Table 1: TSO forbids {ra==1, rb==0} (with ld y slow)."""
    return LitmusTest(
        name="table1-load-pair",
        threads=[
            [ld("x", "warm"), ld_slow("y", "ra", delay=420), ld("x", "rb")],
            [delay(40), st("x", 1), st("y", 1)],
        ],
        forbidden=[{"ra": 1, "rb": 0}],
        description="ld ra,y ; ld rb,x || st x,1 ; st y,1 — the paper's "
                    "running example with the younger load hitting a "
                    "stale cached x while the older load's address is "
                    "unresolved.",
    )


def table3_test() -> LitmusTest:
    """Paper Table 3: transitive happens-before via a third core."""
    return LitmusTest(
        name="table3-three-core",
        threads=[
            [ld("x", "warm"), ld_slow("y", "ra", delay=420), ld("x", "rb")],
            [delay(40), st("x", 1)],
            [spin_nonzero("x", "rc"), st("y", 1)],
        ],
        forbidden=[{"ra": 1, "rb": 0}],
        description="st x and st y on different cores, ordered by core 2 "
                    "spinning on x — delaying st x transitively delays "
                    "st y (paper Table 3).",
    )


def store_buffer_test() -> LitmusTest:
    """Classic SB: {r0==0, r1==0} is ALLOWED in TSO (store buffering)."""
    return LitmusTest(
        name="store-buffering",
        threads=[
            [st("x", 1), ld("y", "r0")],
            [st("y", 1), ld("x", "r1")],
        ],
        forbidden=[],  # nothing forbidden: SB relaxation is TSO-legal
        description="Dekker-style store buffering; 0,0 allowed under TSO.",
    )


def message_passing_test() -> LitmusTest:
    """MP: seeing the flag means seeing the data."""
    return LitmusTest(
        name="message-passing",
        threads=[
            [st("data", 42), st("flag", 1)],
            [spin_nonzero("flag", "rf"), ld("data", "rd")],
        ],
        forbidden=[{"rf": 1, "rd": 0}],
        description="Flag/data message passing; stale data is forbidden.",
    )


def corr_test() -> LitmusTest:
    """CoRR: two reads of one location must not go backwards."""
    return LitmusTest(
        name="coherence-read-read",
        threads=[
            [ld("x", "warm"), delay(30), ld("x", "r0"), ld("x", "r1")],
            [delay(45), st("x", 1)],
        ],
        forbidden=[{"r0": 1, "r1": 0}],
        description="Per-location coherence: later read can't see older value.",
    )


def iriw_test() -> LitmusTest:
    """IRIW: independent reads of independent writes (forbidden in TSO)."""
    return LitmusTest(
        name="iriw",
        threads=[
            [st("x", 1)],
            [st("y", 1)],
            [spin_nonzero("x", "r0"), ld("y", "r1")],
            [spin_nonzero("y", "r2"), ld("x", "r3")],
        ],
        forbidden=[{"r0": 1, "r1": 0, "r2": 1, "r3": 0}],
        description="Writes to x and y must appear in one global order.",
    )


def load_buffering_test() -> LitmusTest:
    """LB: loads may not be buffered past later stores in TSO."""
    return LitmusTest(
        name="load-buffering",
        threads=[
            [ld("x", "r0"), st("y", 1)],
            [ld("y", "r1"), st("x", 1)],
        ],
        forbidden=[{"r0": 1, "r1": 1}],
        description="TSO keeps load->store order: both loads reading "
                    "the other thread's (later) store is forbidden.",
    )


def wrc_test() -> LitmusTest:
    """WRC: write-to-read causality must be transitive."""
    return LitmusTest(
        name="write-read-causality",
        threads=[
            [st("x", 1)],
            [spin_nonzero("x", "r0"), st("y", 1)],
            [spin_nonzero("y", "r1"), ld("x", "r2")],
        ],
        forbidden=[{"r0": 1, "r1": 1, "r2": 0}],
        description="Core 2 observes y=1 which was caused by x=1; it "
                    "must then observe x=1 as well.",
    )


def atomic_mutex_test() -> LitmusTest:
    """Two fetch-and-adds must serialize (atomicity check)."""
    return LitmusTest(
        name="atomic-faa",
        threads=[
            [Op("at", "c", 1, out="r0")],
            [Op("at", "c", 1, out="r1")],
        ],
        forbidden=[{"r0": 0, "r1": 0}, {"r0": 1, "r1": 1}],
        description="Both RMWs reading the same old value is forbidden.",
    )


def standard_suite() -> List[LitmusTest]:
    return [
        table1_test(),
        table3_test(),
        store_buffer_test(),
        message_passing_test(),
        corr_test(),
        iriw_test(),
        load_buffering_test(),
        wrc_test(),
        atomic_mutex_test(),
    ]


# ------------------------------------------------- Table 2: interleavings
@dataclass(frozen=True)
class SimpleOp:
    """An abstract operation for interleaving enumeration.

    ``kind`` is ``"ld"``, ``"st"``, or ``"mf"`` (a full fence, which
    carries no variable).  ``out`` optionally overrides the load-outcome
    key (default ``"t{thread}:ld {var}"``) — the conformance corpus uses
    register names so the same valuation keys work across the simulator,
    the operational model, and this enumeration.
    """

    thread: int
    kind: str  # "ld" | "st" | "mf"
    var: str = ""
    out: str = ""

    def key(self) -> str:
        return self.out or f"t{self.thread}:ld {self.var}"


def enumerate_interleavings(threads: Sequence[Sequence[SimpleOp]]
                            ) -> List[Tuple[Tuple[SimpleOp, ...], Dict[str, str]]]:
    """All program-order-preserving interleavings with load outcomes.

    Returns (interleaving, {load key -> "old"/"new"}) for each
    interleaving, executing stores in interleaving order (memory order)
    and binding each load to the current value of its variable.  This is
    the *sequentially consistent* enumeration (paper Table 2); fences
    are inert here.  :func:`legal_tso_outcomes` layers the TSO
    store-buffer relaxation on top.
    """
    results = []
    lengths = [len(t) for t in threads]
    for order in _merge_orders(lengths):
        ops = tuple(threads[t][i] for t, i in order)
        loads = _execute_interleaving(ops)
        results.append((ops, loads))
    return results


def _execute_interleaving(ops: Sequence[SimpleOp]) -> Dict[str, str]:
    state: Dict[str, str] = {}
    loads: Dict[str, str] = {}
    for op in ops:
        if op.kind == "st":
            state[op.var] = "new"
        elif op.kind == "ld":
            loads[op.key()] = state.get(op.var, "old")
    return loads


def legal_tso_outcomes(threads: Sequence[Sequence[SimpleOp]]
                       ) -> List[Dict[str, str]]:
    """Distinct load-outcome combinations reachable under x86-TSO.

    TSO relaxes exactly one program-order edge: an older *store* may
    drain to memory after a younger *load* performs (FIFO store buffer),
    with same-address forwarding.  Every TSO execution is therefore an
    SC interleaving of per-thread *memory-order* sequences in which

    * loads keep their relative program order,
    * stores keep their relative program order,
    * a load may move earlier past any program-order-earlier stores,
      unless a fence (``mf``) sits between them, and
    * a load hoisted past a same-variable store is *pinned* to that
      store's value (store-to-load forwarding) instead of reading
      memory.

    :func:`_thread_relaxations` enumerates those per-thread sequences;
    this function SC-merges every combination and collects the distinct
    load valuations.  For threads with no store→load pairs (e.g. the
    paper's Table 2 shape) this degenerates to the SC enumeration.
    """
    outcomes: List[Dict[str, str]] = []
    seen = set()
    relaxed_threads = [_thread_relaxations(t) for t in threads]
    for combo in itertools.product(*relaxed_threads):
        lengths = [len(t) for t in combo]
        for order in _merge_orders(lengths):
            state: Dict[str, str] = {}
            loads: Dict[str, str] = {}
            for t, i in order:
                op, pinned = combo[t][i]
                if op.kind == "st":
                    state[op.var] = "new"
                else:
                    loads[op.key()] = (pinned if pinned is not None
                                       else state.get(op.var, "old"))
            fingerprint = tuple(sorted(loads.items()))
            if fingerprint not in seen:
                seen.add(fingerprint)
                outcomes.append(loads)
    return outcomes


def _thread_relaxations(ops: Sequence[SimpleOp]
                        ) -> List[Tuple[Tuple[SimpleOp, Optional[str]], ...]]:
    """All TSO-legal memory-order sequences for one thread.

    Walks the program with a symbolic FIFO store buffer: at each step
    either execute the next instruction (loads perform immediately,
    forwarding from the youngest buffered same-variable store; stores
    enter the buffer; a fence requires an empty buffer) or drain the
    oldest buffered store.  The emitted sequence of (op, pinned_value)
    pairs is the order the thread's accesses hit memory — exactly the
    per-thread projection of a TSO execution.  Fences emit nothing.
    """
    results: List[Tuple[Tuple[SimpleOp, Optional[str]], ...]] = []
    seen = set()

    def walk(pc: int, buffer: Tuple[SimpleOp, ...],
             emitted: Tuple[Tuple[SimpleOp, Optional[str]], ...]) -> None:
        if pc == len(ops) and not buffer:
            if emitted not in seen:
                seen.add(emitted)
                results.append(emitted)
            return
        if buffer:  # drain the oldest buffered store to memory
            walk(pc, buffer[1:], emitted + ((buffer[0], None),))
        if pc == len(ops):
            return
        op = ops[pc]
        if op.kind == "st":
            walk(pc + 1, buffer + (op,), emitted)
        elif op.kind == "mf":
            if not buffer:
                walk(pc + 1, buffer, emitted)
        elif op.kind == "ld":
            pinned: Optional[str] = None
            for buffered in reversed(buffer):
                if buffered.var == op.var:
                    pinned = "new"  # forwarded from own store buffer
                    break
            walk(pc + 1, buffer, emitted + ((op, pinned),))
        else:
            raise ValueError(f"unknown SimpleOp kind {op.kind!r}")

    walk(0, (), ())
    return results


def _merge_orders(lengths: Sequence[int]) -> Iterator[Tuple[Tuple[int, int], ...]]:
    """All merges of ``lengths[i]`` items per thread, preserving order.

    Recursion over the residual-lengths state: at every step, append the
    next unconsumed item of some thread.  Each distinct merge is built
    exactly once — the multinomial ``(sum n_i)! / prod n_i!`` orders —
    unlike the previous permutations-then-deduplicate pass, which
    materialized all ``(sum n_i)!`` permutations first and made 4-thread
    tests exponential-with-repeats.  Yield order is lexicographic in
    thread index, matching the old implementation byte for byte.
    """
    total = sum(lengths)
    counters = [0] * len(lengths)
    order: List[Tuple[int, int]] = []

    def rec() -> Iterator[Tuple[Tuple[int, int], ...]]:
        if len(order) == total:
            yield tuple(order)
            return
        for thread, n in enumerate(lengths):
            if counters[thread] < n:
                order.append((thread, counters[thread]))
                counters[thread] += 1
                yield from rec()
                counters[thread] -= 1
                order.pop()
        return

    yield from rec()
