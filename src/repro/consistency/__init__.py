"""Consistency: execution recording and the axiomatic TSO checker."""

from .execution import ExecutionLog, MemEvent, StoreInfo
from .operational import TOp, enumerate_outcomes, outcome_reachable
from .tso_checker import check_tso

__all__ = [
    "ExecutionLog",
    "MemEvent",
    "StoreInfo",
    "check_tso",
    "TOp",
    "enumerate_outcomes",
    "outcome_reachable",
]
