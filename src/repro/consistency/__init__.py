"""Consistency: execution recording and the relational axiomatic engine."""

from .execution import ExecutionLog, MemEvent, StoreInfo
from .models import MODELS, RMO, SC, TSO, MemoryModel, check_execution
from .operational import TOp, enumerate_outcomes, outcome_reachable
from .relations import Relations, build_relations, find_cycle
from .tso_checker import check_tso

__all__ = [
    "ExecutionLog",
    "MemEvent",
    "StoreInfo",
    "check_tso",
    "check_execution",
    "MemoryModel",
    "MODELS",
    "TSO",
    "SC",
    "RMO",
    "Relations",
    "build_relations",
    "find_cycle",
    "TOp",
    "enumerate_outcomes",
    "outcome_reachable",
]
