"""Declarative memory models over the relational execution view.

A :class:`MemoryModel` is pure configuration — a preserved-program-order
matrix plus a handful of axiom switches — and one generic engine
(:func:`check_execution`) checks any model against any recorded
execution.  Three specs ship:

``TSO``
    x86-TSO (Owens/Sarkar/Sewell; herd's ``x86tso.cat``): program order
    minus store→load, internal rf excluded from the global order (a
    core reads its own stores early via the store buffer).
``SC``
    Sequential consistency: all of program order preserved, every rf
    edge global.
``RMO``
    An RMO-ish relaxed model: *no* program order preserved except
    through fences — only coherence, atomicity and fence edges
    constrain the global order.  Like SPARC RMO it is store-atomic
    (writes hit a single memory order), and — deliberately — address
    dependencies are **not** respected: the ``dep``/``slow`` litmus
    decorations stay timing-only under every shipped model.

Axioms checked (all switchable per model):

1. **SC per location** — per address, ``po-loc ∪ rf ∪ co ∪ fr`` is
   acyclic (plain coherence; every shipped model keeps it).
2. **Atomicity** — an RMW's write is the immediate co-successor of the
   version it read.
3. **Global order** — ``ghb = ppo ∪ rf[e] ∪ co ∪ fr`` is acyclic,
   where ``ppo`` is generated from the model's kind matrix and fence
   rule (atomics are full fences: MFENCE lowers to a locked RMW).

Violations raise :class:`~repro.common.errors.MemoryModelViolationError`
(:class:`~repro.common.errors.TSOViolationError` for the TSO spec, so
existing callers keep their exception type) carrying the minimal
deterministic witness cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..common.errors import MemoryModelViolationError, TSOViolationError
from .execution import ExecutionLog, MemEvent
from .relations import (Edge, Relations, build_relations, describe_cycle,
                        find_cycle, is_read, is_write)

KindPair = Tuple[str, str]  # ("R"|"W", "R"|"W")

RR: KindPair = ("R", "R")
RW: KindPair = ("R", "W")
WR: KindPair = ("W", "R")
WW: KindPair = ("W", "W")


@dataclass(frozen=True)
class MemoryModel:
    """One memory model as configuration for the generic engine.

    ``ppo`` is the preserved-program-order matrix: the set of (older,
    younger) access-kind pairs kept in the global order (atomics count
    as both R and W).  For the chain-based edge generator to be
    transitively complete the matrix must be *chain-generable*:
    ``RW ⇒ RR`` and ``WR ⇒ WW`` (reads reach later writes through the
    read chain, and vice versa) — asserted at construction.
    """

    name: str
    ppo: FrozenSet[KindPair]
    #: drop internal rf (store forwarding) from the global order
    external_rf_only: bool
    sc_per_location: bool = True
    atomicity: bool = True
    #: atomics (= fences: MFENCE lowers to a locked RMW) order everything
    atomics_fence: bool = True

    def __post_init__(self) -> None:
        if RW in self.ppo and RR not in self.ppo:
            raise ValueError(f"{self.name}: ppo matrix with RW needs RR")
        if WR in self.ppo and WW not in self.ppo:
            raise ValueError(f"{self.name}: ppo matrix with WR needs WW")

    @property
    def error_cls(self):
        return TSOViolationError if self.name == "tso" \
            else MemoryModelViolationError

    def _raise(self, message: str) -> None:
        raise self.error_cls(f"{message}", model=self.name)


TSO = MemoryModel("tso", ppo=frozenset({RR, RW, WW}), external_rf_only=True)
SC = MemoryModel("sc", ppo=frozenset({RR, RW, WR, WW}),
                 external_rf_only=False)
RMO = MemoryModel("rmo", ppo=frozenset(), external_rf_only=True)

MODELS: Dict[str, MemoryModel] = {m.name: m for m in (TSO, SC, RMO)}


def get_model(model) -> MemoryModel:
    """Accept a model name or a :class:`MemoryModel` instance."""
    if isinstance(model, MemoryModel):
        return model
    try:
        return MODELS[model]
    except KeyError:
        raise ValueError(f"unknown memory model {model!r}; "
                         f"known: {sorted(MODELS)}") from None


# ------------------------------------------------------------------ engine
def check_execution(log: ExecutionLog, model="tso") -> None:
    """Raise the model's violation error if *log* violates *model*."""
    spec = get_model(model)
    if not log.events:
        return
    rel = build_relations(log)
    if spec.atomicity:
        _check_atomicity(log, spec)
    if spec.sc_per_location:
        _check_sc_per_location(rel, spec)
    _check_global_order(rel, spec)


def check_tso(log: ExecutionLog) -> None:
    """Raise :class:`TSOViolationError` if the execution violates TSO."""
    check_execution(log, TSO)


# ----------------------------------------------------------------- atomicity
def _check_atomicity(log: ExecutionLog, spec: MemoryModel) -> None:
    for event in log.events:
        if event.kind != "at":
            continue
        co = log.coherence_order.get(event.addr, [])
        try:
            write_pos = co.index(event.version_written)
        except ValueError:
            spec._raise(
                f"atomic wrote version {event.version_written} missing from "
                f"coherence order of {event.addr:#x}")
        read_pos = -1 if event.version_read == 0 else co.index(event.version_read)
        if write_pos != read_pos + 1:
            spec._raise(
                f"atomicity violated at {event.addr:#x}: read version "
                f"{event.version_read} (pos {read_pos}) but wrote "
                f"{event.version_written} (pos {write_pos})")


# --------------------------------------------------------------- per-address
def _check_sc_per_location(rel: Relations, spec: MemoryModel) -> None:
    events = rel.events
    by_addr: Dict[int, List[int]] = {}
    for idx, event in enumerate(events):
        by_addr.setdefault(event.addr, []).append(idx)
    rf_by_reader = {edge.reader: edge.writer for edge in rel.rf}
    fr_edges = set(rel.fr)
    for addr in sorted(by_addr):
        idxs = by_addr[addr]
        local = {g: l for l, g in enumerate(idxs)}
        adjacency: Dict[int, Set[int]] = {}

        def add(src: int, dst: int) -> None:
            adjacency.setdefault(local[src], set()).add(local[dst])

        # po-loc: consecutive same-core accesses to this address.
        for core in sorted(rel.po):
            prev = None
            for idx in rel.po[core]:
                if events[idx].addr != addr:
                    continue
                if prev is not None:
                    add(prev, idx)
                prev = idx
        for src, dst in rel.co.get(addr, ()):  # co (adjacent)
            add(src, dst)
        for idx in idxs:
            writer = rf_by_reader.get(idx)  # rf
            if writer is not None:
                add(writer, idx)
        for src, dst in rel.fr:  # fr
            if events[src].addr == addr and (src, dst) in fr_edges:
                add(src, dst)
        cycle = find_cycle(len(idxs), adjacency)
        if cycle is not None:
            spec._raise(
                f"coherence (SC-per-location) violated at {addr:#x}: "
                + describe_cycle(events, [idxs[i] for i in cycle]))


# -------------------------------------------------------------------- global
def _ppo_edges(rel: Relations, spec: MemoryModel) -> Iterable[Edge]:
    """Generate ppo edges in O(events) per core via kind chains.

    Chains produce a subset of the full pairwise relation with the same
    transitive closure (guaranteed by the chain-generable check on the
    matrix), so acyclicity — the only question asked — is unchanged.
    """
    events = rel.events
    matrix = spec.ppo
    for core in sorted(rel.po):
        last_read = last_write = None
        last_fence = None
        since_fence: List[int] = []
        for idx in rel.po[core]:
            event = events[idx]
            targets = set()
            read_t, write_t = is_read(event), is_write(event)
            if last_read is not None and (
                    (read_t and RR in matrix) or (write_t and RW in matrix)):
                targets.add(last_read)
            if last_write is not None and (
                    (read_t and WR in matrix) or (write_t and WW in matrix)):
                targets.add(last_write)
            if last_fence is not None:
                targets.add(last_fence)
            for src in targets:
                if src != idx:
                    yield src, idx
            if spec.atomics_fence and event.kind == "at":
                for src in since_fence:
                    yield src, idx
                since_fence = []
                last_fence = idx
            else:
                since_fence.append(idx)
            if read_t:
                last_read = idx
            if write_t:
                last_write = idx


def _check_global_order(rel: Relations, spec: MemoryModel) -> None:
    events = rel.events
    adjacency: Dict[int, Set[int]] = {}

    def add(src: int, dst: int) -> None:
        adjacency.setdefault(src, set()).add(dst)

    for src, dst in _ppo_edges(rel, spec):
        add(src, dst)
    for src, dst in rel.rf_edges(external_only=spec.external_rf_only):
        add(src, dst)
    for src, dst in rel.co_edges():
        add(src, dst)
    for src, dst in rel.fr:
        add(src, dst)
    cycle = find_cycle(len(events), adjacency)
    if cycle is not None:
        spec._raise(f"{spec.name.upper()} global order violated: "
                    + describe_cycle(events, cycle))
