"""Cross-generation bench trend tracking (``repro bench --trend``).

Every bench artifact the repo emits — ``BENCH_<driver>.json``
(``repro-bench/1``), ``BENCH_perf.json`` (``repro-perf/1``),
``BENCH_metrics.json`` — is a tree of numeric leaves.  This module
diffs two *generations* (directories of such artifacts, e.g. the
committed ``benchmarks/out/`` goldens vs a fresh CI run) and reports
per-metric movement, split into:

* **model metrics** — deterministic simulation numbers (cycles,
  messages, saturation...).  Any drift here is a real behavior change
  and is flagged at any magnitude;
* **host metrics** — wall-clock throughput (``*_per_sec``,
  ``*_seconds``, allocation peaks).  Noisy across machines, so only
  moves beyond the threshold are reported.

Direction matters: ``sims_per_sec`` going up is an improvement,
``cycles`` going up is a regression.  Unknown leaves are reported as
neutral drift.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Tuple

TREND_SCHEMA = "repro-trend/1"

#: Structural keys that are not metrics.
_SKIP_KEYS = {"schema", "code_version", "name", "baseline_code_version",
              "baseline_path", "generated"}

#: Leaf-name fragments marking host wall-clock (noisy) metrics.
_HOST_FRAGMENTS = ("per_sec", "seconds", "wall", "alloc", "speedup",
                   "hit_rate")

#: Leaf-name fragments where *larger is better* / *smaller is better*.
_UP_GOOD = ("per_sec", "speedup", "hit_rate", "committed")
_DOWN_GOOD = ("cycles", "seconds", "wall", "alloc", "stall", "blocked",
              "squash", "uncacheable", "timeout", "retried", "flit_hops",
              "messages", "saturation", "queue")


def _leaf(key: str) -> str:
    return key.rsplit(".", 1)[-1]


def is_host_metric(key: str) -> bool:
    leaf = _leaf(key)
    return any(frag in leaf for frag in _HOST_FRAGMENTS)


def direction(key: str) -> int:
    """+1 if larger is better, -1 if smaller is better, 0 unknown."""
    leaf = _leaf(key)
    if any(frag in leaf for frag in _UP_GOOD):
        return 1
    if any(frag in leaf for frag in _DOWN_GOOD):
        return -1
    return 0


def collect_metrics(node, prefix: str = "") -> Dict[str, float]:
    """Flatten every numeric leaf of a payload into dotted keys."""
    out: Dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            if key in _SKIP_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(collect_metrics(node[key], path))
    elif isinstance(node, list):
        for index, item in enumerate(node):
            out.update(collect_metrics(item, f"{prefix}[{index}]"))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    return out


def diff_metrics(old: Dict[str, float], new: Dict[str, float], *,
                 threshold: float = 0.05) -> List[Dict]:
    """Per-metric movement records for keys present in both payloads.

    Model metrics report any drift; host metrics only beyond
    *threshold* relative change.  Each record carries ``regression``
    (the move is in the bad direction) and ``host`` flags.
    """
    moves: List[Dict] = []
    for key in sorted(set(old) & set(new)):
        a, b = old[key], new[key]
        if a == b:
            continue
        rel = (b - a) / abs(a) if a else float("inf")
        host = is_host_metric(key)
        if host and abs(rel) < threshold:
            continue
        sign = direction(key)
        moves.append({
            "key": key,
            "old": a,
            "new": b,
            "rel_change": round(rel, 4) if rel != float("inf") else None,
            "host": host,
            "regression": bool(sign) and (rel > 0) != (sign > 0),
        })
    return moves


def _load_generation(path: pathlib.Path) -> Dict[str, Dict]:
    files: Dict[str, Dict] = {}
    for bench in sorted(path.glob("BENCH_*.json")):
        files[bench.name] = json.loads(bench.read_text())
    return files


def diff_generations(old_dir, new_dir, *,
                     threshold: float = 0.05) -> Dict:
    """Diff every ``BENCH_*.json`` present in both directories."""
    old_path, new_path = pathlib.Path(old_dir), pathlib.Path(new_dir)
    old_gen = _load_generation(old_path)
    new_gen = _load_generation(new_path)
    if not old_gen:
        raise ValueError(f"{old_path}: no BENCH_*.json artifacts found")
    files: Dict[str, Dict] = {}
    for name in sorted(set(old_gen) & set(new_gen)):
        old_metrics = collect_metrics(old_gen[name])
        new_metrics = collect_metrics(new_gen[name])
        moves = diff_metrics(old_metrics, new_metrics, threshold=threshold)
        files[name] = {
            "metrics_compared": len(set(old_metrics) & set(new_metrics)),
            "moves": moves,
            "regressions": sum(1 for m in moves if m["regression"]),
        }
    return {
        "schema": TREND_SCHEMA,
        "old": str(old_path),
        "new": str(new_path),
        "threshold": threshold,
        "files": files,
        "only_in_old": sorted(set(old_gen) - set(new_gen)),
        "only_in_new": sorted(set(new_gen) - set(old_gen)),
    }


def _fmt(value: float) -> str:
    return f"{value:g}" if abs(value) < 1e6 else f"{value:.3e}"


def render_trend(payload: Dict, *, top: int = 10) -> str:
    """Terminal/job-summary report of a generation diff."""
    lines: List[str] = [
        f"bench trend: {payload['old']} -> {payload['new']} "
        f"(host threshold {payload['threshold']:.0%})"
    ]
    total_regressions = 0
    for name, entry in payload["files"].items():
        moves = entry["moves"]
        total_regressions += entry["regressions"]
        if not moves:
            lines.append(f"\n{name}: no movement "
                         f"({entry['metrics_compared']} metrics compared)")
            continue
        lines.append(f"\n{name}: {len(moves)} metric(s) moved, "
                     f"{entry['regressions']} regression(s)")
        ranked = sorted(
            moves, key=lambda m: (not m["regression"],
                                  -abs(m["rel_change"] or float("inf"))))
        for move in ranked[:top]:
            rel = move["rel_change"]
            pct = f"{rel:+.1%}" if rel is not None else "new-from-zero"
            tag = ("REGRESSION" if move["regression"]
                   else "improved" if direction(move["key"]) else "drift")
            kind = "host" if move["host"] else "model"
            lines.append(f"  {tag:10s} [{kind}]  {move['key']}: "
                         f"{_fmt(move['old'])} -> {_fmt(move['new'])} "
                         f"({pct})")
        if len(moves) > top:
            lines.append(f"  ... {len(moves) - top} more")
    for name in payload["only_in_old"]:
        lines.append(f"\n{name}: only in old generation")
    for name in payload["only_in_new"]:
        lines.append(f"\n{name}: only in new generation")
    lines.append(f"\ntotal regressions: {total_regressions}")
    return "\n".join(lines)
