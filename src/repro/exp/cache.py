"""Content-addressed result cache for experiment cells.

A cache entry is keyed by the SHA-256 of (cell spec, code version):
the cell spec pins workload + parameters, and the code version — a
hash over every ``repro`` source file — conservatively invalidates the
whole cache when *any* simulator code changes.  Entries store the
``SimResult.to_dict`` payload plus the wall-clock the original
execution cost, so warm re-runs are free *and* can still report an
honest serial-equivalent time.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Optional

from ..sim.results import SimResult
from .cells import Cell

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """SHA-256 over the contents of every ``repro`` source file.

    Computed once per process.  Any edit anywhere in the package busts
    the cache — coarse, but guarantees a stale simulator can never
    masquerade as fresh results.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        root = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


@dataclass
class CachedResult:
    result: SimResult
    exec_seconds: float


class ResultCache:
    """Directory of ``<sha256>.json`` entries; misses cost nothing."""

    def __init__(self, root, *, version: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version or code_version()
        self.hits = 0
        self.misses = 0
        self.invalid = 0
        self.stores = 0

    def key_for(self, cell: Cell) -> str:
        digest = hashlib.sha256()
        digest.update(self.version.encode())
        digest.update(b"\0")
        digest.update(cell.spec_json().encode())
        return digest.hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, cell: Cell) -> Optional[CachedResult]:
        path = self._path(self.key_for(cell))
        try:
            payload = json.loads(path.read_text())
            result = SimResult.from_dict(payload["result"])
            entry = CachedResult(result,
                                 float(payload.get("exec_seconds", 0.0)))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / stale-schema entry: treat as a miss and let the
            # fresh store overwrite it.
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, cell: Cell, result: SimResult,
              exec_seconds: float) -> None:
        payload = {
            "schema": "repro-cache/1",
            "code_version": self.version,
            "cell": cell.spec(),
            "exec_seconds": exec_seconds,
            "result": result.to_dict(),
        }
        path = self._path(self.key_for(cell))
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        self.stores += 1

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "stores": self.stores,
            "hit_rate": self.hits / total if total else 0.0,
        }
