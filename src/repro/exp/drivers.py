"""Engine-driven drivers for every paper figure/table.

Each driver builds its (workload x configuration) grid, resolves it
through the :class:`~repro.exp.engine.ExperimentEngine` it is handed
(cells it doesn't need the engine for — pure enumeration or litmus
sweeps — run inline), and returns a :class:`BenchReport`: the text
table (identical to what ``pytest benchmarks/`` historically wrote to
``benchmarks/out/<name>.txt``) plus machine-readable row dicts for
``BENCH_<name>.json``.

Shape *assertions* (the paper claims) stay in ``benchmarks/bench_*.py``
— drivers only generate, so ``repro bench --quick`` can run reduced
configurations without tripping full-scale expectations.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis import experiments
from ..analysis.tables import format_table
from ..common.params import NetworkParams, table6_system
from ..common.types import CommitMode
from .cells import Cell
from .engine import EngineRun, ExperimentEngine


@dataclass
class BenchConfig:
    """Knobs shared by all drivers (mirrors ``benchmarks/conftest``)."""

    benches: Tuple[str, ...] = ()
    cores: int = 16
    scale: float = 2.0
    #: Restrict backend-matrix drivers (conformance) to one coherence
    #: backend; ``None`` runs the full :data:`BACKEND_MATRIX`.
    backend: Optional[str] = None

    def bench_list(self, default: Sequence[str]) -> Tuple[str, ...]:
        return tuple(self.benches) if self.benches else tuple(default)


@dataclass
class BenchReport:
    """One driver's output: human table + machine rows + run stats."""

    name: str
    txt_name: str
    text: str
    rows: List[Dict] = field(default_factory=list)
    totals: Dict = field(default_factory=dict)
    engine_run: Optional[EngineRun] = None

    def finish_totals(self) -> None:
        if self.engine_run is not None:
            results = self.engine_run.results()
            self.totals.setdefault("cells", len(results))
            self.totals.setdefault(
                "simulated_cycles",
                sum(r.cycles for r in results.values()))
        self.totals.setdefault("rows", len(self.rows))


def _grid_report(name: str, txt_name: str, cfg: BenchConfig,
                 engine: ExperimentEngine, cells: List[Cell],
                 assemble) -> BenchReport:
    run = engine.run(cells)
    text, rows = assemble(cells, run.results())
    report = BenchReport(name=name, txt_name=txt_name, text=text,
                         rows=rows, engine_run=run)
    report.finish_totals()
    return report


# ------------------------------------------------------------------ Figure 8
def fig8_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    cells = experiments.fig8_cells(
        cfg.bench_list(experiments.DEFAULT_BENCHES),
        num_cores=cfg.cores, scale=cfg.scale)

    def assemble(cells, results):
        rows = experiments.fig8_assemble(cells, results)
        return experiments.fig8_table(rows), [dataclasses.asdict(r)
                                              for r in rows]

    return _grid_report("fig8", "fig8_writersblock_rates", cfg, engine,
                        cells, assemble)


# ------------------------------------------------------------------ Figure 9
def fig9_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    cells = experiments.fig9_cells(
        cfg.bench_list(experiments.DEFAULT_BENCHES),
        num_cores=cfg.cores, scale=cfg.scale)

    def assemble(cells, results):
        rows = experiments.fig9_assemble(cells, results)
        return experiments.fig9_table(rows), [dataclasses.asdict(r)
                                              for r in rows]

    return _grid_report("fig9", "fig9_overheads", cfg, engine, cells,
                        assemble)


# ----------------------------------------------------------------- Figure 10
def fig10_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    cells = experiments.fig10_cells(
        cfg.bench_list(experiments.DEFAULT_BENCHES),
        num_cores=cfg.cores, scale=cfg.scale)

    def assemble(cells, results):
        rows = experiments.fig10_assemble(cells, results)
        headline = experiments.fig10_headline(rows)
        text = "\n\n".join([
            experiments.fig10_time_table(rows),
            experiments.fig10_stall_table(rows),
            "Headline (§5.2): "
            f"OoO+WB over in-order: avg "
            f"{headline['avg_improvement_over_inorder_pct']:.1f}% "
            f"(max {headline['max_improvement_over_inorder_pct']:.1f}%); "
            f"over safe OoO: avg "
            f"{headline['avg_improvement_over_ooo_pct']:.1f}% "
            f"(max {headline['max_improvement_over_ooo_pct']:.1f}%)",
        ])
        row_dicts = []
        for row in rows:
            row_dicts.append({
                "workload": row.workload,
                "cycles": {m.value: row.results[m].cycles
                           for m in experiments.FIG10_MODES},
                "norm_time": {m.value: row.norm_time(m)
                              for m in experiments.FIG10_MODES},
                "stalls": {m.value: {reason: row.results[m].stall_fraction(reason)
                                     for reason in ("sq", "lq", "rob", "other")}
                           for m in experiments.FIG10_MODES},
                "consistency_squashes": {
                    m.value: row.results[m].consistency_squashes
                    for m in experiments.FIG10_MODES},
            })
        row_dicts.append({"headline": headline})
        return text, row_dicts

    return _grid_report("fig10", "fig10_ooo_commit", cfg, engine, cells,
                        assemble)


# --------------------------------------------------------- Tables 1 and 3
#: Pinned seed for the random schedule perturbations appended to every
#: litmus sweep — byte-stable BENCH output by construction.
TABLE1_SWEEP_SEED = 2017
TABLE1_SWEEP_PERTURB = 2


def table1_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    """Litmus sweeps are sub-second cells; they run inline."""
    import random

    from ..consistency.litmus import standard_suite, sweep_litmus

    modes = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB)
    delays = ((0, 0), (0, 40), (40, 0), (0, 80), (20, 60))
    lines = []
    rows = []
    for test in standard_suite():
        cores = 16 if len(test.threads) > 4 else 4
        for mode in modes:
            params = table6_system("SLM", num_cores=cores, commit_mode=mode)
            outcomes = sweep_litmus(test, params, delays=delays,
                                    perturb=TABLE1_SWEEP_PERTURB,
                                    rng=random.Random(TABLE1_SWEEP_SEED))
            forbidden = sum(o.forbidden_hit for o in outcomes)
            violations = sum(o.checker_violation is not None
                             for o in outcomes)
            sample = outcomes[0].registers
            lines.append(f"{test.name:24s} {mode.value:9s} "
                         f"clean over {len(outcomes)} timings; "
                         f"e.g. {sample}")
            rows.append({"test": test.name, "mode": mode.value,
                         "timings": len(outcomes), "forbidden": forbidden,
                         "checker_violations": violations,
                         "sample_registers": dict(sample)})
    report = BenchReport(name="table1", txt_name="table1_table3_litmus",
                         text="\n".join(lines), rows=rows)
    report.finish_totals()
    return report


# ------------------------------------------------------------------- Table 2
def table2_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    from ..consistency.litmus import (SimpleOp, enumerate_interleavings,
                                      legal_tso_outcomes)

    reader = [SimpleOp(0, "ld", "y"), SimpleOp(0, "ld", "x")]
    writer = [SimpleOp(1, "st", "x"), SimpleOp(1, "st", "y")]
    interleavings = enumerate_interleavings([reader, writer])
    outcomes = legal_tso_outcomes([reader, writer])
    lines = [f"{len(interleavings)} interleavings, "
             f"{len(outcomes)} distinct outcomes:"]
    rows = []
    for i, (order, loads) in enumerate(interleavings, start=1):
        ops = " -> ".join(f"t{op.thread}:{op.kind} {op.var}" for op in order)
        lines.append(f"({i}) {ops}   loads={loads}")
        rows.append({"interleaving": i, "order": ops, "loads": dict(loads)})
    pairs = sorted({(o["t0:ld y"], o["t0:ld x"]) for o in outcomes})
    lines.append(f"legal (ld y, ld x) outcomes: {pairs}")
    rows.append({"legal_outcomes": [list(p) for p in pairs]})
    report = BenchReport(name="table2", txt_name="table2_interleavings",
                         text="\n".join(lines), rows=rows)
    report.finish_totals()
    return report


# ------------------------------------------------------------------- Table 6
def table6_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    from ..common.params import CORE_CLASSES

    rows = []
    for name, core in CORE_CLASSES.items():
        rows.append({"class": name, "issue_width": core.issue_width,
                     "iq": core.iq_entries, "rob": core.rob_entries,
                     "lq": core.lq_entries, "sq": core.sq_entries,
                     "sb": core.sb_entries, "ldt": core.ldt_entries})
    report = BenchReport(name="table6", txt_name="table6_config",
                         text=experiments.table6_text(), rows=rows)
    report.finish_totals()
    return report


# ------------------------------------------------------------ LQ-depth sweep
SWEEP_LQ_SIZES = (6, 10, 16, 24, 48)
SWEEP_LQ_BENCH = "streamcluster"


def sweep_lq_driver(cfg: BenchConfig, engine: ExperimentEngine
                    ) -> BenchReport:
    modes = (CommitMode.IN_ORDER, CommitMode.OOO_WB)
    cells = []
    for lq in SWEEP_LQ_SIZES:
        for mode in modes:
            params = table6_system("NHM", num_cores=cfg.cores,
                                   commit_mode=mode)
            core = dataclasses.replace(params.core, lq_entries=lq)
            params = dataclasses.replace(params, core=core)
            cells.append(Cell(key=f"sweep_lq/{lq}/{mode.value}",
                              workload=SWEEP_LQ_BENCH,
                              num_threads=cfg.cores, scale=cfg.scale,
                              params=params))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for lq in SWEEP_LQ_SIZES:
            inorder = results[f"sweep_lq/{lq}/{CommitMode.IN_ORDER.value}"]
            wb = results[f"sweep_lq/{lq}/{CommitMode.OOO_WB.value}"]
            advantage = (100.0 * (inorder.cycles - wb.cycles)
                         / inorder.cycles)
            table_rows.append((lq, inorder.cycles, wb.cycles, advantage))
            rows.append({"lq_entries": lq, "inorder_cycles": inorder.cycles,
                         "ooo_wb_cycles": wb.cycles,
                         "wb_advantage_pct": advantage})
        text = format_table(
            ["LQ entries", "in-order cycles", "OoO+WB cycles",
             "WB advantage %"],
            table_rows,
            title=f"LQ-depth sensitivity ({SWEEP_LQ_BENCH}, NHM-class ROB)")
        return text, rows

    return _grid_report("sweep_lq", "sweep_lq", cfg, engine, cells,
                        assemble)


# ------------------------------------------------------------ ECL in-order
ECL_BENCHES = ("fft", "barnes", "freqmine", "streamcluster", "swaptions")


def ecl_inorder_driver(cfg: BenchConfig, engine: ExperimentEngine
                       ) -> BenchReport:
    variants = (("inorder", False), ("inorder-ecl", True))
    cells = []
    for bench in ECL_BENCHES:
        for core_type, wb in variants:
            params = table6_system("SLM", num_cores=cfg.cores)
            params = dataclasses.replace(params, core_type=core_type,
                                         writers_block=wb)
            cells.append(Cell(key=f"ecl/{bench}/{core_type}",
                              workload=bench, num_threads=cfg.cores,
                              scale=cfg.scale, params=params))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for bench in ECL_BENCHES:
            inorder = results[f"ecl/{bench}/inorder"]
            ecl = results[f"ecl/{bench}/inorder-ecl"]
            speedup = inorder.cycles / ecl.cycles
            table_rows.append((bench, inorder.cycles, ecl.cycles, speedup))
            rows.append({"workload": bench,
                         "inorder_cycles": inorder.cycles,
                         "ecl_cycles": ecl.cycles, "speedup": speedup})
        text = format_table(
            ["workload", "blocking in-order", "ECL + WritersBlock",
             "speedup"],
            table_rows,
            title="§1 use case: Early Commit of Loads on in-order cores")
        return text, rows

    return _grid_report("ecl_inorder", "ecl_inorder", cfg, engine, cells,
                        assemble)


# --------------------------------------------------------- LDT capacity
LDT_BENCHES = ("freqmine", "streamcluster")
LDT_SIZES = (1, 2, 8, 32, 128)


def ablation_ldt_driver(cfg: BenchConfig, engine: ExperimentEngine
                        ) -> BenchReport:
    cells = []
    for bench in LDT_BENCHES:
        for size in LDT_SIZES:
            params = table6_system("SLM", num_cores=cfg.cores,
                                   commit_mode=CommitMode.OOO_WB)
            core = dataclasses.replace(params.core, ldt_entries=size)
            params = dataclasses.replace(params, core=core)
            cells.append(Cell(key=f"ldt/{bench}/{size}", workload=bench,
                              num_threads=cfg.cores, scale=cfg.scale,
                              params=params))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for bench in LDT_BENCHES:
            by_size = {size: results[f"ldt/{bench}/{size}"]
                       for size in LDT_SIZES}
            for size in LDT_SIZES:
                result = by_size[size]
                ratio = result.cycles / by_size[32].cycles
                exports = result.counter("core.ldt_exports")
                table_rows.append((bench, size, result.cycles, exports,
                                   ratio))
                rows.append({"workload": bench, "ldt_entries": size,
                             "cycles": result.cycles,
                             "ldt_exports": exports,
                             "time_vs_ldt32": ratio})
        text = format_table(
            ["workload", "LDT entries", "cycles", "lockdown exports",
             "time vs LDT=32"],
            table_rows, title="Ablation §4.2: LDT capacity sweep")
        return text, rows

    return _grid_report("ablation_ldt", "ablation_ldt", cfg, engine, cells,
                        assemble)


# --------------------------------------------------- eviction policy
EVICTION_BENCHES = ("fft", "ocean_ncp", "streamcluster", "barnes")


def ablation_evictions_driver(cfg: BenchConfig, engine: ExperimentEngine
                              ) -> BenchReport:
    cells = []
    for bench in EVICTION_BENCHES:
        for silent in (True, False):
            params = table6_system("SLM", num_cores=cfg.cores,
                                   commit_mode=CommitMode.OOO)
            # Shrink the private hierarchy so capacity evictions of
            # shared lines actually happen (the full-size 128KB L2
            # never evicts under these working sets).
            cache = dataclasses.replace(params.cache,
                                        l1_sets=4, l1_ways=4,
                                        l2_sets=8, l2_ways=4,
                                        silent_shared_evictions=silent)
            params = dataclasses.replace(params, cache=cache)
            variant = "silent" if silent else "nonsilent"
            cells.append(Cell(key=f"evict/{bench}/{variant}",
                              workload=bench, num_threads=cfg.cores,
                              scale=cfg.scale, params=params))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for bench in EVICTION_BENCHES:
            silent = results[f"evict/{bench}/silent"]
            loud = results[f"evict/{bench}/nonsilent"]
            ratio = (silent.network_flit_hops
                     / max(loud.network_flit_hops, 1))
            table_rows.append((bench, ratio, silent.consistency_squashes,
                               loud.consistency_squashes))
            rows.append({"workload": bench,
                         "traffic_silent_over_nonsilent": ratio,
                         "squashes_silent": silent.consistency_squashes,
                         "squashes_nonsilent": loud.consistency_squashes})
        text = format_table(
            ["workload", "traffic silent/non-silent",
             "squashes (silent)", "squashes (non-silent)"],
            table_rows, title="Ablation §3.8: shared-line eviction policy")
        return text, rows

    return _grid_report("ablation_evictions", "ablation_evictions", cfg,
                        engine, cells, assemble)


# ---------------------------------------------------- network contention
NETWORK_BENCHES = ("fft", "streamcluster", "radix")


def ablation_network_driver(cfg: BenchConfig, engine: ExperimentEngine
                            ) -> BenchReport:
    cells = []
    for bench in NETWORK_BENCHES:
        for contention in (True, False):
            for wb in (False, True):
                params = table6_system(
                    "SLM", num_cores=cfg.cores,
                    commit_mode=CommitMode.OOO_WB if wb else CommitMode.OOO)
                params = dataclasses.replace(
                    params,
                    network=NetworkParams(model_contention=contention))
                variant = (f"{'contended' if contention else 'free'}/"
                           f"{'wb' if wb else 'ooo'}")
                cells.append(Cell(key=f"net/{bench}/{variant}",
                                  workload=bench, num_threads=cfg.cores,
                                  scale=cfg.scale, params=params))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for bench in NETWORK_BENCHES:
            cycles = {(contention, wb):
                      results[f"net/{bench}/"
                              f"{'contended' if contention else 'free'}/"
                              f"{'wb' if wb else 'ooo'}"].cycles
                      for contention in (True, False)
                      for wb in (False, True)}
            slowdown = cycles[(True, True)] / cycles[(False, True)]
            wb_contended = cycles[(True, True)] / cycles[(True, False)]
            wb_free = cycles[(False, True)] / cycles[(False, False)]
            table_rows.append((bench, slowdown, wb_contended, wb_free))
            rows.append({"workload": bench,
                         "contention_slowdown": slowdown,
                         "wb_over_ooo_contended": wb_contended,
                         "wb_over_ooo_free": wb_free})
        text = format_table(
            ["workload", "contention slowdown",
             "WB/OoO (contended)", "WB/OoO (contention-free)"],
            table_rows, title="Ablation: mesh link-contention model")
        return text, rows

    return _grid_report("ablation_network", "ablation_network", cfg, engine,
                        cells, assemble)


# ------------------------------------------------------- stall blame
#: Directed scenarios are tiny and need exact core counts, so the blame
#: grid ignores ``cfg.cores``/``cfg.scale`` — quick and full runs agree.
BLAME_SCENARIOS = ("mp", "sos")
BLAME_MODES = (CommitMode.OOO, CommitMode.OOO_WB)


def blame_driver(cfg: BenchConfig, engine: ExperimentEngine) -> BenchReport:
    """Causal stall attribution grid: scenarios x (ablated, WritersBlock).

    Every cell runs observed (``Cell.observe``), so its result carries a
    ``repro-blame/1`` payload; the report aggregates the per-cause stall
    budgets and the WritersBlock-on vs. ablated deltas per scenario.
    """
    from ..obs.scenarios import scenario_traces

    cells = []
    for scenario in BLAME_SCENARIOS:
        for mode in BLAME_MODES:
            params = table6_system("SLM", num_cores=4, commit_mode=mode)
            cells.append(Cell.from_traces(
                f"blame/{scenario}/{mode.value}", scenario,
                scenario_traces(scenario), params, observe=True))

    def assemble(cells, results):
        table_rows = []
        rows = []
        cause_totals: Dict[str, int] = {}
        for scenario in BLAME_SCENARIOS:
            per_mode = {}
            for mode in BLAME_MODES:
                result = results[f"blame/{scenario}/{mode.value}"]
                blame = result.blame or {}
                ws = blame.get("write_stalls", {})
                cs = blame.get("commit_stalls", {})
                causes = {name: entry["cycles"]
                          for name, entry in ws.get("causes", {}).items()}
                for name, count in causes.items():
                    cause_totals[name] = cause_totals.get(name, 0) + count
                tree = blame.get("blame_tree", [])
                top = tree[0]["cause"] if tree else "-"
                per_mode[mode] = {"cycles": result.cycles,
                                  "write": ws.get("total_cycles", 0),
                                  "commit": cs.get("total_cycles", 0)}
                table_rows.append((
                    scenario, mode.value, result.cycles,
                    ws.get("total_cycles", 0),
                    f"{ws.get('coverage', 1.0):.0%}",
                    cs.get("total_cycles", 0),
                    f"{cs.get('coverage', 1.0):.0%}", top))
                rows.append({"scenario": scenario, "mode": mode.value,
                             "cycles": result.cycles,
                             "write_stalls": ws, "commit_stalls": cs,
                             "top_blame": top,
                             "write_stall_causes": causes})
            wb = per_mode[CommitMode.OOO_WB]
            ablated = per_mode[CommitMode.OOO]
            rows.append({"scenario": scenario, "mode": "delta",
                         "cycles_delta": wb["cycles"] - ablated["cycles"],
                         "write_stall_delta": wb["write"] - ablated["write"],
                         "commit_stall_delta":
                             wb["commit"] - ablated["commit"]})
        text_parts = [format_table(
            ["scenario", "mode", "cycles", "write stalls", "attributed",
             "commit stalls", "attributed", "top blame"],
            table_rows,
            title="Causal stall attribution (directed scenarios)")]
        if cause_totals:
            from ..analysis.charts import hbar_chart
            text_parts.append(hbar_chart(
                sorted(cause_totals.items(), key=lambda kv: -kv[1]),
                title="write-stall cycles by root cause (all cells)",
                unit=" cyc"))
        return "\n\n".join(text_parts), rows

    report = _grid_report("blame", "blame_stalls", cfg, engine, cells,
                          assemble)
    report.totals["write_stall_cause_cycles"] = {
        name: count for name, count in sorted(
            (report.rows and _cause_totals(report.rows) or {}).items())}
    return report


def _cause_totals(rows: List[Dict]) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for row in rows:
        for name, count in row.get("write_stall_causes", {}).items():
            totals[name] = totals.get(name, 0) + count
    return totals


# ------------------------------------------------------- unsafe commit
def ablation_unsafe_driver(cfg: BenchConfig, engine: ExperimentEngine
                           ) -> BenchReport:
    from ..consistency.litmus import run_litmus, table1_test

    delay_grid = [(d0, d1) for d0 in (0, 20, 40) for d1 in (0, 30, 60, 90)]
    test = table1_test()
    lines = []
    rows = []
    for mode in (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB,
                 CommitMode.OOO_UNSAFE):
        params = table6_system("SLM", num_cores=4, commit_mode=mode)
        violations = 0
        forbidden = 0
        for delays in delay_grid:
            outcome = run_litmus(test, params, extra_delays=delays)
            violations += outcome.checker_violation is not None
            forbidden += outcome.forbidden_hit
        lines.append(f"{mode.value:10s} forbidden={forbidden:2d}/"
                     f"{len(delay_grid)} checker_violations={violations:2d}")
        rows.append({"mode": mode.value, "forbidden": forbidden,
                     "timings": len(delay_grid),
                     "checker_violations": violations})
    report = BenchReport(name="ablation_unsafe", txt_name="ablation_unsafe",
                         text="\n".join(lines), rows=rows)
    report.finish_totals()
    return report


# ------------------------------------------------------- TSO conformance
#: Pinned sweep seed / perturbation count for the conformance corpus.
CONFORM_SEED = 0
CONFORM_PERTURB = 2


#: Coherence backends the conformance driver compares (each under the
#: strongest commit mode it supports: OOO_WB for baseline, OOO for
#: rcp and tardis — ``repro.conform.runner.default_mode_for``).
BACKEND_MATRIX = ("baseline", "rcp", "tardis")


def conformance_driver(cfg: BenchConfig, engine: ExperimentEngine
                       ) -> BenchReport:
    """Three-way differential conformance, per coherence backend.

    Runs the committed corpus through the differential checker once per
    registered backend of :data:`BACKEND_MATRIX` — whatever the
    coherence protocol, the simulated executions must stay inside
    x86-TSO (sim ⊆ operational) — plus each backend's POR protocol
    explorations.  Sub-second cells, run inline (engine-independent, so
    the payload is trivially byte-stable across serial/pooled/
    cache-replay).  Quick configurations (``scale < 1``) run the
    deterministic tier-1 slice; ``REPRO_CONFORM_FULL=1`` forces the
    full corpus.
    """
    from ..conform.runner import (default_mode_for, full_requested,
                                  load_corpus, run_conformance, tier1_slice)

    matrix = (cfg.backend,) if cfg.backend else BACKEND_MATRIX
    tests = load_corpus()
    sliced = cfg.scale < 1.0 and not full_requested()
    if sliced:
        tests = tier1_slice(tests)
    lines = [f"{'backend':9s} {'family':8s} {'tests':>6s} {'sim-runs':>9s} "
             f"{'sim-outs':>9s} {'oper':>6s} {'axiom':>6s} {'viol':>5s}"]
    rows: List[Dict] = []
    backends: Dict[str, Dict] = {}
    ok = True
    violations = 0
    for backend in matrix:
        mode = default_mode_for(backend)
        result = run_conformance(tests, mode=mode, backend=backend,
                                 perturb=CONFORM_PERTURB,
                                 seed=CONFORM_SEED, explore=True)
        ok = ok and result.ok
        violations += len(result.violations)
        for row in result.family_rows():
            lines.append(f"{backend:9s} {row['family']:8s} "
                         f"{row['tests']:6d} {row['sim_runs']:9d} "
                         f"{row['sim_outcomes']:9d} {row['operational']:6d} "
                         f"{row['axiomatic']:6d} {row['violations']:5d}")
            rows.append({"backend": backend, **row})
        for name in sorted(result.explorations):
            info = result.explorations[name]
            lines.append(f"{backend:9s} explore/{name:13s} "
                         f"states={info['states']:<6d} "
                         f"paths={info['paths']:<4d} "
                         f"sleep_pruned={info['sleep_pruned']:<6d} "
                         f"ok={info['ok']}")
            rows.append({"backend": backend, "exploration": name, **info})
        backends[backend] = {
            "mode": mode.value,
            "tests": len(result.reports),
            "violations": len(result.violations),
            "sim_runs": sum(r.sim_runs for r in result.reports),
            "sim_outcomes": sum(len(r.sim_outcomes)
                                for r in result.reports),
            "explorations": len(result.explorations),
            "ok": result.ok,
        }
    comparison = "  ".join(
        f"{name}[{info['mode']}]: outcomes={info['sim_outcomes']} "
        f"viol={info['violations']}"
        for name, info in backends.items())
    lines.append(f"per-backend: {comparison}")
    lines.append(f"{len(tests)} tests x {len(matrix)} backends "
                 f"({'tier-1 slice' if sliced else 'full corpus'}), "
                 f"{violations} violations")
    report = BenchReport(name="conformance", txt_name="conformance",
                         text="\n".join(lines), rows=rows)
    report.totals["tests"] = len(tests)
    report.totals["backends"] = backends
    report.totals["violations"] = violations
    report.totals["ok"] = ok
    report.totals["sliced"] = sliced
    report.finish_totals()
    return report


#: Models compared by the matrix driver, weakest-last.
MODEL_MATRIX = ("sc", "tso", "rmo")


def models_driver(cfg: BenchConfig, engine: ExperimentEngine
                  ) -> BenchReport:
    """Memory-model matrix: the corpus under SC, x86-TSO and RMO.

    Runs the same test list through the model-parametric differential
    checker once per spec and tabulates, per family and model, how many
    tests are expect-forbidden and how many outcomes each backend
    enumerates.  The per-model outcome totals witness the strictness
    chain ``sc ⊆ tso ⊆ rmo`` end to end (asserted as a totals row).
    Engine-independent like the conformance driver; quick configurations
    run the tier-1 slice.
    """
    from ..conform.runner import (full_requested, load_corpus,
                                  run_conformance, tier1_slice)

    tests = load_corpus()
    sliced = cfg.scale < 1.0 and not full_requested()
    if sliced:
        tests = tier1_slice(tests)
    lines = [f"{'model':6s} {'tests':>6s} {'forbid':>7s} {'allow':>6s} "
             f"{'sim-runs':>9s} {'oper':>6s} {'axiom':>6s} {'viol':>5s}"]
    rows: List[Dict] = []
    oper_totals: Dict[str, int] = {}
    ok = True
    for model in MODEL_MATRIX:
        result = run_conformance(tests, model=model,
                                 perturb=CONFORM_PERTURB,
                                 seed=CONFORM_SEED, explore=False)
        ok = ok and result.ok
        forbid = sum(1 for r in result.reports if r.expect == "forbidden")
        allow = sum(1 for r in result.reports if r.expect == "allowed")
        sim_runs = sum(r.sim_runs for r in result.reports)
        oper = sum(r.operational_count for r in result.reports)
        axiom = sum(r.axiomatic_count for r in result.reports)
        oper_totals[model] = oper
        lines.append(f"{model:6s} {len(result.reports):6d} {forbid:7d} "
                     f"{allow:6d} {sim_runs:9d} {oper:6d} {axiom:6d} "
                     f"{len(result.violations):5d}")
        for row in result.family_rows():
            rows.append({"model": model, **row})
    chain = " <= ".join(f"{m}:{oper_totals[m]}" for m in MODEL_MATRIX)
    monotone = (oper_totals["sc"] <= oper_totals["tso"]
                <= oper_totals["rmo"])
    lines.append(f"operational outcome totals {chain} "
                 f"(monotone={monotone})")
    lines.append(f"{len(tests)} tests x {len(MODEL_MATRIX)} models "
                 f"({'tier-1 slice' if sliced else 'full corpus'})")
    report = BenchReport(name="models", txt_name="models",
                         text="\n".join(lines), rows=rows)
    report.totals["tests"] = len(tests)
    report.totals["models"] = list(MODEL_MATRIX)
    report.totals["operational_outcomes"] = oper_totals
    report.totals["monotone"] = monotone
    report.totals["ok"] = ok
    report.totals["sliced"] = sliced
    report.finish_totals()
    return report


#: Driver registry in canonical (report) order.
# ----------------------------------------------------------- telemetry
#: Directed scenarios sampled by the metrics driver.
METRICS_SCENARIOS = ("mp", "sos")
#: Commit modes sampled per target.
METRICS_MODES = (CommitMode.OOO, CommitMode.OOO_WB)
#: Headline gauges shown in the report table (full catalog in JSON).
METRICS_TABLE_GAUGES = ("mshr", "lq", "lockdowns", "dirq", "wb", "link")


def _litmus_slice() -> List[str]:
    """One corpus test per litmus family (stratified, deterministic)."""
    from ..conform.runner import load_corpus

    families: Dict[str, str] = {}
    for test in load_corpus():
        family = test.name.split("+")[0]
        if family not in families or test.name < families[family]:
            families[family] = test.name
    return [families[family] for family in sorted(families)]


def metrics_driver(cfg: BenchConfig, engine: ExperimentEngine
                   ) -> BenchReport:
    """Telemetry grid: sampled scenarios + litmus slice + scaling probe.

    Every cell runs with the metrics sampler (``Cell.sample``), so its
    result carries a ``repro-metrics/1`` payload; the table condenses
    each stream into per-gauge occupancy/saturation.  The scaling probe
    re-runs one workload at growing tile counts; only its deterministic
    columns appear in the text report — events/sec and other wall-clock
    numbers live in ``BENCH_metrics.json`` alone.
    """
    from ..analysis.charts import heatmap_chart
    from ..obs.metrics import DEFAULT_PERIOD, summarize_metrics, tile_series
    from ..obs.scenarios import LITMUS_PREFIX, scenario_traces
    from ..perf.scaling import run_scale_probe, scaling_report

    targets = [(name, scenario_traces(name)) for name in METRICS_SCENARIOS]
    targets += [(LITMUS_PREFIX + name,
                 scenario_traces(LITMUS_PREFIX + name))
                for name in _litmus_slice()]
    cells = []
    for target, traces in targets:
        for mode in METRICS_MODES:
            # 5/6-thread litmus families need the next mesh size up.
            cores = 4 if len(traces) <= 4 else 8
            params = table6_system("SLM", num_cores=cores,
                                   commit_mode=mode)
            cells.append(Cell.from_traces(
                f"metrics/{target}/{mode.value}", target, traces, params,
                sample=DEFAULT_PERIOD))

    def assemble(cells, results):
        table_rows = []
        rows = []
        for target, __ in targets:
            for mode in METRICS_MODES:
                result = results[f"metrics/{target}/{mode.value}"]
                summary = summarize_metrics(result.telemetry)
                gauges = summary["gauges"]
                hot_gauge, hot = max(
                    gauges.items(),
                    key=lambda item: (item[1]["saturation"],
                                      item[1]["mean"], item[0]))
                table_rows.append(
                    (target, mode.value, result.cycles, summary["samples"])
                    + tuple(f"{gauges[g]['mean']:.3f}"
                            for g in METRICS_TABLE_GAUGES)
                    + (f"{hot_gauge}:{hot['saturation']:.0%}",))
                rows.append({"target": target, "mode": mode.value,
                             "cycles": result.cycles,
                             "samples": summary["samples"],
                             "gauges": gauges})
        text_parts = [format_table(
            ["target", "mode", "cycles", "samples"]
            + [f"{g} mean" for g in METRICS_TABLE_GAUGES] + ["hottest"],
            table_rows,
            title="Sampled telemetry (mean occupancy per gauge)")]
        showcase = results["metrics/mp/ooo-wb"].telemetry
        text_parts.append(heatmap_chart(
            tile_series(showcase, "lockdowns"),
            title="mp/ooo-wb: active lockdowns per tile over time"))
        text_parts.append(heatmap_chart(
            tile_series(showcase, "mshr"),
            title="mp/ooo-wb: MSHR occupancy per tile over time"))
        return "\n\n".join(text_parts), rows

    report = _grid_report("metrics", "metrics", cfg, engine, cells,
                          assemble)
    tile_counts = tuple(t for t in (4, 8, 16) if t <= cfg.cores) or (4,)
    points = run_scale_probe(tile_counts, scale=min(cfg.scale, 0.5))
    report.totals["scale_probe"] = points
    report.text += "\n\n" + scaling_report(points)
    return report


# ----------------------------------------------------------- coverage
def coverage_driver(cfg: BenchConfig, engine: ExperimentEngine
                    ) -> BenchReport:
    """Transition coverage of the verification batteries, per backend.

    Collects one coverage map per backend of :data:`BACKEND_MATRIX`
    across the conformance corpus, the directed scenarios, the capacity
    sweep, the fuzz replay and the POR explorations, then reports
    covered/alphabet per component and names every uncovered transition.
    Deterministic and inline (engine-independent) like the conformance
    driver, so ``BENCH_coverage.json`` + ``coverage.txt`` are
    byte-stable across serial/pooled/cache-replay runs.  Quick
    configurations (``scale < 1``) use the tier-1 corpus slice;
    ``REPRO_CONFORM_FULL=1`` forces the full corpus.
    """
    from ..conform.coverage import collect_coverage
    from ..conform.runner import full_requested
    from ..obs.coverage import (CoverageMap, coverage_report,
                                render_coverage, render_coverage_diff)

    matrix = (cfg.backend,) if cfg.backend else BACKEND_MATRIX
    sliced = cfg.scale < 1.0 and not full_requested()
    cmap = CoverageMap()
    collection: Dict[str, Dict] = {}
    for backend in matrix:
        bmap, info = collect_coverage(backend, full=not sliced)
        cmap.merge(bmap)
        collection[backend] = info
    reports = {backend: coverage_report(cmap, backend)
               for backend in matrix}
    parts = [render_coverage(reports[backend]) for backend in matrix]
    for a, b in itertools.combinations(matrix, 2):
        parts.append(render_coverage_diff(reports[a], reports[b], cmap))
    parts.append(f"{'tier-1 slice' if sliced else 'full corpus'} x "
                 f"{len(matrix)} backends, "
                 f"{sum(len(cmap.transitions(b)) for b in matrix)} "
                 f"distinct transitions observed")
    report = BenchReport(name="coverage", txt_name="coverage",
                         text="\n".join(parts), rows=cmap.records())
    report.totals["backends"] = {
        backend: {key: reports[backend][key]
                  for key in ("alphabet", "covered", "coverage",
                              "observations", "components", "sources",
                              "uncovered", "undeclared")}
        for backend in matrix}
    report.totals["collection"] = collection
    report.totals["ok"] = not any(r["undeclared"] for r in reports.values())
    report.totals["sliced"] = sliced
    report.finish_totals()
    return report


DRIVERS: Dict[str, Callable[[BenchConfig, ExperimentEngine], BenchReport]] = {
    "fig8": fig8_driver,
    "fig9": fig9_driver,
    "fig10": fig10_driver,
    "table1": table1_driver,
    "table2": table2_driver,
    "table6": table6_driver,
    "sweep_lq": sweep_lq_driver,
    "ecl_inorder": ecl_inorder_driver,
    "ablation_ldt": ablation_ldt_driver,
    "ablation_evictions": ablation_evictions_driver,
    "ablation_network": ablation_network_driver,
    "ablation_unsafe": ablation_unsafe_driver,
    "blame": blame_driver,
    "conformance": conformance_driver,
    "models": models_driver,
    "metrics": metrics_driver,
    "coverage": coverage_driver,
}
