"""Grid cells: one named, hashable point of an experiment sweep.

A cell pins everything that determines a simulation's outcome: the
workload (by registry name, or as explicit per-core traces), the thread
count and scale fed to the generator, and the full ``SystemParams``
(which includes the commit mode).  ``spec()`` renders that as a
canonical JSON-serializable dict — the unit the result cache hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..common.params import SystemParams
from ..core.instruction import Instruction


def params_spec(params: SystemParams) -> Dict:
    """``SystemParams`` as a plain dict (same encoding as
    ``SimResult.to_dict``: the commit mode becomes its string value)."""
    payload = dataclasses.asdict(params)
    payload["commit_mode"] = params.commit_mode.value
    return payload


def _traces_fingerprint(traces) -> str:
    """Stable content hash of explicit per-core traces."""
    digest = hashlib.sha256()
    for trace in traces:
        for instr in trace:
            digest.update(repr(dataclasses.astuple(instr)).encode())
        digest.update(b"|")
    return digest.hexdigest()


@dataclass(frozen=True)
class Cell:
    """One point of a (workload x configuration) grid.

    ``workload`` names a generator in ``repro.workloads.ALL_WORKLOADS``
    built with (``num_threads``, ``scale``); alternatively ``traces``
    carries an explicit program (then ``workload`` is just a label and
    the cache keys on the trace contents instead).
    """

    key: str
    workload: str
    num_threads: int
    scale: float
    params: SystemParams
    check: bool = True
    traces: Optional[Tuple[Tuple[Instruction, ...], ...]] = None
    #: Run with the causal observer attached; the result then carries a
    #: ``repro-blame/1`` stall-attribution payload (``result.blame``).
    observe: bool = False
    #: Sampling period (cycles) for the telemetry sampler; 0 disables.
    #: Sampled cells carry a ``repro-metrics/1`` payload
    #: (``result.telemetry``).
    sample: int = 0

    @staticmethod
    def from_traces(key: str, label: str, traces, params: SystemParams, *,
                    check: bool = True, observe: bool = False,
                    sample: int = 0) -> "Cell":
        frozen = tuple(tuple(trace) for trace in traces)
        return Cell(key=key, workload=label, num_threads=len(frozen),
                    scale=0.0, params=params, check=check, traces=frozen,
                    observe=observe, sample=sample)

    def spec(self) -> Dict:
        """Canonical description of everything that determines the
        result (the cache-key payload; excludes the display ``key``)."""
        spec: Dict = {
            "workload": self.workload,
            "num_threads": self.num_threads,
            "scale": self.scale,
            "check": self.check,
            "observe": self.observe,
            "sample": self.sample,
            "params": params_spec(self.params),
        }
        if self.traces is not None:
            spec["traces_sha256"] = _traces_fingerprint(self.traces)
        return spec

    def spec_json(self) -> str:
        return json.dumps(self.spec(), sort_keys=True, separators=(",", ":"))


def cell_keys(cells) -> List[str]:
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate cell keys: {dupes}")
    return keys
