"""Parallel experiment engine: grids, workers, and result caching.

``Cell`` names one point of a (workload x SystemParams) grid;
``ExperimentEngine`` fans a list of cells out over multiprocessing
workers (with per-run timeout, retry, and graceful degradation to
serial); ``ResultCache`` makes unchanged cells free on re-runs by
content-addressing ``SimResult`` payloads; ``drivers``/``bench`` wire
every paper figure/table through the engine and emit machine-readable
``BENCH_<name>.json`` next to the text tables.
"""

from .cache import ResultCache, code_version
from .cells import Cell
from .engine import CellOutcome, EngineRun, ExperimentEngine, execute_cell

__all__ = [
    "Cell",
    "CellOutcome",
    "EngineRun",
    "ExperimentEngine",
    "ResultCache",
    "code_version",
    "execute_cell",
]
