"""The parallel experiment engine.

``ExperimentEngine.run(cells)`` resolves every cell of a grid to a
``SimResult``, in this order of preference:

1. **cache** — a ``ResultCache`` hit (free);
2. **pool** — a ``multiprocessing`` worker (``workers > 1``), guarded
   by a per-run timeout; timed-out or crashed cells are retried;
3. **serial** — in-process execution, which is also the graceful
   degradation path whenever a pool cannot be created (or keeps
   failing) and the default for ``workers <= 1``.

Determinism: every result — whichever path produced it — is normalized
through the ``SimResult.to_json`` round-trip before it is returned, so
a cell run in a worker, serially, or replayed from cache yields
byte-identical row data for a given seed.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sim.results import SimResult
from ..sim.runner import run_blamed, run_sampled, run_traces, run_workload
from .cache import ResultCache
from .cells import Cell, cell_keys


def execute_cell(cell: Cell) -> SimResult:
    """Run one cell's simulation (live, un-normalized result)."""
    if cell.traces is not None:
        traces = [list(trace) for trace in cell.traces]
    else:
        from ..workloads import ALL_WORKLOADS

        workload = ALL_WORKLOADS[cell.workload](num_threads=cell.num_threads,
                                                scale=cell.scale)
        traces = workload.traces
    if cell.observe:
        result, __ = run_blamed(traces, cell.params, check=cell.check)
        return result
    if cell.sample:
        return run_sampled(traces, cell.params, period=cell.sample,
                           check=cell.check)
    return run_traces(traces, cell.params, check=cell.check)


def _worker_run(cell: Cell):
    """Pool entry point: ship the normalized payload, not the object
    (the execution log can be huge and must not affect determinism),
    plus the worker-side execution time — queue wait must not count
    toward serial-equivalent cost."""
    t0 = time.perf_counter()
    payload = execute_cell(cell).to_json()
    return payload, time.perf_counter() - t0


def _normalized(payload: str) -> SimResult:
    return SimResult.from_dict(json.loads(payload))


@dataclass
class CellOutcome:
    """How one cell was resolved."""

    cell: Cell
    result: SimResult
    source: str  # "cache" | "pool" | "serial"
    #: Wall-clock the execution cost.  For cache hits this is the
    #: recorded cost of the *original* execution, so serial-equivalent
    #: time stays meaningful on warm runs.
    exec_seconds: float
    attempts: int


@dataclass
class EngineRun:
    """One ``ExperimentEngine.run`` invocation: outcomes + statistics."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    timeouts: int = 0
    retried: int = 0
    degraded: bool = False

    def results(self) -> Dict[str, SimResult]:
        return {o.cell.key: o.result for o in self.outcomes}

    @property
    def executed_seconds(self) -> float:
        """Serial-equivalent cost: sum of per-cell execution times
        (cache hits contribute their originally recorded cost)."""
        return sum(o.exec_seconds for o in self.outcomes)

    @property
    def speedup_vs_serial(self) -> Optional[float]:
        if self.wall_seconds <= 0:
            return None
        return self.executed_seconds / self.wall_seconds

    def source_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"cache": 0, "pool": 0, "serial": 0}
        for outcome in self.outcomes:
            counts[outcome.source] = counts.get(outcome.source, 0) + 1
        return counts

    def stats(self) -> dict:
        return {
            "cells": len(self.outcomes),
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "executed_seconds": self.executed_seconds,
            "speedup_vs_serial": self.speedup_vs_serial,
            "sources": self.source_counts(),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "timeouts": self.timeouts,
            "retried": self.retried,
            "degraded": self.degraded,
        }


class ExperimentEngine:
    """Fans experiment cells out over workers, with caching on top.

    ``workers <= 1`` runs serially (no processes).  ``timeout`` bounds
    each pooled run; a cell that times out or whose worker dies is
    retried — up to ``retries`` times in a fresh attempt, then once
    more serially in-process, which is also where deterministic
    simulator errors surface with a clean traceback.
    """

    def __init__(self, workers: int = 0, *, timeout: float = 600.0,
                 retries: int = 1, cache: Optional[ResultCache] = None
                 ) -> None:
        self.workers = max(int(workers), 0)
        self.timeout = timeout
        self.retries = max(int(retries), 0)
        self.cache = cache

    # --------------------------------------------------------------- public
    def run(self, cells: Sequence[Cell]) -> EngineRun:
        cell_keys(cells)  # reject duplicate keys up front
        start = time.perf_counter()
        run = EngineRun(workers=self.workers)
        resolved: Dict[str, CellOutcome] = {}

        pending: List[Cell] = []
        for cell in cells:
            hit = self.cache.load(cell) if self.cache else None
            if hit is not None:
                resolved[cell.key] = CellOutcome(
                    cell, hit.result, "cache", hit.exec_seconds, 0)
                run.cache_hits += 1
            else:
                pending.append(cell)
                if self.cache:
                    run.cache_misses += 1

        attempts = {cell.key: 0 for cell in pending}
        for round_no in range(self.retries + 1):
            if not pending:
                break
            if round_no > 0:
                run.retried += len(pending)
            if self.workers > 1 and len(pending) > 1:
                pending = self._run_pool(pending, attempts, resolved, run)
            else:
                pending = self._run_serial(pending, attempts, resolved, run)
        if pending:  # last resort: serial, so errors raise with context
            run.retried += len(pending)
            leftover = self._run_serial(pending, attempts, resolved, run)
            assert not leftover

        run.outcomes = [resolved[cell.key] for cell in cells]
        run.wall_seconds = time.perf_counter() - start
        return run

    # -------------------------------------------------------------- internal
    def _record(self, run: EngineRun, resolved, cell: Cell, payload: str,
                source: str, exec_seconds: float, attempts: int) -> None:
        result = _normalized(payload)
        resolved[cell.key] = CellOutcome(cell, result, source, exec_seconds,
                                         attempts)
        if self.cache:
            self.cache.store(cell, result, exec_seconds)

    def _run_serial(self, cells: List[Cell], attempts, resolved,
                    run: EngineRun) -> List[Cell]:
        for cell in cells:
            attempts[cell.key] += 1
            t0 = time.perf_counter()
            payload = execute_cell(cell).to_json()
            self._record(run, resolved, cell, payload, "serial",
                         time.perf_counter() - t0, attempts[cell.key])
        return []

    def _run_pool(self, cells: List[Cell], attempts, resolved,
                  run: EngineRun) -> List[Cell]:
        """One pool round; returns the cells that still need a run."""
        leftover: List[Cell] = []
        try:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(cells)))
        except (OSError, ImportError, ValueError):
            run.degraded = True
            return cells
        futures = {}
        broken = False
        try:
            for cell in cells:
                attempts[cell.key] += 1
                futures[pool.submit(_worker_run, cell)] = cell
            for future, cell in futures.items():
                try:
                    payload, exec_seconds = future.result(
                        timeout=self.timeout)
                except concurrent.futures.TimeoutError:
                    run.timeouts += 1
                    future.cancel()
                    leftover.append(cell)
                    continue
                except concurrent.futures.process.BrokenProcessPool:
                    broken = True
                    break
                except KeyboardInterrupt:
                    raise
                except Exception:
                    # Deterministic simulation error: the serial retry
                    # re-raises it with a clean traceback.
                    leftover.append(cell)
                    continue
                self._record(run, resolved, cell, payload, "pool",
                             exec_seconds, attempts[cell.key])
        finally:
            # Don't block on stragglers we already gave up on (their
            # watchdog-bounded simulations finish on their own).
            pool.shutdown(wait=not (leftover or broken),
                          cancel_futures=True)
        if broken:
            run.degraded = True
            done = set(resolved)
            leftover = [c for c in cells if c.key not in done]
        return leftover
