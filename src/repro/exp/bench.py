"""``repro bench``: drive every figure/table through the engine.

Writes, per driver, the text table ``benchmarks/out/<txt_name>.txt``
(byte-identical to what the pytest benchmark harness produces) and a
machine-readable ``BENCH_<name>.json`` alongside it:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "name": "fig10",
      "config": {"benches": [...], "cores": 16, "scale": 2.0},
      "rows": [...],
      "totals": {"cells": 27, "simulated_cycles": 123, "rows": 10},
      "wall_clock_seconds": 12.3,
      "executed_seconds": 45.6,
      "speedup_vs_serial": 3.7,
      "engine": {"workers": 4, "sources": {"cache": 0, "pool": 27,
                 "serial": 0}, "timeouts": 0, "retried": 0,
                 "degraded": false},
      "cache": {"hits": 0, "misses": 27, "hit_rate": 0.0},
      "code_version": "sha256..."
    }

``executed_seconds`` is the serial-equivalent cost (cache hits count
their originally recorded execution time), so ``speedup_vs_serial``
stays honest for both pooled and warm-cache runs.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .cache import ResultCache, code_version
from .drivers import DRIVERS, BenchConfig, BenchReport
from .engine import ExperimentEngine

#: Representative subset: covers every sharing-pattern family while
#: keeping a full run to minutes (``benchmarks/conftest`` re-exports
#: this; override with REPRO_BENCH_SET / ``--benches``).
DEFAULT_BENCH_SET = (
    "fft", "lu_ncb", "ocean_ncp", "radix", "barnes",
    "bodytrack", "freqmine", "streamcluster", "swaptions",
)

#: ``--quick`` smoke configuration: one workload per family, small
#: scale, 4 cores — minutes of serial-equivalent work, not hours.
QUICK_BENCH_SET = ("fft", "radix", "streamcluster", "swaptions")
QUICK_CORES = 4
QUICK_SCALE = 0.25


@dataclass
class BenchRun:
    report: BenchReport
    wall_seconds: float
    json_path: pathlib.Path
    txt_path: Optional[pathlib.Path]


def bench_payload(report: BenchReport, cfg: BenchConfig,
                  wall_seconds: float, workers: int) -> Dict:
    run = report.engine_run
    payload: Dict = {
        "schema": "repro-bench/1",
        "name": report.name,
        "config": {
            "benches": list(cfg.benches) if cfg.benches else
                       list(DEFAULT_BENCH_SET),
            "cores": cfg.cores,
            "scale": cfg.scale,
            "workers": workers,
        },
        "rows": report.rows,
        "totals": report.totals,
        "wall_clock_seconds": round(wall_seconds, 3),
        "executed_seconds":
            round(run.executed_seconds, 3) if run else None,
        "speedup_vs_serial":
            (round(run.speedup_vs_serial, 2)
             if run and run.speedup_vs_serial else None),
        "engine": ({
            "workers": run.workers,
            "sources": run.source_counts(),
            "timeouts": run.timeouts,
            "retried": run.retried,
            "degraded": run.degraded,
        } if run else None),
        "cache": ({"hits": run.cache_hits, "misses": run.cache_misses,
                   "hit_rate": (run.cache_hits
                                / max(run.cache_hits + run.cache_misses, 1))}
                  if run else None),
        "code_version": code_version(),
    }
    return payload


def run_bench(names: Sequence[str], cfg: BenchConfig, out_dir, *,
              workers: int = 0, timeout: float = 600.0,
              cache_dir=None, write_txt: bool = True,
              echo=None) -> List[BenchRun]:
    """Run the named drivers (all of them by default) and persist
    text tables + ``BENCH_<name>.json`` into *out_dir*."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(cache_dir) if cache_dir else None
    unknown = [n for n in names if n not in DRIVERS]
    if unknown:
        raise KeyError(f"unknown bench drivers {unknown}; "
                       f"choose from {sorted(DRIVERS)}")
    runs: List[BenchRun] = []
    for name in names:
        engine = ExperimentEngine(workers, timeout=timeout, cache=cache)
        start = time.perf_counter()
        report = DRIVERS[name](cfg, engine)
        wall = time.perf_counter() - start
        txt_path = None
        if write_txt:
            txt_path = out / f"{report.txt_name}.txt"
            txt_path.write_text(report.text + "\n")
        json_path = out / f"BENCH_{report.name}.json"
        payload = bench_payload(report, cfg, wall, workers)
        json_path.write_text(json.dumps(payload, indent=1, sort_keys=True)
                             + "\n")
        runs.append(BenchRun(report, wall, json_path, txt_path))
        if echo:
            stats = report.engine_run.stats() if report.engine_run else {}
            sources = stats.get("sources", {})
            echo(f"{name:20s} {wall:7.2f}s  "
                 f"cells={report.totals.get('cells', 0):3d}  "
                 f"cache={sources.get('cache', 0)}  "
                 f"pool={sources.get('pool', 0)}  "
                 f"serial={sources.get('serial', 0)}"
                 + (f"  speedup={stats['speedup_vs_serial']:.1f}x"
                    if stats.get("speedup_vs_serial") else ""))
    return runs
