"""Single-run performance: microbenchmark corpus, harness, baselines.

``repro perf`` runs the corpus in :mod:`repro.perf.corpus` through the
harness in :mod:`repro.perf.harness`, writing a machine-readable
``BENCH_perf.json`` (sims/sec, simulated cycles/sec, allocation peak)
plus a comparison against the committed baseline.  The same corpus
feeds the golden-determinism pins (``tests/sim/test_goldens.py``), so
"fast" and "behaviorally identical" are checked on the same programs.
"""

from .corpus import (GOLDEN_FUZZ_SEEDS, PerfCase, fuzz_cases, golden_cases,
                     litmus_cases, scenario_cases)
from .harness import (BENCH_SCHEMA, PerfResult, compare_payloads,
                      load_baseline, perf_payload, run_perf_suite)

__all__ = [
    "BENCH_SCHEMA",
    "GOLDEN_FUZZ_SEEDS",
    "PerfCase",
    "PerfResult",
    "compare_payloads",
    "fuzz_cases",
    "golden_cases",
    "litmus_cases",
    "load_baseline",
    "perf_payload",
    "run_perf_suite",
    "scenario_cases",
]
