"""Mesh-scaling probe: throughput and saturation vs tile count.

The ROADMAP's 16/32/64-tile push needs to know where the simulator (and
the modelled machine) first hits a wall as the mesh grows.  This probe
runs one workload at a series of tile counts with the telemetry sampler
attached and reports, per point:

* **host throughput** — events fired per second of wall clock and
  simulated cycles per second (an O(n^2) hot path shows up as a
  collapse of these curves long before profiles pinpoint it);
* **modelled saturation** — the per-gauge saturation/mean summary from
  the sampled stream, which localizes *what* fills up first (MSHRs,
  directory queues, mesh links) as the tile count rises.

Saturation numbers are deterministic; the ``*_per_sec`` fields are
wall-clock and belong in ``BENCH_metrics.json`` only, never in
byte-compared report text.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..common.params import table6_system
from ..common.types import CommitMode
from ..obs.metrics import DEFAULT_PERIOD, summarize_metrics
from ..sim.system import MulticoreSystem

#: Tile counts probed by default (``repro stats --scale``).
DEFAULT_TILE_COUNTS = (4, 8, 16)

#: Default workload for the probe: enough sharing to exercise the
#: directory and mesh without the all-pairs blowup of e.g. barnes.
DEFAULT_WORKLOAD = "fft"


def probe_point(tiles: int, *, workload: str = DEFAULT_WORKLOAD,
                scale: float = 0.5, core_class: str = "SLM",
                commit_mode: CommitMode = CommitMode.OOO_WB,
                backend: str = "baseline",
                period: int = DEFAULT_PERIOD) -> Dict:
    """Run one tile count; returns the scaling-point record."""
    from ..workloads import ALL_WORKLOADS

    params = table6_system(core_class, num_cores=tiles,
                           commit_mode=commit_mode, backend=backend)
    traces = ALL_WORKLOADS[workload](num_threads=tiles, scale=scale).traces
    system = MulticoreSystem(params)
    system.sample_metrics(period)
    system.load_program(traces)
    start = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - start
    summary = summarize_metrics(result.telemetry)
    saturation = {
        gauge: {"mean": row["mean"], "saturation": row["saturation"],
                "hottest_tile": row["hottest_tile"]}
        for gauge, row in summary["gauges"].items()
    }
    events_fired = system.events.fired_total
    return {
        "tiles": tiles,
        "workload": workload,
        "scale": scale,
        "mode": commit_mode.value,
        "backend": backend,
        "cycles": result.cycles,
        "committed": result.committed,
        "events_fired": events_fired,
        "messages": result.counter("network.messages"),
        "flit_hops": result.network_flit_hops,
        "samples": summary["samples"],
        "saturation": saturation,
        # Wall-clock block: meaningful on one machine, never diffed.
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(events_fired / max(wall, 1e-9), 1),
        "cycles_per_sec": round(result.cycles / max(wall, 1e-9), 1),
    }


def run_scale_probe(tile_counts: Sequence[int] = DEFAULT_TILE_COUNTS, *,
                    workload: str = DEFAULT_WORKLOAD, scale: float = 0.5,
                    core_class: str = "SLM",
                    commit_mode: CommitMode = CommitMode.OOO_WB,
                    backend: str = "baseline",
                    period: int = DEFAULT_PERIOD,
                    echo: Optional[Callable[[str], None]] = None
                    ) -> List[Dict]:
    """Probe every tile count; returns one record per point."""
    points: List[Dict] = []
    for tiles in tile_counts:
        point = probe_point(tiles, workload=workload, scale=scale,
                            core_class=core_class, commit_mode=commit_mode,
                            backend=backend, period=period)
        points.append(point)
        if echo:
            hot = max(point["saturation"].items(),
                      key=lambda item: item[1]["saturation"])
            echo(f"  {tiles:3d} tiles  {point['cycles']:8d} cyc  "
                 f"{point['events_per_sec']:12,.0f} ev/s  "
                 f"{point['cycles_per_sec']:10,.0f} cyc/s  "
                 f"hottest {hot[0]} sat={hot[1]['saturation']:.1%}")
    return points


def scaling_report(points: Sequence[Dict]) -> str:
    """Deterministic text table (no wall-clock columns) for reports."""
    lines = ["tiles  cycles    committed  messages  flit_hops  "
             "hottest-gauge  saturation"]
    for point in points:
        hot_gauge, hot = max(point["saturation"].items(),
                             key=lambda item: (item[1]["saturation"],
                                               item[1]["mean"], item[0]))
        lines.append(
            f"{point['tiles']:5d}  {point['cycles']:8d}  "
            f"{point['committed']:9d}  {point['messages']:8d}  "
            f"{point['flit_hops']:9d}  {hot_gauge:13s}  "
            f"{hot['saturation']:.4f}")
    return "\n".join(lines)
