"""Deterministic program corpus shared by `repro perf` and the goldens.

Every case is a fully deterministic ``(name, traces, params)`` triple:
the perf harness times them, and the golden-determinism test digests
their ``SimResult.to_json`` output.  Sharing one corpus means the
throughput we optimize and the behavior we pin are measured on the same
programs — a perf refactor cannot speed up one set while silently
changing the other.

Groups:

``litmus``
    the full standard litmus suite (paper Tables 1/3 + classic TSO
    shapes), each on its usual core count under ``ooo-wb``;
``mp`` / ``sos``
    the directed WritersBlock scenarios from :mod:`repro.obs.scenarios`
    (forced Nack episode; SoS tear-off reads during a blocked write);
``fuzz``
    seeded racy programs from
    :func:`repro.workloads.generators.random_shared_program`, lowered
    exactly like the differential-fuzz battery (commit mode and start
    skews rotate with the seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..common.params import SystemParams, table6_system
from ..common.types import CommitMode
from ..consistency.litmus import litmus_traces, standard_suite
from ..core.instruction import Instruction
from ..obs.scenarios import mp_nack, sos_bypass
from ..workloads.generators import random_shared_program
from ..workloads.trace import AddressSpace, TraceBuilder

#: Commit-mode / start-skew rotation for fuzz cases — mirrors
#: tests/integration/test_differential_fuzz.py so a perf number on the
#: fuzz group reflects the same mix the battery actually runs.
FUZZ_MODES = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB)
FUZZ_DELAYS = ((0, 0, 0), (0, 40, 0), (40, 0, 20), (15, 0, 55))

#: The fixed fuzz seeds pinned by the golden-determinism test.
GOLDEN_FUZZ_SEEDS: Tuple[int, ...] = tuple(range(25))


@dataclass(frozen=True)
class PerfCase:
    """One deterministic simulation: a name, traces, and parameters."""

    name: str
    traces: Tuple[Tuple[Instruction, ...], ...]
    params: SystemParams

    def trace_lists(self) -> List[List[Instruction]]:
        return [list(trace) for trace in self.traces]


def _case(name: str, traces, params: SystemParams) -> PerfCase:
    return PerfCase(name=name,
                    traces=tuple(tuple(trace) for trace in traces),
                    params=params)


def litmus_cases() -> List[PerfCase]:
    cases = []
    for test in standard_suite():
        cores = 16 if len(test.threads) > 4 else 4
        params = table6_system("SLM", num_cores=cores,
                               commit_mode=CommitMode.OOO_WB)
        space = AddressSpace(params.cache.line_bytes)
        traces, __, __ = litmus_traces(test, space)
        cases.append(_case(f"litmus/{test.name}", traces, params))
    return cases


def scenario_cases() -> List[PerfCase]:
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    return [
        _case("scenario/mp", mp_nack(), params),
        _case("scenario/sos", sos_bypass(), params),
    ]


def _lower_fuzz_program(program, delays: Sequence[int]):
    """Lower an abstract fuzz program to simulator traces (same shape
    as the differential-fuzz battery's lowering, minus result capture)."""
    space = AddressSpace()
    addr = {}
    traces = []
    for tid, ops in enumerate(program):
        t = TraceBuilder()
        if delays[tid % len(delays)]:
            t.compute(latency=delays[tid % len(delays)])
        for kind, loc, payload in ops:
            if loc not in addr:
                addr[loc] = space.new_var(loc)
            if kind == "ld":
                t.load(t.reg(), addr[loc])
            elif kind == "st":
                t.store(addr[loc], payload)
            else:  # tas
                t.tas(t.reg(), addr[loc])
        traces.append(t.build())
    return traces


def fuzz_case(seed: int) -> PerfCase:
    """The deterministic fuzz case for *seed* (mode/skew rotate with it)."""
    num_threads = 2 + seed % 2
    program = random_shared_program(seed, num_threads=num_threads)
    mode = FUZZ_MODES[seed % len(FUZZ_MODES)]
    delays = FUZZ_DELAYS[(seed // len(FUZZ_MODES)) % len(FUZZ_DELAYS)]
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    return _case(f"fuzz/{seed:04d}", _lower_fuzz_program(program, delays),
                 params)


def fuzz_cases(seeds: Sequence[int] = GOLDEN_FUZZ_SEEDS) -> List[PerfCase]:
    return [fuzz_case(seed) for seed in seeds]


def golden_cases() -> List[PerfCase]:
    """The determinism-pinned set: litmus + scenarios + 25 fuzz seeds."""
    return litmus_cases() + scenario_cases() + fuzz_cases(GOLDEN_FUZZ_SEEDS)
