"""Golden determinism digests over the perf corpus.

Each golden case is run to completion and its full ``SimResult`` JSON
(parameters, final cycle count, every counter and histogram) is hashed
with sha256.  The digests are committed in ``tests/goldens/`` and
asserted by ``tests/sim/test_goldens.py``: any change to cycle-level
behavior — however small — flips a digest.  This is the safety net
under hot-path refactors: an optimization that is truly mechanical
leaves every digest byte-identical.

Regenerate after a *deliberate* behavior change with::

    PYTHONPATH=src python -m pytest tests/sim/test_goldens.py --update-goldens

and review the resulting diff of ``tests/goldens/determinism.json``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, Iterable, Optional

from ..sim.system import MulticoreSystem
from .corpus import PerfCase, golden_cases


def digest_case(case: PerfCase) -> str:
    """sha256 over the case's complete ``SimResult.to_json`` output."""
    system = MulticoreSystem(case.params)
    system.load_program(case.trace_lists())
    result = system.run()
    return hashlib.sha256(result.to_json().encode("utf-8")).hexdigest()


def current_digests(cases: Optional[Iterable[PerfCase]] = None
                    ) -> Dict[str, str]:
    """Digest every golden case (or the given subset), keyed by name."""
    return {case.name: digest_case(case)
            for case in (golden_cases() if cases is None else cases)}


def load_digests(path) -> Dict[str, str]:
    return json.loads(pathlib.Path(path).read_text())


def save_digests(path, digests: Dict[str, str]) -> None:
    text = json.dumps(digests, indent=1, sort_keys=True) + "\n"
    pathlib.Path(path).write_text(text)
