"""Microbenchmark harness behind ``repro perf``.

Times the corpus groups (litmus battery, directed mp/sos scenarios,
fuzz-program replay) end to end — system construction included, since
that is what every experiment-engine cell pays — and reports:

* ``sims_per_sec``: completed simulations per second of host time (the
  headline number the perf-regression test gates on);
* ``sim_cycles_per_sec``: simulated cycles retired per host second;
* ``alloc_peak_kb``: peak ``tracemalloc`` memory of one instrumented
  rep (the allocation-pressure signal — message pooling and
  ``__slots__`` push it down).

Output is a machine-readable payload (``BENCH_perf.json``, schema
``repro-perf/1``) with an embedded comparison against a baseline
payload, usually the committed ``benchmarks/perf_baseline.json``.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.system import MulticoreSystem
from .corpus import (GOLDEN_FUZZ_SEEDS, PerfCase, fuzz_cases, litmus_cases,
                     scenario_cases)

BENCH_SCHEMA = "repro-perf/1"

#: Default benchmark groups, in report order.
DEFAULT_GROUPS = ("litmus", "mp", "sos", "fuzz")

#: Fuzz seeds replayed by the perf harness (first 16 of the golden set:
#: enough program diversity without dominating the suite runtime).
PERF_FUZZ_SEEDS = GOLDEN_FUZZ_SEEDS[:16]


def _group_cases(group: str) -> List[PerfCase]:
    if group == "litmus":
        return litmus_cases()
    if group == "mp":
        return [case for case in scenario_cases()
                if case.name == "scenario/mp"]
    if group == "sos":
        return [case for case in scenario_cases()
                if case.name == "scenario/sos"]
    if group == "fuzz":
        return fuzz_cases(PERF_FUZZ_SEEDS)
    raise KeyError(f"unknown perf group {group!r}; "
                   f"choose from {sorted(DEFAULT_GROUPS)}")


def run_case(case: PerfCase, *, observe: bool = False,
             sample: int = 0) -> int:
    """Build and run one corpus case; returns simulated cycles.

    ``observe=True`` attaches the span tracker and the causal-graph
    subscriber — the configuration the observability-overhead
    regression test prices against the bus-off default.  ``sample > 0``
    attaches the telemetry sampler at that period (the sampling-cost
    gate prices this one too).
    """
    system = MulticoreSystem(case.params)
    if observe:
        from ..obs.causal import CausalObserver

        system.observe()
        CausalObserver(system.bus)
    if sample:
        system.sample_metrics(sample)
    system.load_program(case.trace_lists())
    return system.run().cycles


@dataclass
class PerfResult:
    """Measured numbers for one benchmark group."""

    group: str
    cases: int
    reps: int
    wall_seconds: float
    sim_cycles: int  # per rep (deterministic, so identical every rep)
    alloc_peak_kb: float

    @property
    def runs(self) -> int:
        return self.cases * self.reps

    @property
    def sims_per_sec(self) -> float:
        return self.runs / max(self.wall_seconds, 1e-9)

    @property
    def sim_cycles_per_sec(self) -> float:
        return self.sim_cycles * self.reps / max(self.wall_seconds, 1e-9)

    def to_dict(self) -> Dict:
        return {
            "cases": self.cases,
            "reps": self.reps,
            "runs": self.runs,
            "wall_seconds": round(self.wall_seconds, 4),
            "sim_cycles": self.sim_cycles,
            "sims_per_sec": round(self.sims_per_sec, 2),
            "sim_cycles_per_sec": round(self.sim_cycles_per_sec, 1),
            "alloc_peak_kb": round(self.alloc_peak_kb, 1),
        }


def run_group(group: str, *, reps: int = 3, warmup: int = 1,
              observe: bool = False, sample: int = 0,
              echo: Optional[Callable[[str], None]] = None) -> PerfResult:
    """Benchmark one corpus group: warmup, timed reps, one traced rep."""
    cases = _group_cases(group)
    for __ in range(warmup):
        for case in cases:
            run_case(case, observe=observe, sample=sample)
    start = time.perf_counter()
    sim_cycles = 0
    for rep in range(reps):
        sim_cycles = sum(run_case(case, observe=observe, sample=sample)
                         for case in cases)
    wall = time.perf_counter() - start
    tracemalloc.start()
    for case in cases:
        run_case(case, observe=observe, sample=sample)
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    result = PerfResult(group=group, cases=len(cases), reps=reps,
                        wall_seconds=wall, sim_cycles=sim_cycles,
                        alloc_peak_kb=peak / 1024.0)
    if echo:
        echo(f"  {group:8s} {result.runs:4d} runs in {wall:6.2f}s  "
             f"{result.sims_per_sec:8.2f} sims/s  "
             f"{result.sim_cycles_per_sec:12,.0f} cyc/s  "
             f"peak {result.alloc_peak_kb:8.0f} KiB")
    return result


def run_perf_suite(groups: Sequence[str] = DEFAULT_GROUPS, *,
                   reps: int = 3, warmup: int = 1,
                   echo: Optional[Callable[[str], None]] = None
                   ) -> List[PerfResult]:
    return [run_group(group, reps=reps, warmup=warmup, echo=echo)
            for group in groups]


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def perf_payload(results: Sequence[PerfResult], *,
                 reps: int, warmup: int,
                 baseline: Optional[Dict] = None,
                 baseline_path: Optional[str] = None) -> Dict:
    """Assemble the ``BENCH_perf.json`` payload (schema repro-perf/1)."""
    from ..exp.cache import code_version

    payload: Dict = {
        "schema": BENCH_SCHEMA,
        "name": "perf",
        "config": {"groups": [r.group for r in results],
                   "reps": reps, "warmup": warmup},
        "benchmarks": {r.group: r.to_dict() for r in results},
        "suite": {
            "wall_seconds": round(sum(r.wall_seconds for r in results), 3),
            "runs": sum(r.runs for r in results),
            "sims_per_sec_geomean":
                round(_geomean([r.sims_per_sec for r in results]), 2),
        },
        "code_version": code_version(),
    }
    if baseline is not None:
        payload["comparison"] = compare_payloads(payload, baseline,
                                                 baseline_path=baseline_path)
    return payload


def compare_payloads(current: Dict, baseline: Dict, *,
                     baseline_path: Optional[str] = None) -> Dict:
    """Per-group and overall speedup of *current* over *baseline*.

    Speedups are sims/sec ratios (>1 means the current code is faster);
    the allocation ratio is peak-KiB current/baseline (<1 means leaner).
    """
    speedups: Dict[str, float] = {}
    alloc_ratio: Dict[str, float] = {}
    for group, bench in current.get("benchmarks", {}).items():
        base = baseline.get("benchmarks", {}).get(group)
        if not base or not base.get("sims_per_sec"):
            continue
        speedups[group] = round(bench["sims_per_sec"]
                                / base["sims_per_sec"], 3)
        if base.get("alloc_peak_kb"):
            alloc_ratio[group] = round(bench["alloc_peak_kb"]
                                       / base["alloc_peak_kb"], 3)
    return {
        "baseline_path": baseline_path,
        "baseline_code_version": baseline.get("code_version"),
        "sims_per_sec_speedup": speedups,
        "overall_speedup": round(_geomean(list(speedups.values())), 3),
        "alloc_peak_ratio": alloc_ratio,
    }


def load_baseline(path) -> Optional[Dict]:
    """Read a baseline payload; None if the file does not exist."""
    p = pathlib.Path(path)
    if not p.exists():
        return None
    payload = json.loads(p.read_text())
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{p}: not a {BENCH_SCHEMA} payload "
                         f"(schema={payload.get('schema')!r})")
    return payload
