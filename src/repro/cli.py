"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``                 available workloads and commit modes
``run WORKLOAD``         simulate one workload, print the summary
``compare WORKLOAD``     commit-mode comparison (Figure 10 style)
``litmus [NAME]``        run the litmus suite (or one test) on the simulator
``trace WORKLOAD``       observed run; export spans as a Chrome trace
``profile WORKLOAD``     wall-clock profile of the simulator itself
``blame TARGET``         causal stall attribution: blame tree, stall
                         budgets, critical path (live run or an
                         exported ``.jsonl`` trace)
``trace-diff A [B]``     align two runs by instruction identity and
                         report causal/stall-budget divergence
``fig8`` / ``fig9`` / ``fig10``   regenerate a paper figure
``table2`` / ``table6``           regenerate a paper table
``bench``                regenerate every figure/table through the
                         parallel experiment engine; writes the text
                         tables plus machine-readable ``BENCH_*.json``
                         to ``benchmarks/out/``
``conform``              memory-model conformance: run the litmus
                         corpus through the three-way differential
                         checker (simulator ⊆ operational ⊆ axiomatic)
                         under ``--model tso|sc|rmo`` plus the
                         POR-reduced protocol explorer; ``--replay``
                         re-executes an exported forbidden-outcome
                         witness with causal blame
``perf``                 single-run throughput microbenchmarks (litmus
                         battery, directed mp/sos scenarios, fuzz
                         replay); writes ``BENCH_perf.json`` and
                         compares against the committed baseline
``stats TARGET``         sampled run; per-tile utilization summary,
                         ``repro-metrics/1`` JSONL stream, HTML
                         heatmap dashboard.  ``--scale 4,8,16``
                         switches to the mesh-scaling probe
                         (events/sec + saturation vs tile count)
``coverage [TARGET...]`` protocol transition coverage: run the
                         verification batteries (conformance corpus,
                         directed scenarios, capacity sweep, fuzz
                         replay, POR exploration) with the transition
                         probe attached and report covered/alphabet
                         per backend, every uncovered transition by
                         name, a ``--diff`` across backends, a
                         mergeable ``repro-coverage/1`` JSONL stream
                         and an ``--html`` heatmap dashboard

``bench --trend OLD [NEW]`` diffs two generations of ``BENCH_*.json``
artifacts (e.g. the committed goldens vs a fresh CI run) and prints
per-metric regressions instead of running drivers.

``trace``, ``profile``, ``blame``, ``trace-diff`` and ``stats`` also
accept the directed scenarios in ``repro.obs.scenarios`` (e.g. ``mp``)
and conformance-corpus tests via ``litmus:<NAME>`` (e.g.
``litmus:MP+po+slow``).  File outputs accept ``-`` for stdout
(informational chatter then goes to stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import experiments
from .coherence.backend import backend_names, get_backend
from .common.params import CORE_CLASSES, table6_system
from .common.types import CommitMode
from .obs.export import (read_trace_jsonl, write_chrome_trace,
                         write_events_jsonl)
from .obs.profile import profiled_run
from .obs.scenarios import TRACE_SCENARIOS, is_litmus_target, scenario_traces
from .sim.runner import run_observed, run_workload
from .sim.system import MulticoreSystem
from .workloads import ALL_WORKLOADS

MODES = {mode.value: mode for mode in CommitMode}

#: ``trace`` / ``profile`` accept workloads *and* directed scenarios.
TRACEABLE = sorted(set(ALL_WORKLOADS) | set(TRACE_SCENARIOS))


def _resolve_traces(name: str, cores: int, scale: float):
    """Per-core traces for a workload name, a directed scenario, or a
    conformance-corpus test (``litmus:<NAME>``)."""
    if name in TRACE_SCENARIOS or is_litmus_target(name):
        try:
            return scenario_traces(name)
        except KeyError as exc:
            raise SystemExit(f"repro: {exc.args[0]}")
    return ALL_WORKLOADS[name](num_threads=cores, scale=scale).traces


def _traceable(value: str) -> str:
    """argparse type for trace/profile targets (allows litmus:<NAME>)."""
    if value in TRACEABLE or is_litmus_target(value):
        return value
    raise argparse.ArgumentTypeError(
        f"choose from {', '.join(TRACEABLE)} or litmus:<NAME>")


def _add_backend(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", choices=backend_names(),
                        default="baseline",
                        help="coherence backend (default baseline)")


def _resolve_mode(backend: str, mode_arg: Optional[str]) -> CommitMode:
    """Commit mode for a backend-aware command.

    ``--mode`` omitted picks the strongest mode the backend supports
    (ooo-wb where WritersBlock exists, ooo otherwise); an explicit mode
    the backend cannot run soundly is rejected up front.
    """
    spec = get_backend(backend)
    supported = spec.supported_commit_modes
    if mode_arg is None:
        if supported is None or CommitMode.OOO_WB in supported:
            return CommitMode.OOO_WB
        return CommitMode.OOO
    mode = MODES[mode_arg]
    if supported is not None and mode not in supported:
        raise SystemExit(
            f"repro: backend {backend!r} does not support --mode {mode_arg} "
            f"(supported: {', '.join(m.value for m in supported)})")
    return mode


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cores", type=int, default=16,
                        help="core count (square; default 16)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale multiplier")
    parser.add_argument("--core-class", choices=sorted(CORE_CLASSES),
                        default="SLM", help="Table 6 core class")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Non-Speculative Load-Load Reordering in TSO — "
                    "simulator and evaluation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and commit modes")

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    run_p.add_argument("--mode", choices=sorted(MODES), default=None,
                       help="commit mode (default: strongest the backend "
                            "supports; ooo-wb for baseline)")
    _add_backend(run_p)
    _add_common(run_p)

    cmp_p = sub.add_parser("compare", help="compare commit modes")
    cmp_p.add_argument("workload", choices=sorted(ALL_WORKLOADS))
    _add_common(cmp_p)

    lit_p = sub.add_parser("litmus", help="run litmus tests")
    lit_p.add_argument("name", nargs="?", help="one test (default: all)")
    lit_p.add_argument("--mode", choices=sorted(MODES), default="ooo-wb")

    trace_p = sub.add_parser(
        "trace", help="observed run; export spans as a Chrome trace")
    trace_p.add_argument("workload", type=_traceable, metavar="WORKLOAD")
    trace_p.add_argument("--out", default="trace.json",
                         help="Chrome trace output path "
                              "(default trace.json; '-' for stdout)")
    trace_p.add_argument("--events-out", default=None,
                         help="also dump the raw event stream as JSONL "
                              "('-' for stdout)")
    trace_p.add_argument("--mode", choices=sorted(MODES), default=None,
                         help="commit mode (default: strongest the "
                              "backend supports)")
    _add_backend(trace_p)
    _add_common(trace_p)

    prof_p = sub.add_parser(
        "profile", help="wall-clock profile of the simulator itself")
    prof_p.add_argument("workload", type=_traceable, metavar="WORKLOAD")
    prof_p.add_argument("--mode", choices=sorted(MODES), default="ooo-wb")
    prof_p.add_argument("--json", default=None,
                        help="write the profile payload as JSON "
                             "('-' for stdout)")
    _add_common(prof_p)

    blame_p = sub.add_parser(
        "blame", help="causal stall attribution: blame tree, stall "
                      "budgets, critical path")
    blame_p.add_argument("target",
                         help="workload/scenario name to run observed, "
                              "or an exported .jsonl event trace")
    blame_p.add_argument("--mode", choices=sorted(MODES), default=None,
                         help="commit mode (default: strongest the "
                              "backend supports)")
    blame_p.add_argument("--top", type=int, default=10,
                         help="rows per report section (default 10)")
    blame_p.add_argument("--json", default=None,
                         help="write the repro-blame/1 payload as JSON "
                              "('-' for stdout)")
    _add_backend(blame_p)
    _add_common(blame_p)

    diff_p = sub.add_parser(
        "trace-diff", help="align two runs by instruction identity and "
                           "report causal/stall-budget divergence")
    diff_p.add_argument("a", help="workload/scenario name or .jsonl trace")
    diff_p.add_argument("b", nargs="?", default=None,
                        help="second trace (default: re-run A under "
                             "--vs-mode)")
    diff_p.add_argument("--mode", choices=sorted(MODES), default=None,
                        help="commit mode for side A (default: strongest "
                             "the backend supports)")
    diff_p.add_argument("--vs-mode", choices=sorted(MODES), default="ooo",
                        help="commit mode for side B when it is run live "
                             "(default ooo: the squash-based ablation)")
    diff_p.add_argument("--top", type=int, default=10,
                        help="diverging loads to list (default 10)")
    diff_p.add_argument("--json", default=None,
                        help="write the repro-diff/1 payload as JSON "
                             "('-' for stdout)")
    _add_backend(diff_p)
    _add_common(diff_p)

    for fig in ("fig8", "fig9", "fig10"):
        fig_p = sub.add_parser(fig, help=f"regenerate paper {fig}")
        fig_p.add_argument("--benches", nargs="*",
                           default=list(experiments.DEFAULT_BENCHES))
        _add_common(fig_p)

    sub.add_parser("table2", help="regenerate paper Table 2")
    sub.add_parser("table6", help="regenerate paper Table 6")

    bench_p = sub.add_parser(
        "bench", help="regenerate all figures/tables via the experiment "
                      "engine (text tables + BENCH_*.json)")
    bench_p.add_argument("--only", default=None,
                         help="comma-separated driver names "
                              "(default: all; see --list-drivers)")
    bench_p.add_argument("--list-drivers", action="store_true",
                         help="list driver names and exit")
    bench_p.add_argument("--workers", type=int, default=1,
                         help="worker processes (<=1 runs serially)")
    bench_p.add_argument("--timeout", type=float, default=600.0,
                         help="per-cell timeout in pool mode, seconds")
    bench_p.add_argument("--quick", action="store_true",
                         help="smoke configuration: 4 workloads, 4 cores, "
                              "scale 0.25, output under out/quick/")
    bench_p.add_argument("--benches", nargs="*", default=None,
                         help="workload subset for fig8/fig9/fig10")
    bench_p.add_argument("--cores", type=int, default=16)
    bench_p.add_argument("--scale", type=float, default=2.0)
    bench_p.add_argument("--backend", choices=backend_names(), default=None,
                         help="restrict backend-matrix drivers (e.g. "
                              "conformance) to one coherence backend "
                              "(default: the full matrix)")
    bench_p.add_argument("--out-dir", default=None,
                         help="output directory "
                              "(default benchmarks/out, or "
                              "benchmarks/out/quick with --quick)")
    bench_p.add_argument("--no-cache", action="store_true",
                         help="disable the content-addressed result cache")
    bench_p.add_argument("--cache-dir", default=None,
                         help="result cache directory "
                              "(default $REPRO_CACHE_DIR or .repro-cache)")
    bench_p.add_argument("--trend", nargs="+", default=None, metavar="DIR",
                         help="diff BENCH_*.json generations instead of "
                              "running drivers: OLD [NEW] directories "
                              "(one directory compares it against the "
                              "bench output dir)")
    bench_p.add_argument("--trend-threshold", type=float, default=0.05,
                         help="relative change below which noisy host "
                              "(wall-clock) metrics are ignored "
                              "(default 0.05)")

    stats_p = sub.add_parser(
        "stats", help="sampled run: per-tile utilization summary, "
                      "repro-metrics/1 stream, HTML heatmap dashboard")
    stats_p.add_argument("target", nargs="?", default=None,
                         metavar="TARGET",
                         help="workload, scenario (e.g. mp) or "
                              "litmus:<NAME>; optional in --scale probe "
                              "mode (then: probe workload, default "
                              "fft)")
    stats_p.add_argument("--mode", choices=sorted(MODES), default=None,
                         help="commit mode (default: strongest the "
                              "backend supports)")
    _add_backend(stats_p)
    stats_p.add_argument("--period", type=int, default=None,
                         help="sampling period in simulated cycles "
                              "(default 100)")
    stats_p.add_argument("--json", default=None,
                         help="write the per-gauge summary as JSON "
                              "('-' for stdout)")
    stats_p.add_argument("--out", default=None,
                         help="write the repro-metrics/1 JSONL stream "
                              "('-' for stdout)")
    stats_p.add_argument("--html", default=None,
                         help="write the self-contained HTML dashboard")
    stats_p.add_argument("--heat", default=None, metavar="GAUGE",
                         help="also print a terminal heatmap for one "
                              "gauge (e.g. lq, mshr, link)")
    stats_p.add_argument("--scale", default=None, metavar="N,N,...",
                         help="mesh-scaling probe: comma-separated tile "
                              "counts (e.g. 4,8,16); reports events/sec "
                              "and per-gauge saturation per point")
    stats_p.add_argument("--cores", type=int, default=16,
                         help="core count for a single sampled run "
                              "(default 16; ignored in --scale mode)")
    stats_p.add_argument("--workload-scale", type=float, default=None,
                         help="workload scale multiplier (default 1.0; "
                              "probe mode defaults to 0.5)")
    stats_p.add_argument("--core-class", choices=sorted(CORE_CLASSES),
                         default="SLM", help="Table 6 core class")

    conf_p = sub.add_parser(
        "conform", help="memory-model conformance: three-way differential "
                        "check of the litmus corpus (sim ⊆ operational ⊆ "
                        "axiomatic) under tso/sc/rmo + exhaustive "
                        "protocol exploration")
    conf_p.add_argument("--model", choices=("tso", "sc", "rmo"),
                        default="tso",
                        help="memory model to check against (default tso; "
                             "sc skips the sim-inclusion phase — the "
                             "simulated hardware is TSO)")
    conf_p.add_argument("--only", default=None,
                        help="comma-separated test names or families "
                             "(default: whole corpus)")
    conf_p.add_argument("--full", action="store_true",
                        help="run the full corpus (default: the tier-1 "
                             "slice; REPRO_CONFORM_FULL=1 also forces "
                             "full)")
    conf_p.add_argument("--mode", choices=sorted(MODES), default=None,
                        help="commit mode (default: strongest the backend "
                             "supports; ooo-wb for baseline, ooo for "
                             "tardis)")
    _add_backend(conf_p)
    conf_p.add_argument("--core-class", choices=sorted(CORE_CLASSES),
                        default="SLM")
    conf_p.add_argument("--seed", type=int, default=0,
                        help="seed for the schedule perturbations "
                             "(default 0, the pinned BENCH seed)")
    conf_p.add_argument("--perturb", type=int, default=2,
                        help="random delay tuples per test beyond the "
                             "deterministic grid (default 2)")
    conf_p.add_argument("--no-explore", action="store_true",
                        help="skip the POR protocol exploration")
    conf_p.add_argument("--no-por", action="store_true",
                        help="explore without sleep-set reduction")
    conf_p.add_argument("--witness-dir", default=None,
                        help="directory for forbidden-outcome witness "
                             "JSONs (default: none written)")
    conf_p.add_argument("--replay", default=None, metavar="WITNESS",
                        help="replay an exported witness JSON and print "
                             "outcome + causal blame; other flags are "
                             "ignored")
    conf_p.add_argument("--regen", action="store_true",
                        help="regenerate tests/conformance/corpus/ from "
                             "the shape generator and exit")
    conf_p.add_argument("--corpus-dir", default=None,
                        help="corpus directory override "
                             "(default tests/conformance/corpus or "
                             "$REPRO_CORPUS_DIR)")
    conf_p.add_argument("--json", default=None,
                        help="write the repro-conformance/1 payload as "
                             "JSON ('-' for stdout)")

    cov_p = sub.add_parser(
        "coverage", help="protocol transition coverage: which "
                         "(state, event) -> (next, action) transitions "
                         "the verification batteries exercise, against "
                         "each backend's declared alphabet")
    cov_p.add_argument("targets", nargs="*", metavar="TARGET",
                       help="restrict collection to directed scenarios "
                            "(mp, sos) and/or corpus tests "
                            "(litmus:<NAME>); default: the full battery")
    cov_p.add_argument("--backend", choices=backend_names(), default=None,
                       help="one coherence backend (default: all)")
    cov_p.add_argument("--sources", default=None, metavar="S,S,...",
                       help="comma-separated phase subset of "
                            "corpus,scenario,capacity,fuzz,explore "
                            "(default: all)")
    cov_p.add_argument("--full", action="store_true",
                       help="corpus phase runs the full corpus (default: "
                            "the tier-1 slice; REPRO_CONFORM_FULL=1 also "
                            "forces full)")
    cov_p.add_argument("--diff", action="store_true",
                       help="print the side-by-side backend coverage diff")
    cov_p.add_argument("--load", nargs="+", default=None, metavar="FILE",
                       help="merge exported repro-coverage/1 JSONL files "
                            "and report, instead of collecting")
    cov_p.add_argument("--out", default=None,
                       help="write the merged map as repro-coverage/1 "
                            "JSONL ('-' for stdout)")
    cov_p.add_argument("--json", default=None,
                       help="write the per-backend coverage reports as "
                            "JSON ('-' for stdout)")
    cov_p.add_argument("--html", default=None,
                       help="write the HTML coverage heatmap dashboard")
    cov_p.add_argument("--max-states", type=int, default=20_000,
                       help="exploration state budget per scenario "
                            "(default 20000)")
    cov_p.add_argument("--core-class", choices=sorted(CORE_CLASSES),
                       default="SLM")

    perf_p = sub.add_parser(
        "perf", help="single-run throughput microbenchmarks "
                     "(writes BENCH_perf.json + baseline comparison)")
    perf_p.add_argument("--groups", default=None,
                        help="comma-separated benchmark groups "
                             "(default: litmus,mp,sos,fuzz)")
    perf_p.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per group (default 3)")
    perf_p.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup repetitions (default 1)")
    perf_p.add_argument("--out", default="benchmarks/out/BENCH_perf.json",
                        help="output payload path "
                             "(default benchmarks/out/BENCH_perf.json)")
    perf_p.add_argument("--baseline", default="benchmarks/perf_baseline.json",
                        help="baseline payload to compare against "
                             "(default benchmarks/perf_baseline.json; "
                             "skipped if missing)")
    perf_p.add_argument("--write-baseline", action="store_true",
                        help="also overwrite the baseline file with this "
                             "run's numbers (documented refresh flow)")
    return parser


def cmd_list(args) -> int:
    print("Workloads (SPLASH-3-like and PARSEC-like):")
    for name in sorted(ALL_WORKLOADS):
        workload = ALL_WORKLOADS[name](num_threads=4, scale=0.1)
        print(f"  {name:16s} {workload.description}")
    print("\nCommit modes:", ", ".join(sorted(MODES)))
    return 0


def cmd_run(args) -> int:
    mode = _resolve_mode(args.backend, args.mode)
    params = table6_system(args.core_class, num_cores=args.cores,
                           commit_mode=mode, backend=args.backend)
    workload = ALL_WORKLOADS[args.workload](num_threads=args.cores,
                                            scale=args.scale)
    result = run_workload(workload, params, check=mode is not CommitMode.OOO_UNSAFE)
    label = mode.value if args.backend == "baseline" \
        else f"{mode.value}, {args.backend}"
    print(f"{args.workload} on {args.cores}x {args.core_class} "
          f"({label}):")
    print("  " + result.summary())
    print(f"  blocked writes/kstore:   {result.writes_blocked_per_kilostore:.3f}")
    print(f"  uncacheable reads/kload: {result.uncacheable_per_kiloload:.3f}")
    return 0


def cmd_compare(args) -> int:
    rows = experiments.fig10_ooo_commit(
        [args.workload], core_class=args.core_class, num_cores=args.cores,
        scale=args.scale)
    print(experiments.fig10_time_table(rows))
    print()
    print(experiments.fig10_stall_table(rows))
    return 0


def cmd_litmus(args) -> int:
    from .consistency.litmus import run_litmus, standard_suite

    mode = MODES[args.mode]
    failures = 0
    for test in standard_suite():
        if args.name and test.name != args.name:
            continue
        cores = 16 if len(test.threads) > 4 else 4
        params = table6_system("SLM", num_cores=cores, commit_mode=mode)
        outcome = run_litmus(test, params)
        bad = outcome.forbidden_hit or outcome.checker_violation
        failures += bool(bad)
        status = "FORBIDDEN/VIOLATION" if bad else "ok"
        print(f"{test.name:24s} {status:20s} {outcome.registers}")
    return 1 if failures else 0


def _say_for(*outputs):
    """print() twin that avoids corrupting a stdout data stream: when
    any requested output path is ``-``, chatter moves to stderr."""
    if any(str(out) == "-" for out in outputs if out):
        return lambda *a, **kw: print(*a, file=sys.stderr, **kw)
    return print


def cmd_trace(args) -> int:
    import time

    say = _say_for(args.out, args.events_out)
    mode = _resolve_mode(args.backend, args.mode)
    params = table6_system(args.core_class, num_cores=args.cores,
                           commit_mode=mode, backend=args.backend)
    traces = _resolve_traces(args.workload, args.cores, args.scale)
    result, events = run_observed(
        traces, params, check=mode is not CommitMode.OOO_UNSAFE)
    meta = {
        "workload": args.workload, "mode": mode.value,
        "backend": args.backend,
        "cores": args.cores, "core_class": args.core_class,
        "cycles": result.cycles,
    }
    written = write_chrome_trace(result.spans, args.out, metadata={
        **meta, "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
    })
    say(f"{args.workload} ({mode.value}): {result.cycles} cycles, "
        f"{len(events)} events, {written} spans -> {args.out}")
    for cat, summary in sorted(result.span_summaries.items()):
        say(f"  {cat:14s} n={summary['count']:<6d} "
            f"mean={summary['mean']:8.1f} p50={summary['p50']:6.0f} "
            f"p99={summary['p99']:6.0f} max={summary['max']:6.0f}")
    if args.events_out:
        count = write_events_jsonl(events, args.events_out, meta=meta)
        say(f"  {count} events -> {args.events_out}")
    return 0


def cmd_profile(args) -> int:
    import json

    say = _say_for(args.json)
    mode = MODES[args.mode]
    params = table6_system(args.core_class, num_cores=args.cores,
                           commit_mode=mode)
    traces = _resolve_traces(args.workload, args.cores, args.scale)
    system = MulticoreSystem(params)
    system.load_program(traces)
    result, report = profiled_run(system)
    wall = report.wall_seconds
    say(f"{args.workload} ({mode.value}): {result.cycles} simulated cycles "
        f"in {wall:.3f}s host time "
        f"({result.cycles / max(wall, 1e-9):,.0f} cycles/s)")
    say(report.render())
    if args.json:
        from .obs.export import open_output

        with open_output(args.json) as handle:
            json.dump(report.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        say(f"profile payload -> {args.json}")
    return 0


def _blame_side(name_or_path: str, mode: CommitMode, args):
    """Events + cycle count for a CLI target: a ``.jsonl`` trace file
    loads offline, anything else runs live under *mode*."""
    import os

    from .obs.causal import CausalGraph

    if os.path.exists(name_or_path) and name_or_path not in TRACEABLE:
        header, events = read_trace_jsonl(name_or_path)
        meta = header.get("meta", {})
        cycles = int(meta.get("cycles") or
                     max((e.cycle for e in events), default=0))
        label = str(meta.get("workload", name_or_path))
        if meta.get("mode"):
            label = f"{label} ({meta['mode']})"
        return events, cycles, label, meta
    if name_or_path not in TRACEABLE and not is_litmus_target(name_or_path):
        raise SystemExit(f"repro: {name_or_path!r} is neither a trace file "
                         f"nor a workload/scenario/litmus: target (choose "
                         f"from {', '.join(TRACEABLE)} or litmus:<NAME>)")
    params = table6_system(args.core_class, num_cores=args.cores,
                           commit_mode=mode, backend=args.backend)
    traces = _resolve_traces(name_or_path, args.cores, args.scale)
    result, events = run_observed(
        traces, params, check=mode is not CommitMode.OOO_UNSAFE)
    label = name_or_path if args.backend == "baseline" \
        else f"{name_or_path} [{args.backend}]"
    return (events, result.cycles, f"{label} ({mode.value})",
            {"workload": name_or_path, "mode": mode.value,
             "backend": args.backend})


def cmd_blame(args) -> int:
    import json

    from .obs.blame import build_blame, render_blame
    from .obs.causal import CausalGraph

    say = _say_for(args.json)
    events, cycles, label, meta = _blame_side(
        args.target, _resolve_mode(args.backend, args.mode), args)
    graph = CausalGraph.from_events(events)
    payload = build_blame(graph, cycles=cycles, meta=meta)
    say(f"{label}: {cycles} cycles, {len(events)} events, "
        f"{payload['graph']['episodes']} WritersBlock episode(s)")
    say("")
    say(render_blame(payload, top=args.top))
    if args.json:
        from .obs.export import open_output

        with open_output(args.json) as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        say(f"\nblame payload -> {args.json}")
    return 0


def cmd_trace_diff(args) -> int:
    import json

    from .obs.diff import diff_traces, render_diff

    say = _say_for(args.json)
    events_a, cycles_a, label_a, __ = _blame_side(
        args.a, _resolve_mode(args.backend, args.mode), args)
    target_b = args.b if args.b is not None else args.a
    events_b, cycles_b, label_b, __ = _blame_side(
        target_b, _resolve_mode(args.backend, args.vs_mode), args)
    if label_a == label_b:
        label_a, label_b = f"a:{label_a}", f"b:{label_b}"
    payload = diff_traces(events_a, events_b,
                          cycles=(cycles_a, cycles_b),
                          labels=(label_a, label_b), top=args.top)
    say(render_diff(payload, top=args.top))
    if args.json:
        from .obs.export import open_output

        with open_output(args.json) as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        say(f"\ndiff payload -> {args.json}")
    return 0


def cmd_fig8(args) -> int:
    rows = experiments.fig8_writersblock_rates(
        args.benches, num_cores=args.cores, scale=args.scale)
    print(experiments.fig8_table(rows))
    return 0


def cmd_fig9(args) -> int:
    rows = experiments.fig9_overheads(
        args.benches, core_class=args.core_class, num_cores=args.cores,
        scale=args.scale)
    print(experiments.fig9_table(rows))
    return 0


def cmd_fig10(args) -> int:
    rows = experiments.fig10_ooo_commit(
        args.benches, core_class=args.core_class, num_cores=args.cores,
        scale=args.scale)
    print(experiments.fig10_time_table(rows))
    print()
    print(experiments.fig10_stall_table(rows))
    headline = experiments.fig10_headline(rows)
    print()
    for key, value in headline.items():
        print(f"{key}: {value:.1f}")
    return 0


def cmd_table2(args) -> int:
    from .consistency.litmus import SimpleOp, enumerate_interleavings

    reader = [SimpleOp(0, "ld", "y"), SimpleOp(0, "ld", "x")]
    writer = [SimpleOp(1, "st", "x"), SimpleOp(1, "st", "y")]
    for i, (order, loads) in enumerate(
            enumerate_interleavings([reader, writer]), start=1):
        ops = " -> ".join(f"t{op.thread}:{op.kind} {op.var}" for op in order)
        print(f"({i}) {ops}   loads={loads}")
    return 0


def cmd_table6(args) -> int:
    print(experiments.table6_text())
    return 0


def cmd_bench(args) -> int:
    import os

    from .exp.bench import (DEFAULT_BENCH_SET, QUICK_BENCH_SET, QUICK_CORES,
                            QUICK_SCALE, run_bench)
    from .exp.drivers import DRIVERS, BenchConfig

    if args.trend:
        from .exp.trend import diff_generations, render_trend

        if len(args.trend) > 2:
            raise SystemExit("repro: --trend takes OLD [NEW] (at most two "
                             "directories)")
        old_dir = args.trend[0]
        new_dir = (args.trend[1] if len(args.trend) == 2
                   else args.out_dir or "benchmarks/out")
        try:
            payload = diff_generations(old_dir, new_dir,
                                       threshold=args.trend_threshold)
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}")
        print(render_trend(payload))
        return 0

    if args.list_drivers:
        for name in DRIVERS:
            print(name)
        return 0
    names = (args.only.split(",") if args.only else list(DRIVERS))
    names = [n.strip() for n in names if n.strip()]
    if args.quick:
        cfg = BenchConfig(
            benches=tuple(args.benches) if args.benches else QUICK_BENCH_SET,
            cores=QUICK_CORES if args.cores == 16 else args.cores,
            scale=QUICK_SCALE if args.scale == 2.0 else args.scale,
            backend=args.backend)
        out_dir = args.out_dir or "benchmarks/out/quick"
    else:
        cfg = BenchConfig(
            benches=tuple(args.benches) if args.benches is not None
            else DEFAULT_BENCH_SET,
            cores=args.cores, scale=args.scale, backend=args.backend)
        out_dir = args.out_dir or "benchmarks/out"
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.environ.get(
            "REPRO_CACHE_DIR", ".repro-cache")
    runs = run_bench(names, cfg, out_dir, workers=args.workers,
                     timeout=args.timeout, cache_dir=cache_dir, echo=print)
    total_wall = sum(r.wall_seconds for r in runs)
    executed = sum(r.report.engine_run.executed_seconds
                   for r in runs if r.report.engine_run)
    print(f"\n{len(runs)} drivers in {total_wall:.1f}s wall "
          f"({executed:.1f}s serial-equivalent) -> {out_dir}")
    return 0


def cmd_conform(args) -> int:
    import pathlib

    from .conform.runner import (full_requested, load_corpus,
                                 run_conformance, tier1_slice)

    if args.replay:
        from .conform.witness import replay_witness

        report = replay_witness(args.replay)
        blame = report.get("blame") or {}
        print(f"witness: {report['test']} [{report['kind']}] "
              f"mode={report['mode']} cores={report['num_cores']}")
        print(f"  recorded: {report['recorded']}")
        print(f"  replayed: {report['registers']}")
        print(f"  match={report['match']} "
              f"forbidden_hit={report['forbidden_hit']} "
              f"checker_violation={bool(report['checker_violation'])} "
              f"cycles={report['cycles']}")
        for step in blame.get("top") or []:
            print(f"  blame: {step}")
        if args.json:
            _dump_json(report, args.json)
        return 0 if report["match"] else 1

    if args.regen:
        from .conform.generator import write_corpus

        target = pathlib.Path(args.corpus_dir or "tests/conformance/corpus")
        written = write_corpus(target)
        print(f"wrote {len(written)} litmus tests -> {target}")
        return 0

    corpus_path = pathlib.Path(args.corpus_dir) if args.corpus_dir else None
    tests = load_corpus(corpus_path)
    sliced = False
    if not args.full and not full_requested():
        tests = tier1_slice(tests)
        sliced = True
    if args.only:
        wanted = {part.strip() for part in args.only.split(",") if part.strip()}
        tests = [t for t in load_corpus(corpus_path)
                 if t.name in wanted or t.family in wanted]
        sliced = False
        if not tests:
            raise SystemExit(f"repro: no corpus test or family matches "
                             f"{sorted(wanted)}")
    witness_dir = pathlib.Path(args.witness_dir) if args.witness_dir else None
    mode = _resolve_mode(args.backend, args.mode)
    label = "slice" if sliced else "full"
    print(f"repro conform: {len(tests)} tests ({label}), "
          f"model={args.model} backend={args.backend} mode={mode.value} "
          f"core-class={args.core_class} "
          f"perturb={args.perturb} seed={args.seed}")
    result = run_conformance(
        tests, model=args.model, mode=mode,
        core_class=args.core_class, backend=args.backend,
        perturb=args.perturb, seed=args.seed, witness_dir=witness_dir,
        explore=not args.no_explore, por=not args.no_por)
    for row in result.family_rows():
        print(f"  {row['family']:<8} tests={row['tests']:>3} "
              f"sim-outcomes={row['sim_outcomes']:>4} "
              f"operational={row['operational']:>4} "
              f"axiomatic={row['axiomatic']:>4} "
              f"violations={row['violations']}")
    for name in sorted(result.explorations):
        info = result.explorations[name]
        print(f"  explore/{name:<5} states={info['states']} "
              f"transitions={info['transitions']} "
              f"dedup={info['deduplicated']} slept={info['sleep_pruned']} "
              f"memo-hit={info['memo_hit_rate']:.0%} "
              f"pruned={info['sleep_prune_ratio']:.0%} "
              f"frontier={info['frontier_peak']} ok={info['ok']}")
    verdict = "OK" if result.ok else "VIOLATIONS"
    print(f"{verdict}: {len(result.reports)} tests, "
          f"{len(result.violations)} violations")
    for violation in result.violations:
        print(f"  {violation.kind}: {violation.test}: {violation.detail}")
    if witness_dir is not None and result.violations:
        print(f"witnesses -> {witness_dir}")
    if args.json:
        _dump_json(result.to_payload(), args.json)
    return 0 if result.ok else 1


def cmd_coverage(args) -> int:
    from .obs.coverage import (CoverageMap, coverage_report,
                               read_coverage_jsonl, render_coverage,
                               render_coverage_diff, write_coverage_jsonl)

    say = _say_for(args.out, args.json)
    backends = [args.backend] if args.backend else list(backend_names())
    cmap = CoverageMap()
    collection = {}

    if args.load:
        if args.targets or args.sources:
            raise SystemExit("repro: --load merges exported maps; it takes "
                             "no collection targets or --sources")
        for path in args.load:
            try:
                header, loaded = read_coverage_jsonl(path)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"repro: {exc}")
            cmap.merge(loaded)
            say(f"loaded {path}: backends "
                f"{', '.join(loaded.backends) or '(none)'}")
        if args.backend is None:
            backends = cmap.backends
    else:
        from .conform.coverage import (COVERAGE_SOURCES, collect_coverage)
        from .obs.scenarios import LITMUS_PREFIX

        sources = COVERAGE_SOURCES
        if args.sources:
            sources = tuple(part.strip()
                            for part in args.sources.split(",")
                            if part.strip())
            unknown = set(sources) - set(COVERAGE_SOURCES)
            if unknown:
                raise SystemExit(
                    f"repro: unknown coverage sources {sorted(unknown)} "
                    f"(choose from {', '.join(COVERAGE_SOURCES)})")
        tests = None
        scenario_names = None
        if args.targets:
            from .conform.runner import load_corpus

            litmus_names = {t[len(LITMUS_PREFIX):] for t in args.targets
                            if is_litmus_target(t)}
            scenario_names = [t for t in args.targets
                              if t in TRACE_SCENARIOS]
            bad = [t for t in args.targets
                   if not is_litmus_target(t) and t not in TRACE_SCENARIOS]
            if bad:
                raise SystemExit(
                    f"repro: unknown coverage targets {bad} (scenarios: "
                    f"{', '.join(sorted(TRACE_SCENARIOS))}; corpus tests: "
                    f"litmus:<NAME>)")
            if litmus_names:
                tests = [t for t in load_corpus()
                         if t.name in litmus_names]
                missing = litmus_names - {t.name for t in tests}
                if missing:
                    raise SystemExit(f"repro: no corpus test named "
                                     f"{sorted(missing)}")
            # Targets pin the collection to exactly what was named.
            sources = tuple(
                s for s in sources
                if (s == "corpus" and tests) or
                   (s == "scenario" and scenario_names))
        for backend in backends:
            say(f"collecting {backend} "
                f"({', '.join(sources) or 'nothing'}) ...")
            bmap, info = collect_coverage(
                backend, sources=sources, tests=tests,
                scenario_names=scenario_names, full=args.full,
                max_states=args.max_states, core_class=args.core_class)
            cmap.merge(bmap)
            collection[backend] = info

    reports = {backend: coverage_report(cmap, backend)
               for backend in backends}
    for backend in backends:
        say(render_coverage(reports[backend]))
    if args.diff:
        if len(backends) < 2:
            raise SystemExit("repro: --diff wants at least two backends in "
                             "play (collect them, or --load a map that "
                             "holds several)")
        import itertools

        for a, b in itertools.combinations(backends, 2):
            say("")
            say(render_coverage_diff(reports[a], reports[b], cmap))
    if args.out:
        count = write_coverage_jsonl(cmap, args.out,
                                     meta={"backends": backends})
        say(f"{count} transition records -> {args.out}")
    if args.json:
        _dump_json({"schema": "repro-coverage-report/1",
                    "backends": reports,
                    "collection": collection}, args.json)
    if args.html:
        from .analysis.dashboard import write_coverage_dashboard

        write_coverage_dashboard(
            cmap, args.html,
            meta={"backends": ",".join(backends)})
        say(f"dashboard -> {args.html}")
    undeclared = sum(len(r["undeclared"]) for r in reports.values())
    if undeclared:
        say(f"repro: {undeclared} observed transition(s) outside the "
            "declared alphabet — regenerate with tools/gen_alphabet.py")
        return 1
    return 0


def _dump_json(payload, dest: str) -> None:
    import json
    import pathlib

    text = json.dumps(payload, indent=1, sort_keys=True, default=str) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        path = pathlib.Path(dest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


def cmd_perf(args) -> int:
    import json
    import pathlib

    from .perf.harness import (DEFAULT_GROUPS, load_baseline, perf_payload,
                               run_perf_suite)

    groups = ([g.strip() for g in args.groups.split(",") if g.strip()]
              if args.groups else list(DEFAULT_GROUPS))
    print(f"repro perf: {len(groups)} groups, reps={args.reps} "
          f"(+{args.warmup} warmup)")
    results = run_perf_suite(groups, reps=args.reps, warmup=args.warmup,
                             echo=print)
    baseline = load_baseline(args.baseline) if args.baseline else None
    payload = perf_payload(results, reps=args.reps, warmup=args.warmup,
                           baseline=baseline, baseline_path=args.baseline)
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    out.write_text(text)
    suite = payload["suite"]
    print(f"suite: {suite['runs']} runs in {suite['wall_seconds']}s "
          f"({suite['sims_per_sec_geomean']} sims/s geomean) -> {out}")
    if baseline is not None:
        cmp = payload["comparison"]
        per_group = " ".join(f"{g}={s}x" for g, s in
                             sorted(cmp["sims_per_sec_speedup"].items()))
        print(f"vs baseline ({cmp['baseline_code_version'][:12]}...): "
              f"{cmp['overall_speedup']}x overall  [{per_group}]")
    elif args.baseline:
        print(f"no baseline at {args.baseline}; comparison skipped")
    if args.write_baseline:
        base_out = pathlib.Path(args.baseline)
        base_payload = dict(payload)
        base_payload.pop("comparison", None)
        base_out.parent.mkdir(parents=True, exist_ok=True)
        base_out.write_text(json.dumps(base_payload, indent=1,
                                       sort_keys=True) + "\n")
        print(f"baseline refreshed -> {base_out}")
    return 0


def cmd_stats(args) -> int:
    from .analysis.charts import heatmap_chart
    from .obs.metrics import (DEFAULT_PERIOD, GAUGE_KEYS, summarize_metrics,
                              tile_series, write_metrics_jsonl)

    say = _say_for(args.json, args.out)
    period = DEFAULT_PERIOD if args.period is None else args.period

    if args.scale:
        # Mesh-scaling probe mode: one sampled run per tile count.
        from .perf.scaling import (DEFAULT_WORKLOAD, run_scale_probe,
                                   scaling_report)

        if args.out or args.html:
            raise SystemExit("repro: --scale probe mode supports --json "
                             "only (no single stream to export)")
        try:
            tile_counts = tuple(int(part) for part in
                                args.scale.split(",") if part.strip())
        except ValueError:
            raise SystemExit(f"repro: --scale wants comma-separated tile "
                             f"counts, got {args.scale!r}")
        if not tile_counts:
            raise SystemExit("repro: --scale wants at least one tile count")
        workload = args.target or DEFAULT_WORKLOAD
        if workload not in ALL_WORKLOADS:
            raise SystemExit(f"repro: probe mode needs a scalable workload "
                             f"(choose from {', '.join(sorted(ALL_WORKLOADS))})")
        wl_scale = 0.5 if args.workload_scale is None else args.workload_scale
        say(f"repro stats --scale: {workload} at "
            f"{', '.join(map(str, tile_counts))} tiles "
            f"(scale {wl_scale}, period {period}, "
            f"backend {args.backend})")
        points = run_scale_probe(tile_counts, workload=workload,
                                 scale=wl_scale, core_class=args.core_class,
                                 commit_mode=_resolve_mode(args.backend,
                                                           args.mode),
                                 backend=args.backend,
                                 period=period, echo=say)
        say("")
        say(scaling_report(points))
        if args.json:
            _dump_json({"probe": points}, args.json)
        return 0

    if not args.target:
        raise SystemExit("repro: stats needs a TARGET (workload, scenario "
                         "or litmus:<NAME>) unless --scale is given")
    mode = _resolve_mode(args.backend, args.mode)
    wl_scale = 1.0 if args.workload_scale is None else args.workload_scale
    params = table6_system(args.core_class, num_cores=args.cores,
                           commit_mode=mode, backend=args.backend)
    traces = _resolve_traces(args.target, args.cores, wl_scale)
    from .sim.runner import run_sampled

    result = run_sampled(traces, params, period=period,
                         check=mode is not CommitMode.OOO_UNSAFE)
    payload = dict(result.telemetry)
    payload["meta"] = {"workload": args.target, "mode": mode.value,
                       "backend": args.backend,
                       "cores": args.cores, "core_class": args.core_class}
    summary = summarize_metrics(payload)
    say(f"{args.target} ({mode.value}): {result.cycles} cycles, "
        f"{summary['samples']} samples @ period {period}")
    say(f"  {'gauge':10s} {'cap':>5s} {'mean':>8s} {'peak':>8s} "
        f"{'sat':>7s}  hottest")
    for gauge in payload["gauges"]:
        row = summary["gauges"][gauge]
        cap = "-" if row["capacity"] is None else str(row["capacity"])
        say(f"  {gauge:10s} {cap:>5s} {row['mean']:8.3f} "
            f"{row['peak']:8.3f} {row['saturation']:6.1%}  "
            f"t{row['hottest_tile']} ({row['hottest_mean']:.3f})")
    if args.heat:
        if args.heat not in GAUGE_KEYS:
            raise SystemExit(f"repro: unknown gauge {args.heat!r} "
                             f"(choose from {', '.join(GAUGE_KEYS)})")
        cap = payload["capacities"].get(args.heat)
        say("")
        say(heatmap_chart(tile_series(payload, args.heat),
                          title=f"[{args.heat}] per tile over time",
                          peak=float(cap) if cap else None))
    if args.json:
        _dump_json(summary, args.json)
    if args.out:
        count = write_metrics_jsonl(payload, args.out)
        say(f"  {count} samples -> {args.out}")
    if args.html:
        from .analysis.dashboard import write_dashboard

        write_dashboard(payload, args.html,
                        title=f"repro stats: {args.target}",
                        meta=payload["meta"])
        say(f"  dashboard -> {args.html}")
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "compare": cmd_compare,
    "litmus": cmd_litmus,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "blame": cmd_blame,
    "trace-diff": cmd_trace_diff,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "table2": cmd_table2,
    "table6": cmd_table6,
    "bench": cmd_bench,
    "conform": cmd_conform,
    "coverage": cmd_coverage,
    "perf": cmd_perf,
    "stats": cmd_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
