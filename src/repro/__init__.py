"""repro — reproduction of "Non-Speculative Load-Load Reordering in TSO"
(Ros, Carlson, Alipour, Kaxiras; ISCA 2017).

A cycle-level multicore simulator with directory MESI coherence, the
paper's WritersBlock extension (lockdowns, tear-off reads, deferred
invalidation acks), and an out-of-order core supporting in-order,
Bell-Lipasti safe out-of-order, and WritersBlock-relaxed commit.

Quickstart::

    from repro import table6_system, run_workload, CommitMode
    from repro.workloads import splash

    params = table6_system("SLM", commit_mode=CommitMode.OOO_WB)
    result = run_workload(splash.fft(num_threads=16), params)
    print(result.summary())
"""

from .common import (
    CommitMode,
    ConfigError,
    DeadlockError,
    ProtocolError,
    SimulationError,
    SystemParams,
    TSOViolationError,
    table6_system,
)
from .consistency import ExecutionLog, check_tso
from .sim import (
    MulticoreSystem,
    SimResult,
    compare_commit_modes,
    run_traces,
    run_workload,
)
from .workloads import AddressSpace, TraceBuilder, Workload

__version__ = "1.0.0"

__all__ = [
    "CommitMode",
    "ConfigError",
    "DeadlockError",
    "ProtocolError",
    "SimulationError",
    "SystemParams",
    "TSOViolationError",
    "table6_system",
    "ExecutionLog",
    "check_tso",
    "MulticoreSystem",
    "SimResult",
    "compare_commit_modes",
    "run_traces",
    "run_workload",
    "AddressSpace",
    "TraceBuilder",
    "Workload",
    "__version__",
]
