"""Host-side wall-clock profiler for the simulator itself.

Instruments one :class:`~repro.sim.system.MulticoreSystem` by wrapping
component boundaries — ``core.tick``, ``PrivateCache.handle_message``,
``DirectoryBank.handle_message``, ``MeshNetwork.send`` and the event
queue's ``run_due`` — and attributes **exclusive** time to each via an
enter/exit stack (a child's time is subtracted from its caller), so the
shares answer "where do host cycles actually go" without double
counting.  This is the tool the ROADMAP's perf work needs: before
optimising a layer, measure it (``repro profile WORKLOAD``).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Callable, Dict, List, Optional


class Profiler:
    """Exclusive wall-clock accumulator keyed by component name."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.totals: Dict[str, float] = defaultdict(float)
        self.calls: Dict[str, int] = defaultdict(int)
        self._clock = clock
        self._stack: List[List] = []  # [name, start, child_time]

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return *fn* instrumented to attribute its exclusive time."""

        def instrumented(*args, **kwargs):
            self._enter(name)
            try:
                return fn(*args, **kwargs)
            finally:
                self._exit()

        instrumented.__wrapped__ = fn
        return instrumented

    def _enter(self, name: str) -> None:
        self._stack.append([name, self._clock(), 0.0])

    def _exit(self) -> None:
        name, start, child = self._stack.pop()
        elapsed = self._clock() - start
        self.totals[name] += elapsed - child
        self.calls[name] += 1
        if self._stack:
            self._stack[-1][2] += elapsed


class ProfileReport:
    """Per-component shares of one profiled run."""

    def __init__(self, wall_seconds: float, totals: Dict[str, float],
                 calls: Optional[Dict[str, int]] = None) -> None:
        self.wall_seconds = wall_seconds
        self.totals = dict(totals)
        self.calls = dict(calls or {})
        attributed = sum(self.totals.values())
        self.totals["other"] = max(wall_seconds - attributed, 0.0)

    def shares(self) -> Dict[str, float]:
        """{component: fraction of wall time}, summing to ~1."""
        wall = max(self.wall_seconds, 1e-12)
        return {name: seconds / wall
                for name, seconds in sorted(self.totals.items())}

    def as_dict(self) -> Dict[str, object]:
        return {
            "wall_seconds": self.wall_seconds,
            "components": {name: seconds
                           for name, seconds in sorted(self.totals.items())},
            "calls": {name: count for name, count in sorted(self.calls.items())},
        }

    def render(self) -> str:
        rows = sorted(self.totals.items(), key=lambda item: -item[1])
        lines = [f"{'component':16s} {'seconds':>10s} {'share':>7s} {'calls':>12s}"]
        for name, seconds in rows:
            share = seconds / max(self.wall_seconds, 1e-12)
            calls = self.calls.get(name)
            lines.append(f"{name:16s} {seconds:10.4f} {share:6.1%} "
                         f"{calls if calls is not None else '-':>12}")
        lines.append(f"{'total wall':16s} {self.wall_seconds:10.4f} {1:6.1%}")
        return "\n".join(lines)


def profile_system(system, profiler: Optional[Profiler] = None) -> Profiler:
    """Instrument *system* in place; returns the profiler to read later."""
    prof = profiler or Profiler()
    for core in system.cores:
        core.tick = prof.wrap("core", core.tick)
    # The mesh holds the registered message handlers (not the component
    # attributes), so instrument the endpoints it will actually call.
    for cache in system.caches:
        system.network.rewrap_endpoint(
            cache.tile, "cache",
            lambda handler: prof.wrap("private_cache", handler))
    for bank in system.directories:
        system.network.rewrap_endpoint(
            bank.tile, "llc", lambda handler: prof.wrap("directory", handler))
    system.network.send = prof.wrap("network", system.network.send)
    system.events.run_due = prof.wrap("event_dispatch", system.events.run_due)
    return prof


def profiled_run(system):
    """Run *system* under instrumentation; returns (result, report).

    The report is also attached to ``result.profile`` (a plain dict) so
    it survives ``SimResult.to_json()``.
    """
    prof = profile_system(system)
    start = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - start
    report = ProfileReport(wall, prof.totals, prof.calls)
    result.profile = report.as_dict()
    return result, report
