"""Stall attribution over the causal graph: blame trees + critical path.

Two budgets are accounted:

* **Write stalls** — for every write parked by the directory
  (``dir.write_blocked``), the cycles until its line's WritersBlock
  episode ended.  Each blocked interval is split at the episode's last
  deferred Ack: cycles spent waiting for lockdowns to lift are blamed
  on ``writersblock.deferred_ack`` (sub-divided by whether the gating
  holder sat in the LQ or the LDT), the protocol tail from Ack to the
  writer's Unblock on ``writersblock.unblock``.  Writes parked behind
  an eviction or a full directory (``cause`` = ``evicting``/``alloc``)
  are counted under ``dir_eviction`` (their release is not separately
  instrumented, so only the event count is attributed).
* **Commit stalls** — one ``commit.stall`` event per core per cycle in
  which the commit stage retired nothing.  The core's cause hint maps
  onto the stall taxonomy: ``writersblock`` (head store's line blocked
  at the directory), ``lockdown`` (LDT full, or the head load's line
  under a Nacked invalidation), ``mshr`` (MSHR file full), ``network``
  (a miss in flight), ``other`` (execution / frontend).

Payloads use schema ``repro-blame/1`` and are engine-safe: plain JSON
types, no per-process identifiers, keys sorted by the serializer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from .causal import CausalGraph

BLAME_SCHEMA = "repro-blame/1"

#: Root causes of the write-stall budget.
WB_DEFER = "writersblock.deferred_ack"
WB_UNBLOCK = "writersblock.unblock"
DIR_EVICTION = "dir_eviction"

#: Core cause hints (``commit.stall`` args) -> stall taxonomy buckets.
COMMIT_CAUSE_MAP = {
    "write_blocked": "writersblock",
    "lockdown_pending": "lockdown",
    "ldt_full": "lockdown",
    "mshr_full": "mshr",
    "load_inflight": "network",
    "store_inflight": "network",
    "exec": "other",
    "none": "other",
}


def build_blame(graph: CausalGraph, *, cycles: int = 0,
                meta: Optional[Dict] = None) -> Dict:
    """Attribute every accounted stall cycle; returns the blame payload."""
    write_stalls = _write_stalls(graph)
    commit_stalls = _commit_stalls(graph)
    payload: Dict[str, object] = {
        "schema": BLAME_SCHEMA,
        "cycles": int(cycles),
        "graph": {"nodes": len(graph.nodes), "edges": len(graph.edges),
                  "episodes": len(graph.episodes)},
        "write_stalls": write_stalls,
        "commit_stalls": commit_stalls,
        "blame_tree": _blame_tree(graph, write_stalls),
        "critical_path": graph.critical_path(),
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


# ------------------------------------------------------------ write stalls
def _write_stalls(graph: CausalGraph) -> Dict:
    causes: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"cycles": 0, "events": 0})
    total = 0
    unattributed = 0
    for episode in graph.episodes:
        last_ack = max((graph.nodes[d].cycle for d in episode.defers),
                       default=None)
        for blocked_idx in episode.blocked:
            start = graph.nodes[blocked_idx].cycle
            if episode.end_cycle is None:
                # Run ended mid-episode; nothing to attribute safely.
                unattributed += 1
                continue
            stalled = episode.end_cycle - start
            total += stalled
            if last_ack is None:
                causes[WB_UNBLOCK]["cycles"] += stalled
                causes[WB_UNBLOCK]["events"] += 1
                continue
            defer_part = max(min(last_ack, episode.end_cycle) - start, 0)
            causes[WB_DEFER]["cycles"] += defer_part
            causes[WB_DEFER]["events"] += 1
            causes[WB_UNBLOCK]["cycles"] += stalled - defer_part
            causes[WB_UNBLOCK]["events"] += 1
    # Eviction-/allocation-parked writes: nodes outside any episode.
    for idx, event in enumerate(graph.nodes):
        if event.kind == "dir.write_blocked" and \
                event.args.get("cause") in ("evicting", "alloc"):
            causes[DIR_EVICTION]["events"] += 1
    attributed = sum(entry["cycles"] for entry in causes.values())
    return {
        "total_cycles": total,
        "attributed_cycles": attributed,
        "coverage": round(attributed / total, 4) if total else 1.0,
        "unattributed_events": unattributed,
        "causes": {name: dict(entry) for name, entry in
                   sorted(causes.items())},
    }


def _defer_kind(graph: CausalGraph, episode) -> str:
    """LQ or LDT: where did the lockdown gating the last Ack live?"""
    if not episode.defers:
        return "lq"
    last = max(episode.defers, key=lambda d: graph.nodes[d].cycle)
    return str(graph.nodes[last].args.get("via_kind", "lq"))


# ----------------------------------------------------------- commit stalls
def _commit_stalls(graph: CausalGraph) -> Dict:
    causes: Dict[str, int] = defaultdict(int)
    reasons: Dict[str, int] = defaultdict(int)
    for idx in graph.stalls:
        args = graph.nodes[idx].args
        causes[COMMIT_CAUSE_MAP.get(str(args.get("cause")), "other")] += 1
        reasons[str(args.get("reason", "other"))] += 1
    total = len(graph.stalls)
    attributed = total - causes.get("other", 0)
    return {
        "total_cycles": total,
        "attributed_cycles": attributed,
        "coverage": round(attributed / total, 4) if total else 1.0,
        "causes": dict(sorted(causes.items())),
        "reasons": dict(sorted(reasons.items())),
    }


# -------------------------------------------------------------- blame tree
def _blame_tree(graph: CausalGraph, write_stalls: Dict) -> List[Dict]:
    """Ranked tree: root cause -> per-line children, by stalled cycles."""
    per_line: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for episode in graph.episodes:
        if episode.end_cycle is None:
            continue
        last_ack = max((graph.nodes[d].cycle for d in episode.defers),
                       default=None)
        kind = _defer_kind(graph, episode)
        for blocked_idx in episode.blocked:
            start = graph.nodes[blocked_idx].cycle
            stalled = episode.end_cycle - start
            if last_ack is None:
                per_line[WB_UNBLOCK][episode.line] += stalled
                continue
            defer_part = max(min(last_ack, episode.end_cycle) - start, 0)
            per_line[f"{WB_DEFER}.{kind}"][episode.line] += defer_part
            per_line[WB_UNBLOCK][episode.line] += stalled - defer_part
    tree: List[Dict] = []
    for cause, lines in per_line.items():
        children = [{"line": line, "cycles": count}
                    for line, count in sorted(lines.items(),
                                              key=lambda kv: (-kv[1], kv[0]))]
        tree.append({
            "cause": cause,
            "cycles": sum(lines.values()),
            "events": len(lines),
            "children": children,
        })
    tree.sort(key=lambda node: (-node["cycles"], node["cause"]))
    return tree


# --------------------------------------------------------------- rendering
def render_blame(payload: Dict, *, top: int = 10, width: int = 72) -> str:
    """ASCII report: blame tree, stall budgets, critical path."""
    from ..analysis.charts import tree_chart
    from ..analysis.tables import format_table

    lines: List[str] = []
    tree = payload["blame_tree"]
    if tree:
        entries = []
        for node in tree[:top]:
            entries.append((0, node["cause"], node["cycles"]))
            for child in node["children"][:3]:
                entries.append((1, f"line {child['line']:#x}",
                                child["cycles"]))
        lines.append(tree_chart(entries, title="write-stall blame tree",
                                unit="cyc"))
    ws, cs = payload["write_stalls"], payload["commit_stalls"]
    rows = [["write", str(ws["total_cycles"]), str(ws["attributed_cycles"]),
             f"{ws['coverage']:.1%}"],
            ["commit", str(cs["total_cycles"]), str(cs["attributed_cycles"]),
             f"{cs['coverage']:.1%}"]]
    lines.append(format_table(["budget", "stall cycles", "attributed",
                               "coverage"], rows, title="stall budgets"))
    cause_rows = [[name, str(count)]
                  for name, count in cs["causes"].items()]
    if cause_rows:
        lines.append(format_table(["commit-stall cause", "cycles"],
                                  cause_rows))
    path = payload["critical_path"]
    if path:
        hops = [[str(hop["cycle"]), hop["kind"], str(hop["tile"]),
                 (f"{hop['line']:#x}" if hop["line"] not in (-1, None)
                  else "-"),
                 hop["via"] or "-", f"+{hop['dcycles']}"]
                for hop in path[-top:]]
        lines.append(format_table(
            ["cycle", "event", "tile", "line", "via", "wait"], hops,
            title=f"critical path ({len(path)} hops, "
                  f"showing last {min(top, len(path))})"))
    return "\n\n".join(lines)
