"""Sampled time-series telemetry (``repro-metrics/1``).

Where the event stream (PR 1) answers "what happened" and blame graphs
(PR 4) answer "what stalled whom", this layer answers "how full was
everything, over time, per tile": a :class:`MetricsSampler` snapshots a
fixed catalog of occupancy gauges every ``period`` cycles and the
snapshots serialize to a versioned JSONL stream, feed the ``repro
stats`` tables, and render as per-tile x time heatmaps.

Design constraints, in order:

* **Zero cost when off.**  Nothing in the simulator hot path maintains
  telemetry state; every gauge is read lazily from existing component
  structures (``len()`` of queues, the sparse directory array, the
  mesh's link accumulator) at sample time.  An unsampled run performs
  one ``is not None`` check per loop iteration and allocates nothing.
* **Deterministic.**  Samples are stamped with simulated cycles and
  hold only integers derived from simulation state, so the stream is
  byte-identical across serial, process-pool and cache-replay runs —
  the same contract the experiment engine gives ``SimResult``.
* **Self-describing.**  The stream header carries the gauge catalog and
  per-gauge capacities, so saturation analysis (and the dashboard) can
  be re-derived offline from the file alone.

Sampling happens on period boundaries of the simulated clock.  When the
event queue fast-forwards over an idle region the skipped boundaries
collapse into one sample stamped at the cycle actually reached — the
sample records real state, never interpolation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .export import PathLike, open_output

#: JSONL metrics format version (the first record of every stream).
METRICS_SCHEMA = "repro-metrics/1"

#: Default sampling period, simulated cycles.
DEFAULT_PERIOD = 100

#: Gauge catalog: key -> what the per-tile integer measures.  Order is
#: the canonical presentation order (tables, heatmaps, dashboard).
GAUGES: Dict[str, str] = {
    "rob": "ROB occupancy (in-flight window on in-order cores)",
    "lq": "load-queue fill",
    "ldt": "lockdown-table fill",
    "sq": "store-queue fill",
    "sb": "store-buffer depth",
    "lockdowns": "active lockdowns (M-speculative LQ entries + LDT)",
    "mshr": "private-cache MSHR occupancy",
    "dirq": "directory pending-queue depth (parked + alloc-stalled)",
    "wb": "directory entries held in WritersBlock",
    "evb": "directory eviction-buffer occupancy",
    "link": "busiest outgoing mesh link, flit-cycles this window",
}

GAUGE_KEYS = tuple(GAUGES)


def gauge_capacities(params) -> Dict[str, Optional[int]]:
    """Per-gauge saturation ceilings for a :class:`SystemParams`.

    ``None`` marks unbounded gauges; ``link`` saturates against the
    sampling window instead (handled by :func:`summarize_metrics`).
    """
    cp = params.core
    rob_cap = (cp.rob_entries if params.core_type == "ooo"
               else max(cp.iq_entries, 8))  # in-order in-flight window
    return {
        "rob": rob_cap,
        "lq": cp.lq_entries,
        "ldt": cp.ldt_entries,
        "sq": cp.sq_entries,
        "sb": cp.sb_entries,
        "lockdowns": cp.lq_entries + cp.ldt_entries,
        "mshr": params.cache.mshr_entries,
        "dirq": None,
        "wb": None,
        "evb": params.cache.dir_eviction_buffer,
        "link": None,
    }


class MetricsSampler:
    """Snapshots per-tile gauges on period boundaries of a system run.

    Create via :meth:`repro.sim.system.MulticoreSystem.sample_metrics`
    before ``run()``; the finished payload lands on the result's
    ``telemetry`` field.
    """

    def __init__(self, system, period: int = DEFAULT_PERIOD) -> None:
        if period < 1:
            raise ValueError(f"sampling period must be >= 1, got {period}")
        self.system = system
        self.period = period
        #: Next cycle at which the run loop should call :meth:`take`.
        self.next_cycle = period
        self.samples: List[Dict] = []
        self._cycles = 0
        system.network.track_link_busy()

    def take(self, now: int) -> None:
        """Record one sample at cycle *now*; advance the next boundary."""
        self.samples.append(self._snapshot(now))
        self.next_cycle = now - (now % self.period) + self.period

    def finish(self, now: int) -> None:
        """Flush a final sample at end-of-run (unless one just landed)."""
        self._cycles = now
        if not self.samples or self.samples[-1]["cycle"] < now:
            self.samples.append(self._snapshot(now))

    def _snapshot(self, cycle: int) -> Dict:
        system = self.system
        tiles = len(system.cores)
        data: Dict[str, List[int]] = {key: [0] * tiles for key in GAUGE_KEYS}
        for tile in range(tiles):
            for key, value in system.cores[tile].gauges().items():
                data[key][tile] = value
            for key, value in system.caches[tile].gauges().items():
                data[key][tile] = value
            for key, value in system.directories[tile].gauges().items():
                data[key][tile] = value
        data["link"] = system.network.drain_link_busy()
        sample: Dict = {"cycle": cycle}
        sample.update(data)
        return sample

    def payload(self, *, meta: Optional[Dict] = None) -> Dict:
        """The full ``repro-metrics/1`` payload (header + samples)."""
        out: Dict = {
            "schema": METRICS_SCHEMA,
            "period": self.period,
            "tiles": len(self.system.cores),
            "cycles": self._cycles,
            "gauges": list(GAUGE_KEYS),
            "capacities": gauge_capacities(self.system.params),
        }
        if meta:
            out["meta"] = dict(meta)
        out["samples"] = list(self.samples)
        return out


# ----------------------------------------------------------------- JSONL
def write_metrics_jsonl(payload: Dict, path: PathLike) -> int:
    """Dump a metrics payload: header record, then one sample per line.

    Returns the sample count (the header is not counted).  ``path`` may
    be ``-`` to stream to stdout.
    """
    header = {key: value for key, value in payload.items()
              if key != "samples"}
    count = 0
    with open_output(path) as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for sample in payload["samples"]:
            handle.write(json.dumps(sample, sort_keys=True) + "\n")
            count += 1
    return count


def read_metrics_jsonl(path: PathLike) -> Dict:
    """Load a metrics stream back into its payload dict.

    Raises :class:`ValueError` when the header record is missing or
    declares a version this reader does not understand.
    """
    header: Optional[Dict] = None
    samples: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if header is None:
                if not isinstance(record, dict) or "schema" not in record:
                    raise ValueError(
                        f"{path}: missing {METRICS_SCHEMA!r} header record "
                        "(re-export the stream with this version of repro)")
                if record["schema"] != METRICS_SCHEMA:
                    raise ValueError(
                        f"{path}: unknown metrics schema "
                        f"{record['schema']!r} (this reader understands "
                        f"{METRICS_SCHEMA!r})")
                header = record
                continue
            samples.append(record)
    if header is None:
        raise ValueError(f"{path}: empty metrics file (no header record)")
    payload = dict(header)
    payload["samples"] = samples
    return payload


# -------------------------------------------------------------- analysis
def tile_series(payload: Dict, gauge: str) -> List[List[int]]:
    """``rows[tile][sample]`` matrix for one gauge (heatmap input)."""
    if gauge not in payload["gauges"]:
        raise KeyError(f"unknown gauge {gauge!r}; "
                       f"stream carries {payload['gauges']}")
    tiles = payload["tiles"]
    rows: List[List[int]] = [[] for __ in range(tiles)]
    for sample in payload["samples"]:
        values = sample[gauge]
        for tile in range(tiles):
            rows[tile].append(values[tile])
    return rows


def sample_cycles(payload: Dict) -> List[int]:
    """The cycle stamps of every sample (heatmap time axis)."""
    return [sample["cycle"] for sample in payload["samples"]]


def summarize_metrics(payload: Dict) -> Dict:
    """Per-gauge occupancy/saturation summary, derived purely from the
    payload — recomputing this from a saved stream reproduces the live
    run's summary byte-for-byte.

    Every gauge reports ``mean``/``peak`` over all (sample, tile)
    points, the fraction of points at capacity (``saturation``), and
    the tile with the highest mean (``hottest_tile``).  ``link`` is
    normalized by each sample's window length, so its mean/peak are
    utilization fractions in [0, 1+] (a send can occupy a link past the
    window edge).
    """
    tiles = payload["tiles"]
    capacities = payload.get("capacities", {})
    samples = payload["samples"]
    summary: Dict = {
        "tiles": tiles,
        "samples": len(samples),
        "cycles": payload.get("cycles", 0),
        "period": payload.get("period", 0),
        "gauges": {},
    }
    for gauge in payload["gauges"]:
        cap = capacities.get(gauge)
        points = 0
        total = 0.0
        peak = 0.0
        saturated = 0
        per_tile_total = [0.0] * tiles
        prev_cycle = 0
        for sample in samples:
            window = max(sample["cycle"] - prev_cycle, 1)
            prev_cycle = sample["cycle"]
            for tile, value in enumerate(sample[gauge]):
                if gauge == "link":
                    util = value / window
                    if value >= window:
                        saturated += 1
                    value = util
                elif cap is not None and value >= cap:
                    saturated += 1
                total += value
                per_tile_total[tile] += value
                if value > peak:
                    peak = value
                points += 1
        hottest = 0
        for tile in range(tiles):
            if per_tile_total[tile] > per_tile_total[hottest]:
                hottest = tile
        summary["gauges"][gauge] = {
            "capacity": cap,
            "mean": round(total / points, 4) if points else 0.0,
            "peak": round(peak, 4),
            "saturation": round(saturated / points, 4) if points else 0.0,
            "hottest_tile": hottest,
            "hottest_mean": (round(per_tile_total[hottest] / len(samples), 4)
                             if samples else 0.0),
        }
    return summary
