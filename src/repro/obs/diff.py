"""Cross-run trace diffing: align two runs, report causal divergence.

Loads are aligned by **instruction identity** ``(tile, seq)`` — the
per-core program-order sequence number — never by ``uid`` (uids come
from a process-global counter and are not stable across runs).  On top
of the alignment the diff reports:

* total-cycle and per-budget stall deltas (from each run's blame
  payload),
* causal-structure divergence: per-edge-type counts, WritersBlock
  episode counts/durations, squash counts,
* the loads whose perform latency diverged the most.

Payload schema: ``repro-diff/1``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from .blame import build_blame
from .causal import CausalGraph
from .events import Event, Kind

DIFF_SCHEMA = "repro-diff/1"


def _load_latencies(events: Sequence[Event]) -> Dict[Tuple[int, int], Dict]:
    """Per (tile, seq): issue/perform cycles of the *surviving* attempt.

    A squashed load re-issues with a fresh uid but the same seq; later
    attempts overwrite earlier ones, so the surviving execution wins.
    """
    seq_of: Dict[Tuple[int, int], int] = {}  # (tile, uid) -> seq
    loads: Dict[Tuple[int, int], Dict] = {}
    for event in events:
        if event.kind == Kind.LOAD_ISSUE:
            key = (event.tile, event.args["seq"])
            seq_of[(event.tile, event.args["uid"])] = event.args["seq"]
            loads[key] = {"issue": event.cycle, "perform": None,
                          "line": event.args["line"]}
        elif event.kind == Kind.LOAD_PERFORM:
            seq = seq_of.get((event.tile, event.args["uid"]))
            if seq is not None:
                entry = loads.get((event.tile, seq))
                if entry is not None:
                    entry["perform"] = event.cycle
    return loads


def _edge_counts(graph: CausalGraph) -> Dict[str, int]:
    counts: Dict[str, int] = defaultdict(int)
    for edge in graph.edges:
        counts[edge.etype] += 1
    return dict(sorted(counts.items()))


def _kind_counts(events: Sequence[Event]) -> Dict[str, int]:
    counts: Dict[str, int] = defaultdict(int)
    for event in events:
        counts[event.kind] += 1
    return dict(sorted(counts.items()))


def _side_summary(label: str, events: Sequence[Event], cycles: int) -> Dict:
    graph = CausalGraph.from_events(events)
    blame = build_blame(graph, cycles=cycles)
    durations = [ep.end_cycle - ep.begin_cycle for ep in graph.episodes
                 if ep.end_cycle is not None]
    return {
        "label": label,
        "cycles": cycles,
        "events": len(events),
        "edge_counts": _edge_counts(graph),
        "kind_counts": _kind_counts(events),
        "wb_episodes": len(graph.episodes),
        "wb_cycles": sum(durations),
        "write_stalls": blame["write_stalls"],
        "commit_stalls": blame["commit_stalls"],
    }


def diff_traces(events_a: Sequence[Event], events_b: Sequence[Event], *,
                cycles: Tuple[int, int],
                labels: Tuple[str, str] = ("a", "b"),
                top: int = 10) -> Dict:
    """Structural + stall-budget diff of two event streams."""
    side_a = _side_summary(labels[0], events_a, cycles[0])
    side_b = _side_summary(labels[1], events_b, cycles[1])

    def _delta(path: List[str]) -> int:
        va, vb = side_a, side_b
        for key in path:
            va, vb = va[key], vb[key]
        return vb - va

    loads_a = _load_latencies(events_a)
    loads_b = _load_latencies(events_b)
    shared = sorted(set(loads_a) & set(loads_b))
    diverging: List[Dict] = []
    for key in shared:
        la, lb = loads_a[key], loads_b[key]
        if la["perform"] is None or lb["perform"] is None:
            continue
        lat_a = la["perform"] - la["issue"]
        lat_b = lb["perform"] - lb["issue"]
        if lat_a != lat_b:
            diverging.append({"tile": key[0], "seq": key[1],
                              "line": la["line"],
                              "latency_a": lat_a, "latency_b": lat_b,
                              "delta": lat_b - lat_a})
    diverging.sort(key=lambda d: (-abs(d["delta"]), d["tile"], d["seq"]))

    causes = sorted(set(side_a["write_stalls"]["causes"])
                    | set(side_b["write_stalls"]["causes"]))
    stall_deltas = {
        "cycles": _delta(["cycles"]),
        "write_stall_cycles": _delta(["write_stalls", "total_cycles"]),
        "commit_stall_cycles": _delta(["commit_stalls", "total_cycles"]),
        "wb_cycles": _delta(["wb_cycles"]),
        "write_stall_causes": {
            name: (side_b["write_stalls"]["causes"].get(
                       name, {"cycles": 0})["cycles"]
                   - side_a["write_stalls"]["causes"].get(
                       name, {"cycles": 0})["cycles"])
            for name in causes},
        "commit_stall_causes": {
            name: (side_b["commit_stalls"]["causes"].get(name, 0)
                   - side_a["commit_stalls"]["causes"].get(name, 0))
            for name in sorted(set(side_a["commit_stalls"]["causes"])
                               | set(side_b["commit_stalls"]["causes"]))},
    }
    return {
        "schema": DIFF_SCHEMA,
        "a": side_a,
        "b": side_b,
        "stall_deltas": stall_deltas,
        "aligned_loads": len(shared),
        "diverging_loads": diverging[:top],
        "diverging_load_count": len(diverging),
    }


def render_diff(payload: Dict, *, top: int = 10) -> str:
    """ASCII report of a trace diff."""
    from ..analysis.tables import format_table

    side_a, side_b = payload["a"], payload["b"]
    la, lb = side_a["label"], side_b["label"]
    deltas = payload["stall_deltas"]
    lines: List[str] = []

    def _fmt(value: int) -> str:
        return f"{value:+d}" if value else "0"

    rows = [
        ["cycles", str(side_a["cycles"]), str(side_b["cycles"]),
         _fmt(deltas["cycles"])],
        ["write-stall cycles", str(side_a["write_stalls"]["total_cycles"]),
         str(side_b["write_stalls"]["total_cycles"]),
         _fmt(deltas["write_stall_cycles"])],
        ["commit-stall cycles", str(side_a["commit_stalls"]["total_cycles"]),
         str(side_b["commit_stalls"]["total_cycles"]),
         _fmt(deltas["commit_stall_cycles"])],
        ["WritersBlock episodes", str(side_a["wb_episodes"]),
         str(side_b["wb_episodes"]),
         _fmt(side_b["wb_episodes"] - side_a["wb_episodes"])],
        ["WritersBlock cycles", str(side_a["wb_cycles"]),
         str(side_b["wb_cycles"]), _fmt(deltas["wb_cycles"])],
    ]
    lines.append(format_table(["stall budget", la, lb, "delta"], rows,
                              title=f"trace diff: {la} vs {lb}"))

    cause_rows = [[name, _fmt(delta)] for name, delta in
                  {**deltas["write_stall_causes"],
                   **deltas["commit_stall_causes"]}.items() if delta]
    if cause_rows:
        lines.append(format_table(["root cause", f"delta ({lb} - {la})"],
                                  cause_rows, title="stall-budget deltas"))

    structural = []
    for kind in sorted(set(side_a["kind_counts"])
                       | set(side_b["kind_counts"])):
        ca = side_a["kind_counts"].get(kind, 0)
        cb = side_b["kind_counts"].get(kind, 0)
        if ca != cb:
            structural.append([kind, str(ca), str(cb), _fmt(cb - ca)])
    if structural:
        lines.append(format_table(["event kind", la, lb, "delta"],
                                  structural, title="causal-structure "
                                  "divergence (event counts)"))

    if payload["diverging_loads"]:
        rows = [[f"core{d['tile']}", str(d["seq"]), f"{d['line']:#x}",
                 str(d["latency_a"]), str(d["latency_b"]), _fmt(d["delta"])]
                for d in payload["diverging_loads"][:top]]
        lines.append(format_table(
            ["core", "seq", "line", f"{la} lat", f"{lb} lat", "delta"],
            rows, title=f"top diverging loads "
                        f"({payload['diverging_load_count']} total, "
                        f"{payload['aligned_loads']} aligned)"))
    return "\n\n".join(lines)
