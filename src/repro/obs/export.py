"""Export the event stream and spans to portable formats.

Two formats:

* **JSONL** — a ``{"schema": "repro-trace/1", ...}`` header line, then
  one event per line; lossless round trip through
  :func:`write_events_jsonl` / :func:`read_events_jsonl`.  Loading a
  trace without the header (or with an unknown version) fails loudly so
  offline causal analysis never runs on a stale format.
* **Chrome trace_event JSON** — ``{"traceEvents": [...]}`` with complete
  ("X") events for spans and metadata ("M") events naming the tracks.
  Viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Each tile is one process (``pid``), and within a tile each span
  category gets its own thread (``tid``) so WritersBlock episodes,
  lockdown windows, MSHR occupancy and load lifetimes stack into
  separate tracks.  Timestamps are simulated cycles (1 cycle = 1 "us").
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .events import Event
from .spans import Span

PathLike = Union[str, os.PathLike]

#: JSONL trace format version (the first record of every trace file).
TRACE_SCHEMA = "repro-trace/1"

#: Stable per-tile track (tid) assignment for span categories.
TRACKS = {"load": 0, "lockdown": 1, "mshr": 2, "writersblock": 3}


@contextlib.contextmanager
def open_output(path: PathLike) -> Iterator:
    """Open *path* for writing; ``-`` streams to stdout (left open)."""
    if str(path) == "-":
        yield sys.stdout
        sys.stdout.flush()
    else:
        with open(path, "w") as handle:
            yield handle


# ----------------------------------------------------------------- JSONL
def write_events_jsonl(events: Iterable[Event], path: PathLike, *,
                       meta: Optional[Dict] = None) -> int:
    """Dump a header record then *events* one-per-line.

    Returns the number of events written (the header is not counted).
    ``path`` may be ``-`` to stream to stdout.
    """
    header: Dict[str, object] = {"schema": TRACE_SCHEMA}
    if meta:
        header["meta"] = dict(meta)
    count = 0
    with open_output(path) as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_trace_jsonl(path: PathLike) -> Tuple[Dict, List[Event]]:
    """Load a JSONL trace; returns ``(header, events)``.

    Raises :class:`ValueError` when the header record is missing or
    declares a version this reader does not understand.
    """
    events: List[Event] = []
    header: Optional[Dict] = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if header is None:
                if not isinstance(record, dict) or "schema" not in record:
                    raise ValueError(
                        f"{path}: missing {TRACE_SCHEMA!r} header record "
                        "(re-export the trace with this version of repro)")
                if record["schema"] != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: unknown trace schema {record['schema']!r} "
                        f"(this reader understands {TRACE_SCHEMA!r})")
                header = record
                continue
            events.append(Event.from_dict(record))
    if header is None:
        raise ValueError(f"{path}: empty trace file (no header record)")
    return header, events


def read_events_jsonl(path: PathLike) -> List[Event]:
    """Load just the events of a JSONL trace (header validated)."""
    __, events = read_trace_jsonl(path)
    return events


# ---------------------------------------------------------- Chrome trace
def spans_to_trace_events(spans: Sequence[Span]) -> List[Dict]:
    """Convert spans to trace_event dicts (one process per tile)."""
    out: List[Dict] = []
    tiles = sorted({span.tile for span in spans})
    for tile in tiles:
        out.append({"name": "process_name", "ph": "M", "pid": tile, "tid": 0,
                    "args": {"name": f"tile{tile}"}})
        for cat, tid in sorted(TRACKS.items(), key=lambda item: item[1]):
            out.append({"name": "thread_name", "ph": "M", "pid": tile,
                        "tid": tid, "args": {"name": cat}})
    for span in spans:
        end = span.end if span.end is not None else span.start
        out.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start,
            "dur": max(end - span.start, 0),
            "pid": span.tile,
            "tid": TRACKS.get(span.cat, len(TRACKS)),
            "args": dict(span.args),
        })
    return out


def write_chrome_trace(spans: Sequence[Span], path: PathLike, *,
                       metadata: Optional[Dict] = None) -> int:
    """Write a Chrome trace JSON file; returns the span-event count."""
    trace_events = spans_to_trace_events(spans)
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    with open_output(path) as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return sum(1 for event in trace_events if event["ph"] == "X")


def load_chrome_trace(path: PathLike) -> Dict:
    """Parse a Chrome trace file back into its JSON payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace_event file")
    return payload


def trace_spans(payload: Dict) -> List[Span]:
    """Reconstruct :class:`Span` objects from a loaded Chrome trace."""
    spans: List[Span] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        spans.append(Span(
            cat=event.get("cat", ""), name=event["name"],
            tile=int(event["pid"]), start=int(event["ts"]),
            end=int(event["ts"]) + int(event["dur"]),
            args=dict(event.get("args", {}))))
    return spans
