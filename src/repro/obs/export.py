"""Export the event stream and spans to portable formats.

Two formats:

* **JSONL** — one event per line, lossless round trip through
  :func:`write_events_jsonl` / :func:`read_events_jsonl`.
* **Chrome trace_event JSON** — ``{"traceEvents": [...]}`` with complete
  ("X") events for spans and metadata ("M") events naming the tracks.
  Viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Each tile is one process (``pid``), and within a tile each span
  category gets its own thread (``tid``) so WritersBlock episodes,
  lockdown windows, MSHR occupancy and load lifetimes stack into
  separate tracks.  Timestamps are simulated cycles (1 cycle = 1 "us").
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .events import Event
from .spans import Span

PathLike = Union[str, os.PathLike]

#: Stable per-tile track (tid) assignment for span categories.
TRACKS = {"load": 0, "lockdown": 1, "mshr": 2, "writersblock": 3}


# ----------------------------------------------------------------- JSONL
def write_events_jsonl(events: Iterable[Event], path: PathLike) -> int:
    """Dump *events* one-per-line; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_events_jsonl(path: PathLike) -> List[Event]:
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_dict(json.loads(line)))
    return events


# ---------------------------------------------------------- Chrome trace
def spans_to_trace_events(spans: Sequence[Span]) -> List[Dict]:
    """Convert spans to trace_event dicts (one process per tile)."""
    out: List[Dict] = []
    tiles = sorted({span.tile for span in spans})
    for tile in tiles:
        out.append({"name": "process_name", "ph": "M", "pid": tile, "tid": 0,
                    "args": {"name": f"tile{tile}"}})
        for cat, tid in sorted(TRACKS.items(), key=lambda item: item[1]):
            out.append({"name": "thread_name", "ph": "M", "pid": tile,
                        "tid": tid, "args": {"name": cat}})
    for span in spans:
        end = span.end if span.end is not None else span.start
        out.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start,
            "dur": max(end - span.start, 0),
            "pid": span.tile,
            "tid": TRACKS.get(span.cat, len(TRACKS)),
            "args": dict(span.args),
        })
    return out


def write_chrome_trace(spans: Sequence[Span], path: PathLike, *,
                       metadata: Optional[Dict] = None) -> int:
    """Write a Chrome trace JSON file; returns the span-event count."""
    trace_events = spans_to_trace_events(spans)
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return sum(1 for event in trace_events if event["ph"] == "X")


def load_chrome_trace(path: PathLike) -> Dict:
    """Parse a Chrome trace file back into its JSON payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace_event file")
    return payload


def trace_spans(payload: Dict) -> List[Span]:
    """Reconstruct :class:`Span` objects from a loaded Chrome trace."""
    spans: List[Span] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        spans.append(Span(
            cat=event.get("cat", ""), name=event["name"],
            tile=int(event["pid"]), start=int(event["ts"]),
            end=int(event["ts"]) + int(event["dur"]),
            args=dict(event.get("args", {}))))
    return spans
