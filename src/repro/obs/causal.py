"""Causal dependency graph over the observability event stream.

Reconstructs *who waits for whom* from the raw event stream — live as a
bus subscriber (:class:`CausalObserver`) or offline from an exported
JSONL trace (:meth:`CausalGraph.from_events`).  Both paths build the
same graph: nodes are events, edges are happens-because relations.

Edge types (see docs/observability.md for the full causal model):

* ``chain``   — lifecycle steps of one entity (load issue → perform →
  ordered/commit, wb.begin → wb.end, mshr.alloc → mshr.free,
  lockdown.begin → lockdown.export → ldt.release).
* ``nack``    — an open lockdown caused an invalidation Nack
  (lockdown.begin/export → inv.nacked on the same (tile, line)).
* ``enter``   — the Nack drove the home bank into WritersBlock
  (inv.nacked → wb.begin on the same line).
* ``block``   — a write parked behind the episode (wb.begin →
  dir.write_blocked).
* ``tearoff`` — a read during the episode was served a use-once copy
  (wb.begin → dir.tearoff).
* ``release`` — the event that lifted the last lockdown produced the
  deferred Ack (load.ordered / load.squash / ldt.release →
  deferred.ack, resolved through the Ack's ``via_kind``/``via_id``).
* ``defer``   — the deferred Ack let the episode end (deferred.ack →
  wb.end on the same line).
* ``bind``    — the memory response that performed a load (mshr.alloc
  or dir.tearoff → load.perform).

The write-stall story the paper tells is therefore a literal path:
load.perform → lockdown.begin → inv.nacked → wb.begin →
dir.write_blocked, resolved by load.ordered → deferred.ack → wb.end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .events import Event, EventBus, Kind

#: Event kinds the causal graph consumes (everything except the
#: high-volume ``net.send`` and per-cycle ``commit.window`` feeds).
CAUSAL_KINDS = (
    Kind.LOAD_ISSUE, Kind.LOAD_PERFORM, Kind.LOAD_ORDERED,
    Kind.LOAD_COMMIT, Kind.LOAD_SQUASH,
    Kind.LOCKDOWN_BEGIN, Kind.LOCKDOWN_EXPORT, Kind.LDT_RELEASE,
    Kind.INV_NACKED, Kind.DEFERRED_ACK,
    Kind.WB_BEGIN, Kind.WB_END, Kind.DIR_TEAROFF, Kind.DIR_WRITE_BLOCKED,
    Kind.MSHR_ALLOC, Kind.MSHR_FREE,
    Kind.COMMIT_STALL,
)


class EdgeType:
    CHAIN = "chain"
    NACK = "nack"
    ENTER = "enter"
    BLOCK = "block"
    TEAROFF = "tearoff"
    RELEASE = "release"
    DEFER = "defer"
    BIND = "bind"


@dataclass(frozen=True, slots=True)
class Edge:
    """Directed causal edge between two node (event) indices."""

    src: int
    dst: int
    etype: str


@dataclass(slots=True)
class WBEpisode:
    """One WritersBlock window at a directory bank, with its cast."""

    tile: int
    line: int
    begin: int                    # wb.begin node index
    begin_cycle: int
    end: Optional[int] = None     # wb.end node index (None if unfinished)
    end_cycle: Optional[int] = None
    nack: Optional[int] = None    # the inv.nacked that caused entry
    blocked: Tuple = ()           # dir.write_blocked node indices
    tearoffs: Tuple = ()          # dir.tearoff node indices
    defers: Tuple = ()            # deferred.ack node indices

    def __post_init__(self) -> None:
        self.blocked = list(self.blocked)
        self.tearoffs = list(self.tearoffs)
        self.defers = list(self.defers)


class CausalGraph:
    """Incrementally-built causal DAG over an event stream.

    Feed events in stream order through :meth:`add`; edges always point
    from an earlier node to the node being added, so ``edges`` is sorted
    by destination — the property the critical-path pass relies on.
    """

    def __init__(self) -> None:
        self.nodes: List[Event] = []
        self.edges: List[Edge] = []
        self.episodes: List[WBEpisode] = []
        self.stalls: List[int] = []  # commit.stall node indices
        # --- builder state (mirrors the simulator's own bookkeeping) ---
        self._load_nodes: Dict[Tuple[int, int], int] = {}    # (tile,uid)
        self._load_release: Dict[Tuple[int, int], int] = {}  # lift events
        self._holder_nodes: Dict[Tuple[int, str, int], int] = {}
        self._holder_lines: Dict[Tuple[int, str, int], int] = {}
        self._line_holders: Dict[Tuple[int, int], Set] = {}
        self._open_mshr: Dict[Tuple[int, int, str], int] = {}
        self._last_fill: Dict[Tuple[int, int], int] = {}  # feeds bind edges
        self._open_wb: Dict[Tuple[int, int], WBEpisode] = {}
        self._last_nack: Dict[int, int] = {}  # line -> inv.nacked node

    # ------------------------------------------------------------ building
    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "CausalGraph":
        graph = cls()
        for event in events:
            graph.add(event)
        return graph

    def add(self, event: Event) -> None:
        kind = event.kind
        handler = _HANDLERS.get(kind)
        if handler is None:
            return  # uninteresting kind (net.send, commit.window, ...)
        idx = len(self.nodes)
        self.nodes.append(event)
        handler(self, idx, event)

    def _edge(self, src: Optional[int], dst: int, etype: str) -> None:
        if src is not None:
            self.edges.append(Edge(src, dst, etype))

    # Handlers: one per kind, named _on_<snake>.  Each links the new
    # node backwards into the graph and updates builder state.
    def _on_load_issue(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        key = (tile, args["uid"])
        self._load_nodes[key] = idx
        # A miss allocates its MSHR before load.issue is emitted, so the
        # open read MSHR on this line is this load's fill dependency.
        mshr = self._open_mshr.get((tile, args["line"], "read"))
        self._edge(mshr, idx, EdgeType.BIND)

    def _on_load_perform(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        key = (tile, args["uid"])
        self._edge(self._load_nodes.get(key), idx, EdgeType.CHAIN)
        self._load_nodes[key] = idx
        if args.get("uncacheable"):
            # SoS bypass: the perform was fed by a tear-off reply.
            self._edge(self._last_fill.get((tile, args["line"])), idx,
                       EdgeType.BIND)

    def _on_lockdown_begin(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        self._edge(self._load_nodes.get((tile, args["uid"])), idx,
                   EdgeType.CHAIN)
        self._set_holder((tile, "lq", args["uid"]), args["line"], idx)

    def _on_lockdown_export(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        old = (tile, "lq", args["uid"])
        self._edge(self._holder_nodes.get(old), idx, EdgeType.CHAIN)
        self._clear_holder(old)
        self._set_holder((tile, "ldt", args["index"]), args["line"], idx)

    def _on_ldt_release(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        key = (tile, "ldt", args["index"])
        self._edge(self._holder_nodes.get(key), idx, EdgeType.CHAIN)
        self._clear_holder(key)
        self._load_release[(tile, ("ldt", args["index"]))] = idx

    def _on_load_ordered(self, idx: int, event: Event) -> None:
        self._close_load(idx, event, squashed=False)

    def _on_load_squash(self, idx: int, event: Event) -> None:
        self._close_load(idx, event, squashed=True)

    def _close_load(self, idx: int, event: Event, *, squashed: bool) -> None:
        tile, args = event.tile, event.args
        key = (tile, args["uid"])
        self._edge(self._load_nodes.get(key), idx, EdgeType.CHAIN)
        self._load_nodes[key] = idx
        self._clear_holder((tile, "lq", args["uid"]))
        self._load_release[(tile, ("lq", args["uid"]))] = idx

    def _on_load_commit(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        key = (tile, args["uid"])
        self._edge(self._load_nodes.get(key), idx, EdgeType.CHAIN)
        self._load_nodes[key] = idx

    def _on_inv_nacked(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        line = args["line"]
        for holder_key in sorted(self._line_holders.get((tile, line), ())):
            self._edge(self._holder_nodes.get((tile,) + holder_key), idx,
                       EdgeType.NACK)
        self._last_nack[line] = idx

    def _on_wb_begin(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        line = args["line"]
        episode = WBEpisode(tile=tile, line=line, begin=idx,
                            begin_cycle=event.cycle,
                            nack=self._last_nack.get(line))
        self._edge(episode.nack, idx, EdgeType.ENTER)
        self._open_wb[(tile, line)] = episode
        self.episodes.append(episode)

    def _on_dir_write_blocked(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        episode = self._open_wb.get((tile, args["line"]))
        if episode is not None and args.get("cause") == "writersblock":
            episode.blocked.append(idx)
            self._edge(episode.begin, idx, EdgeType.BLOCK)

    def _on_dir_tearoff(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        self._last_fill[(args["requester"], args["line"])] = idx
        episode = self._open_wb.get((tile, args["line"]))
        if episode is not None:
            episode.tearoffs.append(idx)
            self._edge(episode.begin, idx, EdgeType.TEAROFF)

    def _on_deferred_ack(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        via = (args["via_kind"], args["via_id"])
        self._edge(self._load_release.get((tile, via)), idx,
                   EdgeType.RELEASE)
        for episode in self._open_wb.values():
            if episode.line == args["line"]:
                episode.defers.append(idx)

    def _on_wb_end(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        episode = self._open_wb.pop((tile, args["line"]), None)
        if episode is None:
            return
        episode.end = idx
        episode.end_cycle = event.cycle
        self._edge(episode.begin, idx, EdgeType.CHAIN)
        for defer in episode.defers:
            self._edge(defer, idx, EdgeType.DEFER)

    def _on_mshr_alloc(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        self._open_mshr[(tile, args["line"], args["kind"])] = idx

    def _on_mshr_free(self, idx: int, event: Event) -> None:
        tile, args = event.tile, event.args
        key = (tile, args["line"], args["kind"])
        self._edge(self._open_mshr.pop(key, None), idx, EdgeType.CHAIN)
        if args["kind"] == "read":
            self._last_fill[(tile, args["line"])] = idx

    def _on_commit_stall(self, idx: int, event: Event) -> None:
        self.stalls.append(idx)

    # ------------------------------------------------------- holder helpers
    def _set_holder(self, key, line: int, idx: int) -> None:
        self._holder_nodes[key] = idx
        self._holder_lines[key] = line
        self._line_holders.setdefault((key[0], line), set()).add(key[1:])

    def _clear_holder(self, key) -> None:
        self._holder_nodes.pop(key, None)
        line = self._holder_lines.pop(key, None)
        if line is not None:
            holders = self._line_holders.get((key[0], line))
            if holders is not None:
                holders.discard(key[1:])
                if not holders:
                    del self._line_holders[(key[0], line)]

    # -------------------------------------------------------------- queries
    def signature(self) -> List[Tuple]:
        """Order-stable structural fingerprint (for round-trip checks)."""
        nodes = [(e.cycle, e.kind, e.tile) for e in self.nodes]
        edges = [(e.src, e.dst, e.etype) for e in self.edges]
        return [tuple(nodes), tuple(edges)]

    def critical_path(self) -> List[Dict]:
        """Longest causal chain by elapsed cycles.

        Classic longest-path DP over the DAG: edges are already sorted
        by destination (see :meth:`add`), so a single forward sweep
        relaxes every edge in a valid topological order.  Edge weight is
        the cycle gap between its endpoints (negative gaps — e.g. a
        release recorded after the ack it explains — contribute zero).
        Returns the path as hop dicts, earliest first.
        """
        n = len(self.nodes)
        if n == 0:
            return []
        dist = [0] * n
        back: List[Optional[Edge]] = [None] * n
        cycles = [event.cycle for event in self.nodes]
        for edge in self.edges:
            weight = max(cycles[edge.dst] - cycles[edge.src], 0)
            if dist[edge.src] + weight > dist[edge.dst]:
                dist[edge.dst] = dist[edge.src] + weight
                back[edge.dst] = edge
        tail = max(range(n), key=lambda i: (dist[i], -i))
        path: List[Dict] = []
        idx: Optional[int] = tail
        while idx is not None:
            edge = back[idx]
            event = self.nodes[idx]
            path.append({
                "cycle": event.cycle, "kind": event.kind,
                "tile": event.tile, "line": event.args.get("line", -1),
                "via": edge.etype if edge else None,
                "dcycles": (event.cycle - self.nodes[edge.src].cycle
                            if edge else 0),
            })
            idx = edge.src if edge else None
        path.reverse()
        return path


_HANDLERS = {
    Kind.LOAD_ISSUE: CausalGraph._on_load_issue,
    Kind.LOAD_PERFORM: CausalGraph._on_load_perform,
    Kind.LOAD_ORDERED: CausalGraph._on_load_ordered,
    Kind.LOAD_COMMIT: CausalGraph._on_load_commit,
    Kind.LOAD_SQUASH: CausalGraph._on_load_squash,
    Kind.LOCKDOWN_BEGIN: CausalGraph._on_lockdown_begin,
    Kind.LOCKDOWN_EXPORT: CausalGraph._on_lockdown_export,
    Kind.LDT_RELEASE: CausalGraph._on_ldt_release,
    Kind.INV_NACKED: CausalGraph._on_inv_nacked,
    Kind.DEFERRED_ACK: CausalGraph._on_deferred_ack,
    Kind.WB_BEGIN: CausalGraph._on_wb_begin,
    Kind.WB_END: CausalGraph._on_wb_end,
    Kind.DIR_TEAROFF: CausalGraph._on_dir_tearoff,
    Kind.DIR_WRITE_BLOCKED: CausalGraph._on_dir_write_blocked,
    Kind.MSHR_ALLOC: CausalGraph._on_mshr_alloc,
    Kind.MSHR_FREE: CausalGraph._on_mshr_free,
    Kind.COMMIT_STALL: CausalGraph._on_commit_stall,
}


class CausalObserver:
    """Live bus subscriber building a :class:`CausalGraph` as a run goes."""

    def __init__(self, bus: EventBus) -> None:
        self.graph = CausalGraph()
        self._sub = bus.subscribe(self.graph.add, kinds=CAUSAL_KINDS)

    def close(self) -> None:
        self._sub.close()
