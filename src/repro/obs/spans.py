"""Fold begin/end events into spans (episodes with a start and end cycle).

The paper's headline evidence is episodic — how long a WritersBlock
entry blocks writers (Fig. 8, footnote 2), how long lockdowns live, how
long a load takes from issue to commit — so the tracker reconstructs
four span categories from the bus:

``writersblock``
    one span per WritersBlock episode at a directory bank, keyed by
    (bank tile, line): ``wb.begin`` → ``wb.end``.
``lockdown``
    one span per lockdown window, keyed by the load's dyn uid:
    ``lockdown.begin`` (the load performed M-speculatively) →
    ``load.ordered`` / ``load.squash``, or — after ``lockdown.export``
    re-keys the window to an LDT index — ``ldt.release``.
``mshr``
    MSHR occupancy, keyed by the entry uid: ``mshr.alloc`` → ``mshr.free``.
``load``
    load lifetime, keyed by dyn uid: first ``load.issue`` → ``load.commit``
    (or ``load.squash``), with perform/ordered cycles noted in ``args``.

Closed spans feed duration histograms (``obs.<category>_cycles``) into
the shared :class:`~repro.common.stats.StatsRegistry` so SimResult
surfaces p50/p99 without any extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..common.stats import StatsRegistry
from .events import Event, EventBus, Kind


@dataclass(slots=True, eq=False)
class Span:
    """One reconstructed episode."""

    cat: str
    name: str
    tile: int
    start: int
    end: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> int:
        return 0 if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {"cat": self.cat, "name": self.name, "tile": self.tile,
                "start": self.start, "end": self.end, "args": dict(self.args)}

    def __repr__(self) -> str:
        end = self.end if self.end is not None else "..."
        return f"<Span {self.cat} {self.name!r} tile{self.tile} [{self.start}, {end})>"


#: Kinds the tracker subscribes to (everything span-relevant).
_TRACKED_KINDS = (
    Kind.WB_BEGIN, Kind.WB_END,
    Kind.LOCKDOWN_BEGIN, Kind.LOCKDOWN_EXPORT, Kind.LDT_RELEASE,
    Kind.LOAD_ISSUE, Kind.LOAD_PERFORM, Kind.LOAD_ORDERED,
    Kind.LOAD_COMMIT, Kind.LOAD_SQUASH,
    Kind.MSHR_ALLOC, Kind.MSHR_FREE,
)


class SpanTracker:
    """Bus subscriber that reconstructs spans from the event stream."""

    def __init__(self, bus: EventBus,
                 stats: Optional[StatsRegistry] = None) -> None:
        self.spans: List[Span] = []
        self._stats = stats
        self._open_wb: Dict[Tuple[int, int], Span] = {}       # (tile, line)
        self._open_lockdowns: Dict[Tuple[int, int], Span] = {}  # (tile, uid)
        self._exported: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._open_mshr: Dict[Tuple[int, int], Span] = {}     # (tile, uid)
        self._open_loads: Dict[Tuple[int, int], Span] = {}    # (tile, uid)
        self._sub = bus.subscribe(self._on_event, kinds=_TRACKED_KINDS)

    def close(self) -> None:
        self._sub.close()

    # -------------------------------------------------------------- dispatch
    def _on_event(self, event: Event) -> None:
        kind, args = event.kind, event.args
        if kind == Kind.WB_BEGIN:
            self._begin(self._open_wb, (event.tile, args["line"]), Span(
                cat="writersblock", name=f"WritersBlock L{args['line']:#x}",
                tile=event.tile, start=event.cycle,
                args={"line": args["line"], "writer": args.get("writer")}))
        elif kind == Kind.WB_END:
            self._end(self._open_wb, (event.tile, args["line"]), event.cycle)
        elif kind == Kind.LOCKDOWN_BEGIN:
            self._begin(self._open_lockdowns, (event.tile, args["uid"]), Span(
                cat="lockdown", name=f"lockdown L{args['line']:#x}",
                tile=event.tile, start=event.cycle,
                args={"line": args["line"], "uid": args["uid"]}))
        elif kind == Kind.LOCKDOWN_EXPORT:
            span = self._open_lockdowns.get((event.tile, args["uid"]))
            if span is not None:
                span.args["exported_cycle"] = event.cycle
                span.args["ldt_index"] = args["index"]
                self._exported[(event.tile, args["index"])] = (
                    event.tile, args["uid"])
        elif kind == Kind.LDT_RELEASE:
            owner = self._exported.pop((event.tile, args["index"]), None)
            if owner is not None:
                self._end(self._open_lockdowns, owner, event.cycle)
        elif kind == Kind.LOAD_ISSUE:
            key = (event.tile, args["uid"])
            if key not in self._open_loads:  # replays keep the first issue
                self._begin(self._open_loads, key, Span(
                    cat="load", name=f"load L{args['line']:#x}",
                    tile=event.tile, start=event.cycle,
                    args={"line": args["line"], "uid": args["uid"],
                          "seq": args.get("seq")}))
        elif kind == Kind.LOAD_PERFORM:
            span = self._open_loads.get((event.tile, args["uid"]))
            if span is not None:
                span.args["perform_cycle"] = event.cycle
                if args.get("forwarded"):
                    span.args["forwarded"] = True
                if args.get("uncacheable"):
                    span.args["uncacheable"] = True
        elif kind == Kind.LOAD_ORDERED:
            span = self._open_loads.get((event.tile, args["uid"]))
            if span is not None:
                span.args["ordered_cycle"] = event.cycle
            self._end(self._open_lockdowns, (event.tile, args["uid"]),
                      event.cycle)
        elif kind == Kind.LOAD_COMMIT:
            self._end(self._open_loads, (event.tile, args["uid"]), event.cycle)
        elif kind == Kind.LOAD_SQUASH:
            key = (event.tile, args["uid"])
            self._end(self._open_lockdowns, key, event.cycle, squashed=True)
            self._end(self._open_loads, key, event.cycle, squashed=True)
        elif kind == Kind.MSHR_ALLOC:
            self._begin(self._open_mshr, (event.tile, args["uid"]), Span(
                cat="mshr", name=f"mshr {args['kind']} L{args['line']:#x}",
                tile=event.tile, start=event.cycle,
                args={"line": args["line"], "kind": args["kind"],
                      "sos": bool(args.get("sos"))}))
        elif kind == Kind.MSHR_FREE:
            self._end(self._open_mshr, (event.tile, args["uid"]), event.cycle)

    # ------------------------------------------------------------- mechanics
    def _begin(self, table: Dict, key, span: Span) -> None:
        table[key] = span
        self.spans.append(span)

    def _end(self, table: Dict, key, cycle: int, *,
             squashed: bool = False) -> None:
        span = table.pop(key, None)
        if span is None:
            return
        span.end = cycle
        if squashed:
            span.args["squashed"] = True
        if self._stats is not None:
            self._stats.histogram(f"obs.{span.cat}_cycles").record(
                span.duration)

    # --------------------------------------------------------------- queries
    def finish(self, now: int) -> None:
        """Close every still-open span at *now* (end of run)."""
        for table in (self._open_wb, self._open_lockdowns,
                      self._open_mshr, self._open_loads):
            for key in list(table):
                span = table.pop(key)
                span.end = now
                span.args["unfinished"] = True
        self._exported.clear()

    def by_cat(self, cat: str) -> List[Span]:
        return [span for span in self.spans if span.cat == cat]

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """{category: {count, mean, max, p50, p99}} over closed spans."""
        out: Dict[str, Dict[str, float]] = {}
        for cat in sorted({span.cat for span in self.spans}):
            durations = sorted(span.duration for span in self.by_cat(cat)
                               if span.end is not None)
            if not durations:
                continue
            n = len(durations)
            out[cat] = {
                "count": n,
                "mean": sum(durations) / n,
                "min": durations[0],
                "max": durations[-1],
                "p50": durations[max(0, -(-n * 50 // 100) - 1)],
                "p99": durations[max(0, -(-n * 99 // 100) - 1)],
            }
        return out
