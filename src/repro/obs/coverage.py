"""Protocol transition coverage (``repro-coverage/1``).

Conformance, fuzzing and exploration all end in pass/fail; this layer
answers the follow-up question *which protocol behaviors did they
actually exercise*.  Both coherence backends instrument their message
handlers and core-facing operations to report
``(component, state, event) -> (next_state, action)`` transition tuples
through the existing :class:`~repro.obs.events.EventBus`
(``Kind.COH_TRANSITION``), a :class:`CoverageObserver` aggregates them
into a mergeable :class:`CoverageMap`, and each backend declares its
full transition alphabet (``CoherenceBackend.transition_alphabet``) so
coverage denominators are exact — `repro coverage` can name every
transition the corpus never reached.

Design constraints, in order:

* **Zero cost when off.**  Components carry a ``_cov`` attribute that
  is ``None`` until an observer attaches; every instrumented site pays
  one attribute load + ``is None`` check and allocates nothing.  A
  plain run emits no ``coh.transition`` events and constructs no
  observer (booby-trapped in ``tests/perf``), so the 36 golden digests
  are untouched.
* **Deterministic.**  Transition counts derive only from simulated
  behavior under pinned seeds, so coverage payloads are byte-identical
  across serial, process-pool and cache-replay runs.
* **Mergeable.**  Maps from heterogeneous sources (conformance corpus,
  differential fuzz, POR exploration, directed scenarios) merge by
  summing per-source counts; the JSONL stream round-trips the merge.

A transition is a 5-tuple of strings::

    (component, state, event, next_state, action)

``component`` is ``cache`` or ``dir``; ``state``/``next_state`` are the
protocol state names of the addressed line before/after handling (``I``
when absent, ``EVICTING`` while parked in an eviction buffer);
``event`` is the incoming message type or a core-facing operation
(``load``, ``load_sos``, ``write``, ``store``, ``atomic``, ``evict``);
``action`` is the ``+``-joined sorted set of message types sent while
handling, ``-`` when silent.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import Kind
from .export import PathLike, open_output

#: JSONL coverage format version (the first record of every stream).
COVERAGE_SCHEMA = "repro-coverage/1"

#: (component, state, event, next_state, action)
Transition = Tuple[str, str, str, str, str]


def format_transition(transition: Sequence[str]) -> str:
    """Human form: ``cache: S --INV--> I [ACK]``."""
    component, state, event, nxt, action = transition
    return f"{component}: {state} --{event}--> {nxt} [{action}]"


class CoverageObserver:
    """Counts transition tuples delivered over one or more event buses.

    One observer may attach to many components across many systems (the
    conformance collector reuses a single sink over hundreds of litmus
    runs); set :attr:`source` between phases to tag where counts came
    from.  ``__deepcopy__`` returns ``self`` so the POR explorer's
    state forks all record into one shared sink.
    """

    def __init__(self, backend: str, *, source: str = "run") -> None:
        self.backend = backend
        self.source = source
        #: transition -> {source: count}
        self.counts: Dict[Transition, Dict[str, int]] = {}

    def __deepcopy__(self, memo) -> "CoverageObserver":
        return self

    def handle(self, event) -> None:
        args = event.args
        key = (args["component"], args["state"], args["event"],
               args["next"], args["action"])
        per_source = self.counts.get(key)
        if per_source is None:
            per_source = self.counts[key] = {}
        per_source[self.source] = per_source.get(self.source, 0) + 1

    def attach(self, *components) -> None:
        """Wire *components* (caches / directory banks) to this sink.

        Sets each component's ``_cov`` gate and subscribes once per
        distinct bus (components of one ``MulticoreSystem`` share the
        system bus; explorer components each own a private bus).
        """
        seen_buses = set()
        for component in components:
            component._cov = self
            bus = component.bus
            if id(bus) not in seen_buses:
                seen_buses.add(id(bus))
                bus.subscribe(self.handle, kinds=(Kind.COH_TRANSITION,))

    def attach_system(self, system) -> None:
        """Attach to every cache and directory bank of a system.

        Works for both :class:`~repro.sim.system.MulticoreSystem`
        (``directories``) and the explorer's ``VerifSystem`` (``dirs``).
        """
        dirs = getattr(system, "directories", None)
        if dirs is None:
            dirs = system.dirs
        self.attach(*system.caches, *dirs)

    @property
    def transitions(self) -> List[Transition]:
        return sorted(self.counts)

    def to_map(self) -> "CoverageMap":
        cmap = CoverageMap()
        cmap.absorb(self)
        return cmap


class CoverageMap:
    """Mergeable per-backend transition counts, tagged by source."""

    def __init__(self) -> None:
        #: backend -> transition -> {source: count}
        self.data: Dict[str, Dict[Transition, Dict[str, int]]] = {}

    def add(self, backend: str, transition: Transition, source: str,
            count: int = 1) -> None:
        per_transition = self.data.setdefault(backend, {})
        per_source = per_transition.setdefault(tuple(transition), {})
        per_source[source] = per_source.get(source, 0) + count

    def absorb(self, observer: CoverageObserver) -> None:
        """Fold one observer's counts in (sums with what is there)."""
        for transition, sources in observer.counts.items():
            for source, count in sources.items():
                self.add(observer.backend, transition, source, count)

    def merge(self, other: "CoverageMap") -> None:
        for backend, transitions in other.data.items():
            for transition, sources in transitions.items():
                for source, count in sources.items():
                    self.add(backend, transition, source, count)

    @property
    def backends(self) -> List[str]:
        return sorted(self.data)

    def transitions(self, backend: str) -> List[Transition]:
        return sorted(self.data.get(backend, {}))

    def count(self, backend: str, transition: Transition) -> int:
        sources = self.data.get(backend, {}).get(tuple(transition), {})
        return sum(sources.values())

    def source_totals(self, backend: str) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for sources in self.data.get(backend, {}).values():
            for source, count in sources.items():
                totals[source] = totals.get(source, 0) + count
        return totals

    def records(self) -> List[Dict]:
        """Canonical (sorted, JSON-ready) record list for the stream."""
        out: List[Dict] = []
        for backend in self.backends:
            for transition in self.transitions(backend):
                sources = self.data[backend][transition]
                out.append({
                    "backend": backend,
                    "transition": list(transition),
                    "count": sum(sources.values()),
                    "sources": {k: sources[k] for k in sorted(sources)},
                })
        return out

    @classmethod
    def from_records(cls, records: Iterable[Dict]) -> "CoverageMap":
        cmap = cls()
        for record in records:
            transition = tuple(record["transition"])
            for source, count in record.get("sources", {}).items():
                cmap.add(record["backend"], transition, source, count)
        return cmap


# ----------------------------------------------------------------- JSONL
def write_coverage_jsonl(cmap: CoverageMap, path: PathLike, *,
                         meta: Optional[Dict] = None) -> int:
    """Dump a coverage map: header record, then one transition per line.

    Returns the transition-record count (the header is not counted).
    ``path`` may be ``-`` to stream to stdout.
    """
    header: Dict = {"schema": COVERAGE_SCHEMA}
    if meta:
        header["meta"] = dict(meta)
    count = 0
    with open_output(path) as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in cmap.records():
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_coverage_jsonl(path: PathLike) -> Tuple[Dict, CoverageMap]:
    """Load a coverage stream back into ``(header, CoverageMap)``.

    Raises :class:`ValueError` when the header record is missing or
    declares a version this reader does not understand.
    """
    header: Optional[Dict] = None
    records: List[Dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if header is None:
                if not isinstance(record, dict) or "schema" not in record:
                    raise ValueError(
                        f"{path}: missing {COVERAGE_SCHEMA!r} header record "
                        "(re-export the map with this version of repro)")
                if record["schema"] != COVERAGE_SCHEMA:
                    raise ValueError(
                        f"{path}: unknown coverage schema "
                        f"{record['schema']!r} (this reader understands "
                        f"{COVERAGE_SCHEMA!r})")
                header = record
                continue
            records.append(record)
    if header is None:
        raise ValueError(f"{path}: empty coverage file (no header record)")
    return header, CoverageMap.from_records(records)


# ---------------------------------------------------------------- reports
def coverage_report(cmap: CoverageMap, backend: str,
                    alphabet: Optional[frozenset] = None) -> Dict:
    """Coverage summary for one backend against its declared alphabet.

    ``alphabet`` defaults to the backend's
    ``CoherenceBackend.transition_alphabet()``.  ``uncovered`` lists
    every declared-but-never-observed transition; ``undeclared`` lists
    observations outside the declared alphabet (an alphabet bug — the
    test matrix asserts it stays empty).
    """
    if alphabet is None:
        from ..coherence.backend import get_backend

        alphabet = get_backend(backend).transition_alphabet()
    observed = set(cmap.transitions(backend))
    covered = observed & alphabet
    components: Dict[str, Dict] = {}
    for component in sorted({t[0] for t in alphabet} |
                            {t[0] for t in observed}):
        comp_alpha = {t for t in alphabet if t[0] == component}
        comp_cov = {t for t in covered if t[0] == component}
        components[component] = {
            "alphabet": len(comp_alpha),
            "covered": len(comp_cov),
            "coverage": (round(len(comp_cov) / len(comp_alpha), 4)
                         if comp_alpha else 0.0),
        }
    total = sum(cmap.count(backend, t) for t in observed)
    return {
        "backend": backend,
        "alphabet": len(alphabet),
        "covered": len(covered),
        "coverage": (round(len(covered) / len(alphabet), 4)
                     if alphabet else 0.0),
        "observations": total,
        "components": components,
        "sources": cmap.source_totals(backend),
        "uncovered": [list(t) for t in sorted(alphabet - observed)],
        "undeclared": [list(t) for t in sorted(observed - alphabet)],
    }


def covered_events(report: Dict, cmap: CoverageMap) -> Dict[str, set]:
    """Per-component sets of event names observed for a report's backend."""
    out: Dict[str, set] = {}
    for transition in cmap.transitions(report["backend"]):
        out.setdefault(transition[0], set()).add(transition[2])
    return out


def render_coverage(report: Dict, *, list_uncovered: bool = True) -> str:
    """Text coverage table (+ the full uncovered-transition listing)."""
    lines = [f"{report['backend']}: {report['covered']}/"
             f"{report['alphabet']} transitions "
             f"({report['coverage']:.1%}), "
             f"{report['observations']} observations"]
    for component, row in sorted(report["components"].items()):
        lines.append(f"  {component:6s} {row['covered']:>4d}/"
                     f"{row['alphabet']:<4d} ({row['coverage']:.1%})")
    if report["sources"]:
        parts = [f"{name}={count}" for name, count in
                 sorted(report["sources"].items())]
        lines.append(f"  sources: {', '.join(parts)}")
    if report["undeclared"]:
        lines.append(f"  UNDECLARED ({len(report['undeclared'])}) — "
                     "observed outside the declared alphabet:")
        for transition in report["undeclared"]:
            lines.append(f"    {format_transition(transition)}")
    if list_uncovered:
        lines.append(f"  uncovered ({len(report['uncovered'])}):")
        for transition in report["uncovered"]:
            lines.append(f"    {format_transition(transition)}")
    return "\n".join(lines)


def render_coverage_diff(report_a: Dict, report_b: Dict,
                         cmap: CoverageMap) -> str:
    """Side-by-side coverage of two backends.

    Alphabets are protocol-specific, so the diff compares coverage
    fractions per component plus which *event names* (messages and core
    operations) only one backend exercises.
    """
    a, b = report_a["backend"], report_b["backend"]
    lines = [f"coverage diff: {a} vs {b}",
             f"  {'component':10s} {a:>18s} {b:>18s}"]
    components = sorted(set(report_a["components"]) |
                        set(report_b["components"]))
    for component in components:
        ra = report_a["components"].get(
            component, {"covered": 0, "alphabet": 0, "coverage": 0.0})
        rb = report_b["components"].get(
            component, {"covered": 0, "alphabet": 0, "coverage": 0.0})
        cell_a = f"{ra['covered']}/{ra['alphabet']} ({ra['coverage']:.0%})"
        cell_b = f"{rb['covered']}/{rb['alphabet']} ({rb['coverage']:.0%})"
        lines.append(f"  {component:10s} {cell_a:>18s} {cell_b:>18s}")
    total_a = (f"{report_a['covered']}/{report_a['alphabet']} "
               f"({report_a['coverage']:.0%})")
    total_b = (f"{report_b['covered']}/{report_b['alphabet']} "
               f"({report_b['coverage']:.0%})")
    lines.append(f"  {'total':10s} {total_a:>18s} {total_b:>18s}")
    events_a = covered_events(report_a, cmap)
    events_b = covered_events(report_b, cmap)
    for component in components:
        only_a = sorted(events_a.get(component, set()) -
                        events_b.get(component, set()))
        only_b = sorted(events_b.get(component, set()) -
                        events_a.get(component, set()))
        if only_a:
            lines.append(f"  {component} events only in {a}: "
                         f"{', '.join(only_a)}")
        if only_b:
            lines.append(f"  {component} events only in {b}: "
                         f"{', '.join(only_b)}")
    return "\n".join(lines)


# ---------------------------------------------------------------- heatmap
def transition_matrix(cmap: CoverageMap, backend: str, component: str,
                      alphabet: Optional[frozenset] = None
                      ) -> Tuple[List[str], List[str], List[List[int]]]:
    """``(states, events, rows)`` count matrix for one component.

    Rows span the declared alphabet (so never-reached states/events
    still appear as cold rows); cells hold observation counts.
    """
    if alphabet is None:
        from ..coherence.backend import get_backend

        alphabet = get_backend(backend).transition_alphabet()
    keys = ({t for t in alphabet if t[0] == component} |
            {t for t in cmap.transitions(backend) if t[0] == component})
    states = sorted({t[1] for t in keys})
    events = sorted({t[2] for t in keys})
    index = {name: i for i, name in enumerate(events)}
    rows = [[0] * len(events) for __ in states]
    for row, state in enumerate(states):
        for transition in cmap.transitions(backend):
            if transition[0] == component and transition[1] == state:
                rows[row][index[transition[2]]] += \
                    cmap.count(backend, transition)
    return states, events, rows
