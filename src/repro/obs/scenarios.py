"""Directed trace scenarios for ``repro trace`` and observability tests.

The benchmark workloads only *sometimes* produce the episodes the
observability layer exists to show (a WritersBlock needs an invalidation
to land on a lockdown).  These small directed programs force them
deterministically, so ``repro trace mp --out trace.json`` always yields
WritersBlock, lockdown, and load-lifetime spans.

Each scenario is ``name -> builder()`` returning per-core traces for
:meth:`~repro.sim.system.MulticoreSystem.load_program`; they need
``OOO_WB`` commit mode to exercise lockdowns.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.instruction import Instruction
from ..workloads.trace import AddressSpace, TraceBuilder

Traces = List[List[Instruction]]


def mp_nack() -> Traces:
    """Message-passing shape with a forced Nack -> WritersBlock episode.

    Core 0 (reader) warms ``data`` into its cache, then issues a load of
    ``flag`` whose address resolves only after a long gate; the younger
    re-load of ``data`` performs early from the cache, M-speculatively,
    taking a lockdown.  Core 1 (writer) stores ``data`` while that
    lockdown is live: the invalidation is Nacked, the home bank enters
    WritersBlock, and the write completes only after the reader's slow
    load performs and the lockdown lifts (exactly one episode).
    """
    space = AddressSpace()
    data = space.new_var("data")
    flag = space.new_var("flag")
    reader = TraceBuilder()
    warm = reader.reg()
    reader.load(warm, data)
    gate = reader.reg()
    reader.gate(gate, srcs=(warm,), latency=300)
    reader.load(reader.reg(), flag, addr_reg=gate)
    reader.load(reader.reg(), data)
    writer = TraceBuilder()
    writer.compute(latency=60)
    writer.store(data, 42)
    writer.store(flag, 1)
    return [reader.build(), writer.build()]


def sos_bypass() -> Traces:
    """Blocked write + SoS load on the same line: forces tear-off reads.

    Core 0 holds a lockdown on ``x`` (as in :func:`mp_nack`) while core 1
    writes it; core 2's loads of ``x`` during the WritersBlock window are
    served uncacheable tear-offs (paper §3.4), visible as ``dir.tearoff``
    events alongside the WritersBlock span.
    """
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    reader = TraceBuilder()
    warm = reader.reg()
    reader.load(warm, x)
    gate = reader.reg()
    reader.gate(gate, srcs=(warm,), latency=400)
    reader.load(reader.reg(), y, addr_reg=gate)
    reader.load(reader.reg(), x)
    writer = TraceBuilder()
    writer.compute(latency=60)
    writer.store(x, 1)
    bystander = TraceBuilder()
    # Gate the address so the loads cannot issue until the WritersBlock
    # window is open (an ungated load issues at cycle 1, long before the
    # writer's Nacked invalidation, and would just be a plain miss).
    pace = bystander.reg()
    bystander.gate(pace, srcs=(), latency=350)
    bystander.load(bystander.reg(), x, addr_reg=pace)
    bystander.load(bystander.reg(), x)
    return [reader.build(), writer.build(), bystander.build()]


TRACE_SCENARIOS: Dict[str, Tuple] = {
    "mp": (mp_nack, "message passing with a forced Nack/WritersBlock"),
    "sos": (sos_bypass, "WritersBlock window with SoS tear-off reads"),
}

#: Prefix that routes a trace/blame target to the conformance corpus:
#: ``litmus:MP+po+slow`` observes that corpus test's compiled traces.
LITMUS_PREFIX = "litmus:"


def is_litmus_target(name: str) -> bool:
    return name.startswith(LITMUS_PREFIX)


def litmus_scenario_traces(name: str, *,
                           extra_delays: Tuple[int, ...] = ()) -> Traces:
    """Compile a conformance-corpus test (``litmus:<NAME>``) to traces.

    Gives every corpus test the same observability surface as the
    directed scenarios: ``repro trace litmus:MP+po+slow``,
    ``repro blame litmus:IRIW+slow+slow`` etc. work out of the box.
    """
    from ..conform.model import to_litmus
    from ..conform.runner import load_corpus
    from ..consistency.litmus import litmus_traces

    wanted = name[len(LITMUS_PREFIX):]
    for test in load_corpus():
        if test.name == wanted:
            space = AddressSpace()
            traces, __, __ = litmus_traces(to_litmus(test), space,
                                       extra_delays=extra_delays)
            return traces
    raise KeyError(f"no corpus test named {wanted!r}")


def scenario_traces(name: str) -> Traces:
    if is_litmus_target(name):
        return litmus_scenario_traces(name)
    builder, __ = TRACE_SCENARIOS[name]
    return builder()
