"""The event bus: typed, cycle-stamped events with near-zero-cost gating.

Every simulator component holds a reference to the system-wide
:class:`EventBus` and brackets each emission with::

    bus = self._bus
    if bus.active:
        bus.emit(Kind.WB_BEGIN, self.tile, line=int(line), writer=writer)

``active`` is a plain attribute kept in sync with the subscriber list,
so a run without observers pays one attribute load per would-be event
and never builds an :class:`Event` object.  Subscribers may filter by
kind; delivery is synchronous and in subscription order, which keeps
runs deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..common.errors import SimulationError


class Kind:
    """Event taxonomy (``layer.what``).  See docs/observability.md."""

    # Core / load lifecycle
    LOAD_ISSUE = "load.issue"        # uid, seq, line, addr
    LOAD_PERFORM = "load.perform"    # uid, line, forwarded, uncacheable
    LOAD_ORDERED = "load.ordered"    # uid, line
    LOAD_COMMIT = "load.commit"      # uid, line
    LOAD_SQUASH = "load.squash"      # uid, line
    # Lockdown windows (paper §3.2 / §4.2)
    LOCKDOWN_BEGIN = "lockdown.begin"    # uid, line
    LOCKDOWN_EXPORT = "lockdown.export"  # uid, line, index (LQ -> LDT)
    LDT_RELEASE = "ldt.release"          # index, line
    INV_NACKED = "inv.nacked"            # line, holders, lq, ldt
    DEFERRED_ACK = "deferred.ack"        # line, via_kind, via_id
    # Directory / WritersBlock episodes (paper §3.3)
    WB_BEGIN = "wb.begin"            # line, writer
    WB_END = "wb.end"                # line, duration, writer
    DIR_TEAROFF = "dir.tearoff"      # line, requester
    DIR_WRITE_BLOCKED = "dir.write_blocked"  # line, src, cause
    # Private cache / MSHR occupancy
    MSHR_ALLOC = "mshr.alloc"        # uid, line, kind, sos
    MSHR_FREE = "mshr.free"          # uid, line, kind
    # Commit stage
    COMMIT_WINDOW = "commit.window"  # count (instructions retired this cycle)
    COMMIT_STALL = "commit.stall"    # reason, cause, line (one per stalled cycle)
    # Network
    NET_SEND = "net.send"  # msg_type, src, dst, dst_port, line, arrival, flits
    # Protocol transition coverage (repro.obs.coverage)
    COH_TRANSITION = "coh.transition"  # component, state, event, next, action

    @classmethod
    def all(cls) -> List[str]:
        return [value for name, value in vars(cls).items()
                if not name.startswith("_") and isinstance(value, str)]


@dataclass(frozen=True, slots=True)
class Event:
    """One observability event (immutable, JSON-friendly payload)."""

    cycle: int
    kind: str
    tile: int
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"cycle": self.cycle, "kind": self.kind, "tile": self.tile,
                "args": dict(self.args)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Event":
        return cls(cycle=int(payload["cycle"]), kind=str(payload["kind"]),
                   tile=int(payload["tile"]),
                   args=dict(payload.get("args", {})))


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; detach-order safe."""

    __slots__ = ("handler", "kinds", "_bus")

    def __init__(self, bus: "EventBus", handler: Callable[[Event], None],
                 kinds: Optional[frozenset]) -> None:
        self._bus = bus
        self.handler = handler
        self.kinds = kinds

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """Synchronous pub/sub hub stamped by the simulation clock."""

    __slots__ = ("_events", "_subs", "active")

    def __init__(self, events) -> None:
        self._events = events  # EventQueue: supplies the cycle stamp
        self._subs: List[Subscription] = []
        self.active = False

    def subscribe(self, handler: Callable[[Event], None], *,
                  kinds: Optional[Iterable[str]] = None) -> Subscription:
        """Deliver every event (or only *kinds*) to *handler*."""
        sub = Subscription(self, handler,
                           frozenset(kinds) if kinds is not None else None)
        self._subs.append(sub)
        self.active = True
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove *sub*; safe to call in any order with other detaches."""
        if sub not in self._subs:
            raise SimulationError("unsubscribing an unknown subscription")
        self._subs.remove(sub)
        self.active = bool(self._subs)

    def emit(self, kind: str, tile: int, /, **args) -> None:
        """Build and deliver one event (call only when ``active``).

        ``kind`` and ``tile`` are positional-only so payload keys may
        reuse those names (e.g. an MSHR entry's ``kind=read``).
        """
        event = Event(self._events.now, kind, tile, args)
        for sub in self._subs:
            if sub.kinds is None or kind in sub.kinds:
                sub.handler(event)


#: Shared inert bus for components constructed without one and without a
#: clock to build their own.  Never subscribe to it: its events would be
#: stamped from a missing clock (and every unwired component would share
#: your subscriber).
NULL_BUS = EventBus(None)


class EventRecorder:
    """Subscriber that keeps the raw event stream (for JSONL export)."""

    def __init__(self, bus: EventBus, *,
                 kinds: Optional[Iterable[str]] = None) -> None:
        self.events: List[Event] = []
        self._sub = bus.subscribe(self.events.append, kinds=kinds)

    def close(self) -> None:
        self._sub.close()
