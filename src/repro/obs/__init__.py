"""Structured observability: event bus, span tracking, export, profiling.

The simulator's layers (core, coherence, network) emit typed,
cycle-stamped :class:`Event` records onto a shared :class:`EventBus`.
Emission is guarded by a plain ``bus.active`` attribute check, so a run
with no subscribers pays (nearly) nothing.  Consumers layer on top:

* :class:`SpanTracker` folds begin/end events into *spans* — WritersBlock
  episodes, lockdown windows, MSHR occupancy, load lifetimes — and feeds
  duration histograms into the :class:`~repro.common.stats.StatsRegistry`;
* :class:`EventRecorder` keeps the raw event stream (JSONL-exportable);
* :mod:`repro.obs.export` writes Chrome ``trace_event`` JSON viewable in
  Perfetto / ``chrome://tracing``, one track group per tile;
* :mod:`repro.obs.profile` times each simulator component in host
  wall-clock terms (``repro profile``).

See ``docs/observability.md`` for the event taxonomy and span model.
"""

from .events import Event, EventBus, EventRecorder, Kind, Subscription
from .export import (
    load_chrome_trace,
    read_events_jsonl,
    spans_to_trace_events,
    write_chrome_trace,
    write_events_jsonl,
)
from .export import trace_spans
from .metrics import (
    DEFAULT_PERIOD,
    GAUGES,
    METRICS_SCHEMA,
    MetricsSampler,
    read_metrics_jsonl,
    summarize_metrics,
    write_metrics_jsonl,
)
from .profile import ProfileReport, Profiler, profile_system, profiled_run
from .scenarios import TRACE_SCENARIOS, scenario_traces
from .spans import Span, SpanTracker

__all__ = [
    "Event",
    "EventBus",
    "EventRecorder",
    "Kind",
    "Subscription",
    "Span",
    "SpanTracker",
    "ProfileReport",
    "Profiler",
    "profile_system",
    "profiled_run",
    "trace_spans",
    "TRACE_SCENARIOS",
    "scenario_traces",
    "spans_to_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "write_events_jsonl",
    "read_events_jsonl",
    "DEFAULT_PERIOD",
    "GAUGES",
    "METRICS_SCHEMA",
    "MetricsSampler",
    "read_metrics_jsonl",
    "summarize_metrics",
    "write_metrics_jsonl",
]
