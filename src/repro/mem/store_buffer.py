"""FIFO store buffer (post-commit stores, TSO store->store order).

Committed stores leave the store queue and wait here until they reach the
head *and* the core holds write permission for their line (paper §3.1.2).
TSO allows loads to bypass the buffer, forwarding from it on an exact
address match (paper footnote 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from ..common.errors import SimulationError
from ..common.types import LineAddr


@dataclass
class SBEntry:
    """One committed store awaiting global visibility."""

    byte_addr: int
    line: LineAddr
    offset: int
    version: int  # globally unique store version id
    value: int
    seq: int  # core-local program-order sequence of the store


class StoreBuffer:
    """Bounded FIFO of committed stores."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[SBEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: SBEntry) -> None:
        if self.full:
            raise SimulationError("store buffer overflow")
        self._entries.append(entry)

    def head(self) -> Optional[SBEntry]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> SBEntry:
        if not self._entries:
            raise SimulationError("pop from empty store buffer")
        return self._entries.popleft()

    def forward(self, byte_addr: int,
                before_seq: Optional[int] = None) -> Optional[SBEntry]:
        """Youngest entry matching *byte_addr* exactly.

        ``before_seq`` restricts the search to stores older than the
        forwarding load: cores that retire loads early (ECL) can have
        *younger* stores in the SB while an older load is outstanding,
        and those must never forward backwards in program order.
        """
        for entry in reversed(self._entries):
            if entry.byte_addr == byte_addr and (
                    before_seq is None or entry.seq < before_seq):
                return entry
        return None

    def has_line(self, line: LineAddr) -> bool:
        """Any buffered store targeting cache line *line*?"""
        return any(entry.line == line for entry in self._entries)

    def __iter__(self) -> Iterator[SBEntry]:
        return iter(self._entries)
