"""Miss Status Holding Registers with SoS-load reservation.

The paper's deadlock-avoidance rule (§3.5.2) requires that an SoS load can
always launch a read even when stores or evictions occupy every regular
MSHR: *"There is at least one MSHR always reserved for SoS loads."*  The
file therefore tracks a reserved quota that only SoS-bypass allocations
may use.

A bypass entry may coexist with a regular entry for the *same* line: that
is exactly the case where an SoS load abandons its piggyback on a blocked
write and launches a fresh (uncacheable) read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..common.errors import ConfigError, SimulationError
from ..common.types import LineAddr


@dataclass(slots=True, eq=False)
class MSHREntry:
    """One outstanding transaction."""

    line: LineAddr
    kind: str  # "read" | "write" | "writeback"
    is_sos_bypass: bool = False
    #: Monotonic per-file id (distinguishes occupancy episodes of one line).
    uid: int = 0
    #: Load instructions piggybacked on this transaction.
    waiting_loads: List[Any] = field(default_factory=list)
    #: Set when the directory hints that this write is in WritersBlock.
    blocked_hint: bool = False
    #: Invalidation acks still owed to this write.
    pending_acks: int = 0
    #: Data response already arrived (writes collect data + acks).
    has_data: bool = False
    #: Uncacheable (tear-off) read: data must not be installed in the cache.
    uncacheable: bool = False
    #: Line data held by the transaction (write data, writeback data).
    data: Optional[Any] = None
    #: Invalidation acks received so far (writes).
    acks_received: int = 0
    #: Acks the grant message said to expect (None until the grant arrives).
    acks_expected: Optional[int] = None
    #: The write request went out as an Upgrade (line was in S).
    was_upgrade: bool = False
    #: Grant callbacks for stores waiting on this write permission.
    payload_grants: List[Any] = field(default_factory=list)
    #: Write-permission callbacks deferred behind an in-flight read.
    deferred_writes: List[Any] = field(default_factory=list)

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("B", self.blocked_hint),
                ("S", self.is_sos_bypass),
                ("U", self.uncacheable),
            )
            if on
        )
        return f"<MSHR {self.kind} {self.line!r} {flags} acks={self.pending_acks}>"


class MSHRFile:
    """Fixed-size pool of MSHRs with a reserved SoS quota."""

    def __init__(self, entries: int, reserved_for_sos: int) -> None:
        if reserved_for_sos >= entries:
            raise ConfigError("reservation must leave at least one regular MSHR")
        self.capacity = entries
        self.reserved = reserved_for_sos
        self._by_line: Dict[LineAddr, MSHREntry] = {}
        self._bypass: List[MSHREntry] = []
        self._next_uid = 0
        #: Optional ``observer(action, entry)`` hook ("alloc" | "free"),
        #: wired by the owning cache to the observability bus.
        self.observer: Optional[Callable[[str, MSHREntry], None]] = None

    # -- capacity ----------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Allocated entries (regular + SoS-bypass); telemetry gauge."""
        return len(self._by_line) + len(self._bypass)

    def _in_use(self) -> int:
        return self.occupancy

    def can_allocate(self, *, sos: bool = False) -> bool:
        """True if an allocation of the given kind would succeed."""
        limit = self.capacity if sos else self.capacity - self.reserved
        return self._in_use() < limit

    # -- allocation --------------------------------------------------------
    def allocate(self, line: LineAddr, kind: str, *, sos_bypass: bool = False) -> MSHREntry:
        """Allocate a new entry; raises if capacity (for this kind) is gone."""
        if not self.can_allocate(sos=sos_bypass):
            raise SimulationError("MSHR file full")
        self._next_uid += 1
        entry = MSHREntry(line=line, kind=kind, is_sos_bypass=sos_bypass,
                          uid=self._next_uid)
        if sos_bypass:
            self._bypass.append(entry)
        else:
            if line in self._by_line:
                raise SimulationError(f"duplicate MSHR for {line!r}")
            self._by_line[line] = entry
        if self.observer is not None:
            self.observer("alloc", entry)
        return entry

    def get(self, line: LineAddr) -> Optional[MSHREntry]:
        """The primary (non-bypass) entry for *line*, if any."""
        return self._by_line.get(line)

    def free(self, entry: MSHREntry) -> None:
        if entry.is_sos_bypass:
            self._bypass.remove(entry)
        else:
            current = self._by_line.get(entry.line)
            if current is not entry:
                raise SimulationError(f"freeing unknown MSHR {entry!r}")
            del self._by_line[entry.line]
        if self.observer is not None:
            self.observer("free", entry)

    def entries(self) -> List[MSHREntry]:
        return list(self._by_line.values()) + list(self._bypass)
