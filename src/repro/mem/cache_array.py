"""Set-associative cache tag/state array with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

from ..common.errors import ConfigError
from ..common.types import LineAddr

T = TypeVar("T")


class CacheArray(Generic[T]):
    """Maps line addresses to caller-defined entries, LRU per set.

    The array stores whatever entry object the controller wants (coherence
    state, line data, ...).  It enforces capacity: inserting into a full
    set reports the LRU victim, which the controller must evict first.
    """

    __slots__ = ("sets", "ways", "_sets")

    def __init__(self, sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ConfigError("cache sets and ways must be positive")
        self.sets = sets
        self.ways = ways
        # One OrderedDict per *touched* set, keyed by set index; order
        # within a set = LRU (front) .. MRU (back).  Sets materialise
        # lazily: short simulations touch a handful of sets, and building
        # thousands of empty OrderedDicts up front dominated system
        # construction time.
        self._sets: Dict[int, "OrderedDict[LineAddr, T]"] = {}

    def _set_for(self, line: LineAddr) -> "OrderedDict[LineAddr, T]":
        idx = line.value % self.sets
        entries = self._sets.get(idx)
        if entries is None:
            entries = self._sets[idx] = OrderedDict()
        return entries

    def lookup(self, line: LineAddr, *, touch: bool = True) -> Optional[T]:
        """Return the entry for *line*, updating LRU unless ``touch=False``."""
        entries = self._set_for(line)
        entry = entries.get(line)
        if entry is not None and touch:
            entries.move_to_end(line)
        return entry

    def __contains__(self, line: LineAddr) -> bool:
        return line in self._set_for(line)

    def victim_for(self, line: LineAddr) -> Optional[Tuple[LineAddr, T]]:
        """LRU victim that must leave before *line* can be inserted.

        Returns ``None`` if the set has a free way or already holds *line*.
        """
        entries = self._set_for(line)
        if line in entries or len(entries) < self.ways:
            return None
        victim_line = next(iter(entries))
        return victim_line, entries[victim_line]

    def insert(self, line: LineAddr, entry: T) -> None:
        """Insert (or replace) *line*; the set must have room."""
        entries = self._set_for(line)
        if line not in entries and len(entries) >= self.ways:
            raise ConfigError(
                f"set for {line!r} is full; evict the victim before inserting"
            )
        entries[line] = entry
        entries.move_to_end(line)

    def remove(self, line: LineAddr) -> Optional[T]:
        """Remove and return the entry for *line* (None if absent)."""
        return self._set_for(line).pop(line, None)

    def items(self) -> Iterator[Tuple[LineAddr, T]]:
        # Set-index order, matching the eager layout: victim searches
        # that fall back to a whole-array scan must not depend on which
        # set happened to be touched first.
        for idx in sorted(self._sets):
            yield from self._sets[idx].items()

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets.values())


class PresenceLRU:
    """A tag-only LRU array used to model L1 presence for hit latency.

    The private hierarchy keeps one coherence point (the L2-sized array);
    this structure only decides whether an access pays the L1 or the L2
    hit latency (DESIGN.md decision 2).
    """

    __slots__ = ("_tags",)

    def __init__(self, sets: int, ways: int) -> None:
        self._tags: CacheArray[bool] = CacheArray(sets, ways)

    def touch(self, line: LineAddr) -> None:
        """Record an access to *line*, evicting the L1-LRU tag if needed."""
        victim = self._tags.victim_for(line)
        if victim is not None:
            self._tags.remove(victim[0])
        self._tags.insert(line, True)

    def __contains__(self, line: LineAddr) -> bool:
        return line in self._tags

    def drop(self, line: LineAddr) -> None:
        self._tags.remove(line)
