"""Value tracking at cache-line granularity.

The simulator moves *real* values through the coherence protocol: each
store is assigned a globally unique version id, and a cache line's content
maps byte offsets to the (version, value) last written there.  A load
returns whatever version the copy it reads actually holds — which is how
a speculatively reordered load can bind to a stale value, the behaviour
the whole paper is about.  The TSO checker later validates the observed
versions.

Version 0 denotes the initial value (zero) of every location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: (version id, value) for one byte-granular location.
VersionedValue = Tuple[int, int]

INITIAL: VersionedValue = (0, 0)


@dataclass(slots=True, eq=False)
class LineData:
    """Contents of one cache line: byte offset -> (version, value).

    Offsets never written retain the initial (0, 0).  Copies are shallow
    snapshots: once a copy is handed to another cache it is never mutated
    through the original (callers must use :meth:`copy`).
    """

    values: Dict[int, VersionedValue] = field(default_factory=dict)

    def read(self, offset: int) -> VersionedValue:
        return self.values.get(offset, INITIAL)

    def write(self, offset: int, version: int, value: int) -> None:
        self.values[offset] = (version, value)

    def copy(self) -> "LineData":
        return LineData(dict(self.values))

    def merge_from(self, other: "LineData") -> None:
        """Adopt *other*'s contents (used when a writeback reaches the LLC)."""
        self.values = dict(other.values)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"+{off}=v{ver}:{val}" for off, (ver, val) in sorted(self.values.items())
        )
        return f"LineData({inner})"
