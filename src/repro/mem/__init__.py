"""Memory-side building blocks: arrays, MSHRs, store buffer, line data."""

from .cache_array import CacheArray, PresenceLRU
from .line_data import INITIAL, LineData, VersionedValue
from .mshr import MSHREntry, MSHRFile
from .store_buffer import SBEntry, StoreBuffer

__all__ = [
    "CacheArray",
    "PresenceLRU",
    "INITIAL",
    "LineData",
    "VersionedValue",
    "MSHREntry",
    "MSHRFile",
    "SBEntry",
    "StoreBuffer",
]
