"""Coherence messages carried by the on-chip network.

Messages are the highest-churn objects in the simulator — every
coherence transaction allocates several — so :class:`Message` is a
slotted plain class and the mesh recycles instances through a
:class:`MessagePool`.  A message acquired from the pool is released
back automatically once its destination handler consumes it; handlers
that need to *keep* a message beyond their own activation (the blocking
directory parks requests for later replay) set ``parked`` before
returning and the releasing frame leaves it alone.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..common.types import LineAddr, MsgType, flits_for

_msg_ids = itertools.count()


class Message:
    """One point-to-point message between a cache controller and a
    directory bank (or between two caches, for 3-hop transactions).

    ``payload`` carries transaction-specific fields, e.g. ``requester``
    (tile id of the original requester for forwarded requests) or
    ``ack_count`` (number of invalidation acks the writer must collect).
    """

    __slots__ = ("msg_type", "src", "dst", "dst_port", "line", "payload",
                 "msg_id", "parked", "pooled")

    def __init__(self, msg_type: MsgType, src: int, dst: int, dst_port: str,
                 line: LineAddr, payload: Optional[Dict[str, Any]] = None,
                 msg_id: Optional[int] = None) -> None:
        self.msg_type = msg_type
        self.src = src
        self.dst = dst
        self.dst_port = dst_port
        self.line = line
        self.payload = {} if payload is None else payload
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        #: A handler stored this message for later replay (do not recycle).
        self.parked = False
        #: This instance came from a MessagePool (recycle on release).
        self.pooled = False

    @property
    def flits(self) -> int:
        return flits_for(self.msg_type)

    @property
    def requester(self) -> Optional[int]:
        return self.payload.get("requester")

    def __repr__(self) -> str:
        extra = f" {self.payload}" if self.payload else ""
        return (
            f"<{self.msg_type.value} #{self.msg_id} {self.src}->{self.dst}"
            f":{self.dst_port} {self.line!r}{extra}>"
        )


class MessagePool:
    """Free-list recycler for :class:`Message` objects.

    ``outstanding`` counts acquired-but-not-released messages; at
    quiescence it must be zero for a normally-driven system (the
    drained-pool invariant checked by
    :func:`repro.coherence.invariants.check_quiescent`).  Releasing a
    message that did not come from a pool is a no-op, so directly
    constructed messages (tests, tools) stay outside the accounting.
    """

    __slots__ = ("_free", "outstanding")

    def __init__(self) -> None:
        self._free: List[Message] = []
        self.outstanding = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, msg_type: MsgType, src: int, dst: int, dst_port: str,
                line: LineAddr, payload: Dict[str, Any]) -> Message:
        self.outstanding += 1
        free = self._free
        if free:
            msg = free.pop()
            msg.msg_type = msg_type
            msg.src = src
            msg.dst = dst
            msg.dst_port = dst_port
            msg.line = line
            msg.payload = payload
            msg.msg_id = next(_msg_ids)
            msg.parked = False
        else:
            msg = Message(msg_type, src, dst, dst_port, line, payload)
        msg.pooled = True
        return msg

    def release(self, msg: Message) -> None:
        """Recycle *msg*; no-op for messages not acquired from a pool."""
        if not msg.pooled:
            return
        msg.pooled = False
        msg.payload = None  # type: ignore[assignment]  # drop data refs
        self.outstanding -= 1
        self._free.append(msg)
