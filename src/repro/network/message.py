"""Coherence messages carried by the on-chip network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..common.types import LineAddr, MsgType, flits_for

_msg_ids = itertools.count()


@dataclass
class Message:
    """One point-to-point message between a cache controller and a
    directory bank (or between two caches, for 3-hop transactions).

    ``payload`` carries transaction-specific fields, e.g. ``requester``
    (tile id of the original requester for forwarded requests) or
    ``ack_count`` (number of invalidation acks the writer must collect).
    """

    msg_type: MsgType
    src: int  # source tile id
    dst: int  # destination tile id
    dst_port: str  # "cache" or "llc"
    line: LineAddr
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    @property
    def flits(self) -> int:
        return flits_for(self.msg_type)

    @property
    def requester(self) -> Optional[int]:
        return self.payload.get("requester")

    def __repr__(self) -> str:
        extra = f" {self.payload}" if self.payload else ""
        return (
            f"<{self.msg_type.value} #{self.msg_id} {self.src}->{self.dst}"
            f":{self.dst_port} {self.line!r}{extra}>"
        )
