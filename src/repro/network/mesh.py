"""Message-level 2D-mesh network model.

Latency model (per DESIGN.md): a message crossing ``h`` links pays
``h * switch_cycles`` of hop latency plus flit serialization on each link.
With contention modelling enabled each directed link forwards one flit per
cycle, so messages queue behind earlier traffic on shared links; with it
disabled the mesh is contention-free (an ablation point).

Local delivery (``src == dst``) costs one cycle.  The model preserves the
property the paper depends on: the network is **unordered** — messages on
different routes can arrive out of order — while messages between the same
pair of endpoints stay ordered (as X-Y routing guarantees).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..common.errors import ConfigError, SimulationError
from ..common.event_queue import EventQueue
from ..common.params import NetworkParams
from ..common.stats import StatsRegistry
from ..common.types import LineAddr, MsgType, flits_for
from ..obs.events import EventBus, Kind
from .message import Message, MessagePool
from .topology import Link, MeshTopology

Endpoint = Callable[[Message], None]


class MeshNetwork:
    """Delivers :class:`Message` objects between registered endpoints."""

    def __init__(self, num_tiles: int, params: NetworkParams,
                 events: EventQueue, stats: StatsRegistry, *,
                 bus: Optional[EventBus] = None) -> None:
        self.topology = MeshTopology(num_tiles)
        self.params = params
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        #: Recycler for the Message objects controllers send through us.
        self.pool = MessagePool()
        self._endpoints: Dict[Tuple[int, str], Endpoint] = {}
        self._link_free: Dict[Link, int] = {}
        #: Per-link flit-cycle accumulator for the metrics sampler;
        #: ``None`` (the default) keeps the send path accumulator-free.
        self._link_busy: Optional[Dict[Link, int]] = None
        self._msgs = stats.counter("network.messages")
        self._flits = stats.counter("network.flits")
        self._flit_hops = stats.counter("network.flit_hops")
        self._queue_cycles = stats.counter("network.link_queue_cycles")

    def register(self, tile: int, port: str, handler: Endpoint) -> None:
        """Attach *handler* to receive messages addressed to (tile, port)."""
        key = (tile, port)
        if key in self._endpoints:
            raise ConfigError(f"endpoint {key} registered twice")
        self._endpoints[key] = handler

    def rewrap_endpoint(self, tile: int, port: str,
                        wrap: Callable[[Endpoint], Endpoint]) -> None:
        """Replace a registered handler with ``wrap(handler)`` (profiling)."""
        key = (tile, port)
        if key not in self._endpoints:
            raise ConfigError(f"no endpoint {key} to rewrap")
        self._endpoints[key] = wrap(self._endpoints[key])

    def acquire_message(self, msg_type: MsgType, src: int, dst: int,
                        dst_port: str, line: LineAddr,
                        payload: Optional[Dict] = None) -> Message:
        """Build a pooled :class:`Message` (recycled after consumption)."""
        return self.pool.acquire(msg_type, src, dst, dst_port, line,
                                 {} if payload is None else payload)

    def send(self, msg: Message) -> int:
        """Inject *msg*; returns the cycle at which it will be delivered."""
        handler = self._endpoints.get((msg.dst, msg.dst_port))
        if handler is None:
            raise SimulationError(f"no endpoint at tile {msg.dst} port {msg.dst_port!r}")
        flits = flits_for(msg.msg_type)
        self._msgs.add()
        self._flits.add(flits)
        arrival = self._arrival_cycle(msg)
        self.events.schedule_at(arrival, lambda: self._deliver(handler, msg))
        bus = self.bus
        if bus.active:
            bus.emit(Kind.NET_SEND, msg.src, msg_type=msg.msg_type.value,
                     dst=msg.dst, dst_port=msg.dst_port, line=msg.line.value,
                     arrival=arrival, flits=flits)
        return arrival

    def _deliver(self, handler: Endpoint, msg: Message) -> None:
        """Hand *msg* to its endpoint, then recycle it unless the handler
        parked it for later replay (blocking-directory queues)."""
        handler(msg)
        if not msg.parked:
            self.pool.release(msg)

    # ------------------------------------------------------------- telemetry
    def track_link_busy(self) -> None:
        """Start accumulating per-link flit occupancy (metrics sampler)."""
        if self._link_busy is None:
            self._link_busy = {}

    def drain_link_busy(self) -> list:
        """Per-tile flit-cycles of the busiest *outgoing* link since the
        last drain; resets the accumulator.  A tile's value approaches
        the sampling window when one of its links is saturated."""
        out = [0] * self.topology.num_tiles
        busy = self._link_busy
        if busy:
            for (src, __), cycles in busy.items():
                if cycles > out[src]:
                    out[src] = cycles
            busy.clear()
        return out

    def _arrival_cycle(self, msg: Message) -> int:
        now = self.events.now
        route = self.topology.route(msg.src, msg.dst)
        if not route:  # local (same-tile) delivery
            return now + 1
        flits = flits_for(msg.msg_type)
        self._flit_hops.add(flits * len(route))
        if self._link_busy is not None:
            busy = self._link_busy
            for link in route:
                busy[link] = busy.get(link, 0) + flits
        arrival = now
        model_contention = self.params.model_contention
        switch_cycles = self.params.switch_cycles
        link_free = self._link_free
        for link in route:
            if model_contention:
                free = link_free.get(link, 0)
                start = max(arrival, free)
                self._queue_cycles.add(start - arrival)
                link_free[link] = start + flits
            else:
                start = arrival
            arrival = start + switch_cycles
        return arrival
