"""Message-level 2D-mesh network model.

Latency model (per DESIGN.md): a message crossing ``h`` links pays
``h * switch_cycles`` of hop latency plus flit serialization on each link.
With contention modelling enabled each directed link forwards one flit per
cycle, so messages queue behind earlier traffic on shared links; with it
disabled the mesh is contention-free (an ablation point).

Local delivery (``src == dst``) costs one cycle.  The model preserves the
property the paper depends on: the network is **unordered** — messages on
different routes can arrive out of order — while messages between the same
pair of endpoints stay ordered (as X-Y routing guarantees).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..common.errors import ConfigError, SimulationError
from ..common.event_queue import EventQueue
from ..common.params import NetworkParams
from ..common.stats import StatsRegistry
from ..obs.events import EventBus, Kind
from .message import Message
from .topology import Link, MeshTopology

Endpoint = Callable[[Message], None]


class MeshNetwork:
    """Delivers :class:`Message` objects between registered endpoints."""

    def __init__(self, num_tiles: int, params: NetworkParams,
                 events: EventQueue, stats: StatsRegistry, *,
                 bus: Optional[EventBus] = None) -> None:
        self.topology = MeshTopology(num_tiles)
        self.params = params
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self._endpoints: Dict[Tuple[int, str], Endpoint] = {}
        self._link_free: Dict[Link, int] = {}
        self._msgs = stats.counter("network.messages")
        self._flits = stats.counter("network.flits")
        self._flit_hops = stats.counter("network.flit_hops")
        self._queue_cycles = stats.counter("network.link_queue_cycles")

    def register(self, tile: int, port: str, handler: Endpoint) -> None:
        """Attach *handler* to receive messages addressed to (tile, port)."""
        key = (tile, port)
        if key in self._endpoints:
            raise ConfigError(f"endpoint {key} registered twice")
        self._endpoints[key] = handler

    def rewrap_endpoint(self, tile: int, port: str,
                        wrap: Callable[[Endpoint], Endpoint]) -> None:
        """Replace a registered handler with ``wrap(handler)`` (profiling)."""
        key = (tile, port)
        if key not in self._endpoints:
            raise ConfigError(f"no endpoint {key} to rewrap")
        self._endpoints[key] = wrap(self._endpoints[key])

    def send(self, msg: Message) -> int:
        """Inject *msg*; returns the cycle at which it will be delivered."""
        handler = self._endpoints.get((msg.dst, msg.dst_port))
        if handler is None:
            raise SimulationError(f"no endpoint at tile {msg.dst} port {msg.dst_port!r}")
        self._msgs.add()
        self._flits.add(msg.flits)
        arrival = self._arrival_cycle(msg)
        self.events.schedule_at(arrival, lambda: handler(msg))
        bus = self.bus
        if bus.active:
            bus.emit(Kind.NET_SEND, msg.src, msg_type=msg.msg_type.value,
                     dst=msg.dst, dst_port=msg.dst_port, line=int(msg.line),
                     arrival=arrival, flits=msg.flits)
        return arrival

    def _arrival_cycle(self, msg: Message) -> int:
        now = self.events.now
        route = self.topology.route(msg.src, msg.dst)
        if not route:  # local (same-tile) delivery
            return now + 1
        self._flit_hops.add(msg.flits * len(route))
        arrival = now
        for link in route:
            if self.params.model_contention:
                free = self._link_free.get(link, 0)
                start = max(arrival, free)
                self._queue_cycles.add(start - arrival)
                self._link_free[link] = start + msg.flits
            else:
                start = arrival
            arrival = start + self.params.switch_cycles
        return arrival
