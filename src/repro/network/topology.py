"""2D-mesh geometry and deterministic X-Y routing.

Tiles are numbered row-major on a ``width x height`` mesh.  Square tile
counts keep the historical ``side x side`` layout; non-square counts
(the scaling probe's 8- or 32-tile configurations) fold onto the most
nearly square ``width x height`` factorization with ``width >= height``,
so 8 tiles form a 4x2 mesh.  Routing is dimension-ordered (X first,
then Y), which is deadlock-free and, crucially for this paper,
**unordered across different source-destination pairs**: two messages
between different endpoints may arrive in any relative order.
"""

from __future__ import annotations

from typing import List, Tuple

from ..common.errors import ConfigError
from ..common.params import mesh_dims

Link = Tuple[int, int]  # directed link (from_tile, to_tile)


class MeshTopology:
    """Geometry helper: coordinates, hop counts, and X-Y routes."""

    def __init__(self, num_tiles: int) -> None:
        width, height = mesh_dims(num_tiles)
        self.num_tiles = num_tiles
        self.width = width
        self.height = height
        #: Historical alias from the square-only era; row length.
        self.side = width
        # Routes are static per (src, dst) pair; memoize them — the mesh
        # asks for one on every single message.
        self._route_cache: dict = {}

    def coords(self, tile: int) -> Tuple[int, int]:
        """(x, y) coordinates of *tile*."""
        if not 0 <= tile < self.num_tiles:
            raise ConfigError(f"tile {tile} out of range 0..{self.num_tiles - 1}")
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> List[Link]:
        """Directed links on the X-then-Y route from *src* to *dst*.

        The returned list is cached and shared — callers must not
        mutate it.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        route = self._compute_route(src, dst)
        self._route_cache[(src, dst)] = route
        return route

    def _compute_route(self, src: int, dst: int) -> List[Link]:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        links: List[Link] = []
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            nxt = x + step
            links.append((self.tile_at(x, y), self.tile_at(nxt, y)))
            x = nxt
        step = 1 if dy > y else -1
        while y != dy:
            nxt = y + step
            links.append((self.tile_at(x, y), self.tile_at(x, nxt)))
            y = nxt
        return links
