"""On-chip interconnect: messages, mesh topology, and delivery model."""

from .mesh import MeshNetwork
from .message import Message
from .topology import Link, MeshTopology

__all__ = ["MeshNetwork", "Message", "Link", "MeshTopology"]
