"""SPLASH-3-like synthetic workloads.

Each generator mimics the *sharing pattern* of its namesake (that is
what the paper's figures are sensitive to), not its arithmetic:

================  ====================================================
barnes            read-mostly tree walks + striped-lock body updates
cholesky          producer-consumer column blocks behind locks
fft               local butterflies + all-to-all transpose phases
fmm               tree walks + neighbour cell exchange
lu_cb             broadcast pivot block, contiguous-block updates
lu_ncb            same with packed (false-sharing) blocks
ocean_cp          nearest-neighbour stencil, line-aligned partitions
ocean_ncp         stencil with packed partitions (false sharing)
radiosity         lock-protected task queue + random patch updates
radix             private histograms, atomic merge, all-to-all scatter
raytrace          read-mostly scene chase + task counter
volrend           read-mostly octree + task queue
water_nsquared    all-pairs reads + striped-lock accumulations
water_spatial     spatial cells, neighbour reads
================  ====================================================

All generators accept ``num_threads``, a ``scale`` multiplier on phase
sizes, and a ``seed``.  Phase sizes are tuned so the commit policy is a
binding constraint (enough independent work behind misses), which is
the regime the paper's Figure 10 evaluates.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .generators import (
    WorkloadKit,
    atomic_reduce,
    dependent_chase,
    locked_update,
    mixed_accesses,
    neighbour_partition,
    partition,
)
from .trace import Workload


def _scaled(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


def barnes(num_threads: int = 16, scale: float = 1.0, seed: int = 11) -> Workload:
    kit = WorkloadKit("barnes", num_threads, seed=seed)
    tree = kit.space.new_array("tree", 160)
    bodies = kit.space.new_array("bodies", num_threads * 8, stride=32)
    locks = kit.space.new_array("body_locks", 8)
    for __ in range(2):
        for tid in range(num_threads):
            mixed_accesses(kit, tid, tree, ops=_scaled(40, scale),
                           store_frac=0.01)
            dependent_chase(kit, tid, tree, hops=_scaled(6, scale))
            mixed_accesses(kit, tid, partition(bodies, tid, num_threads),
                           ops=_scaled(40, scale), store_frac=0.4,
                           sequential=True)
            locked_update(kit, tid, locks[tid % len(locks)],
                          partition(bodies, (tid + 1) % num_threads,
                                    num_threads), updates=1)
        kit.barrier_all()
    return kit.finish("Barnes-Hut-like: tree walks + striped-lock body updates")


def cholesky(num_threads: int = 16, scale: float = 1.0, seed: int = 12) -> Workload:
    kit = WorkloadKit("cholesky", num_threads, seed=seed)
    blocks = kit.space.new_array("col_blocks", num_threads * 8)
    locks = kit.space.new_array("col_locks", num_threads)
    for step in range(2):
        for tid in range(num_threads):
            mine = partition(blocks, tid, num_threads)
            mixed_accesses(kit, tid, mine, ops=_scaled(60, scale),
                           store_frac=0.4, sequential=True)
            mixed_accesses(kit, tid,
                           neighbour_partition(blocks, tid, num_threads),
                           ops=_scaled(20, scale), store_frac=0.0)
            locked_update(kit, tid, locks[(tid + step) % len(locks)],
                          partition(blocks, (tid + 1) % num_threads,
                                    num_threads)[:2], updates=1)
        kit.barrier_all()
    return kit.finish("Cholesky-like: column blocks behind per-column locks")


def fft(num_threads: int = 16, scale: float = 1.0, seed: int = 13) -> Workload:
    kit = WorkloadKit("fft", num_threads, seed=seed)
    data = kit.space.new_array("data", num_threads * 8, stride=32)
    for phase in range(2):
        for tid in range(num_threads):
            # Local butterflies over the thread's own partition.
            mixed_accesses(kit, tid, partition(data, tid, num_threads),
                           ops=_scaled(60, scale), store_frac=0.45,
                           sequential=True)
        kit.barrier_all()
        for tid in range(num_threads):
            # Transpose: read blocks written by every other thread.
            remote = partition(data, (tid + phase + 1) % num_threads,
                               num_threads)
            mixed_accesses(kit, tid, remote, ops=_scaled(40, scale),
                           store_frac=0.05)
        kit.barrier_all()
    return kit.finish("FFT-like: butterfly phases + all-to-all transpose")


def fmm(num_threads: int = 16, scale: float = 1.0, seed: int = 14) -> Workload:
    kit = WorkloadKit("fmm", num_threads, seed=seed)
    tree = kit.space.new_array("fmm_tree", 96)
    cells = kit.space.new_array("cells", num_threads * 6, stride=32)
    for __ in range(2):
        for tid in range(num_threads):
            mixed_accesses(kit, tid, tree, ops=_scaled(30, scale),
                           store_frac=0.02)
            dependent_chase(kit, tid, tree, hops=_scaled(6, scale))
            mixed_accesses(kit, tid, partition(cells, tid, num_threads),
                           ops=_scaled(40, scale), store_frac=0.4)
            mixed_accesses(kit, tid,
                           neighbour_partition(cells, tid, num_threads),
                           ops=_scaled(20, scale), store_frac=0.0)
        kit.barrier_all()
    return kit.finish("FMM-like: tree walks + neighbour cell exchange")


def _lu(name: str, stride: int, num_threads: int, scale: float,
        seed: int) -> Workload:
    kit = WorkloadKit(name, num_threads, seed=seed)
    blocks = kit.space.new_array("blocks", num_threads * 8, stride=stride)
    pivot = kit.space.new_array("pivot", 8, stride=stride)
    for step in range(2):
        owner = step % num_threads
        for tid in range(num_threads):
            if tid == owner:
                # Factor the pivot block (write it).
                mixed_accesses(kit, tid, pivot, ops=_scaled(24, scale),
                               store_frac=0.7, sequential=True)
        kit.barrier_all()
        for tid in range(num_threads):
            if tid != owner:
                # Everyone reads the pivot block (broadcast read)...
                mixed_accesses(kit, tid, pivot, ops=_scaled(16, scale),
                               store_frac=0.0)
            # ...and updates its own blocks.
            mixed_accesses(kit, tid, partition(blocks, tid, num_threads),
                           ops=_scaled(60, scale), store_frac=0.45,
                           sequential=True)
        kit.barrier_all()
    return kit.finish("LU-like: pivot broadcast + partitioned updates")


def lu_cb(num_threads: int = 16, scale: float = 1.0, seed: int = 15) -> Workload:
    return _lu("lu_cb", 64, num_threads, scale, seed)


def lu_ncb(num_threads: int = 16, scale: float = 1.0, seed: int = 16) -> Workload:
    # Non-contiguous blocks: packed lines create false sharing.
    return _lu("lu_ncb", 16, num_threads, scale, seed)


def _ocean(name: str, stride: int, num_threads: int, scale: float,
           seed: int) -> Workload:
    kit = WorkloadKit(name, num_threads, seed=seed)
    grid = kit.space.new_array("grid", num_threads * 10, stride=stride)
    for __ in range(2):
        for tid in range(num_threads):
            mine = partition(grid, tid, num_threads)
            mixed_accesses(kit, tid, mine, ops=_scaled(60, scale),
                           store_frac=0.45, sequential=True)
            # Boundary exchange: read both neighbours' edges.
            for off in (1, num_threads - 1):
                edge = neighbour_partition(grid, tid, num_threads, off)[:3]
                mixed_accesses(kit, tid, edge, ops=_scaled(12, scale),
                               store_frac=0.0)
        kit.barrier_all()
    return kit.finish("Ocean-like: red-black stencil with boundary reads")


def ocean_cp(num_threads: int = 16, scale: float = 1.0, seed: int = 17) -> Workload:
    return _ocean("ocean_cp", 64, num_threads, scale, seed)


def ocean_ncp(num_threads: int = 16, scale: float = 1.0, seed: int = 18) -> Workload:
    # Non-contiguous partitions: packed boundaries false-share.
    return _ocean("ocean_ncp", 16, num_threads, scale, seed)


def radiosity(num_threads: int = 16, scale: float = 1.0, seed: int = 19) -> Workload:
    kit = WorkloadKit("radiosity", num_threads, seed=seed)
    patches = kit.space.new_array("patches", 128, stride=32)
    queue_locks = kit.space.new_array("queue_locks", 4)
    queue_heads = kit.space.new_array("queue_heads", 4)
    for __ in range(2):
        for tid in range(num_threads):
            q = tid % 4
            locked_update(kit, tid, queue_locks[q], [queue_heads[q]],
                          updates=1)
            mixed_accesses(kit, tid, patches, ops=_scaled(60, scale),
                           store_frac=0.15)
        kit.barrier_all()
    return kit.finish("Radiosity-like: task queues + random patch updates")


def radix(num_threads: int = 16, scale: float = 1.0, seed: int = 20) -> Workload:
    kit = WorkloadKit("radix", num_threads, seed=seed)
    keys = kit.space.new_array("keys", num_threads * 8, stride=16)
    histogram = kit.space.new_var("histogram")
    for __ in range(2):
        for tid in range(num_threads):
            # Count: stream own keys (private).
            mixed_accesses(kit, tid, partition(keys, tid, num_threads),
                           ops=_scaled(40, scale), store_frac=0.1,
                           sequential=True)
            # Merge: atomic adds into the shared histogram.
            atomic_reduce(kit, tid, histogram, times=2)
        kit.barrier_all()
        for tid in range(num_threads):
            # Permute: scatter writes into other threads' partitions.
            target = partition(keys, (tid + 3) % num_threads, num_threads)
            mixed_accesses(kit, tid, target, ops=_scaled(30, scale),
                           store_frac=0.7)
        kit.barrier_all()
    return kit.finish("Radix-like: histogram + all-to-all permutation scatter")


def raytrace(num_threads: int = 16, scale: float = 1.0, seed: int = 21) -> Workload:
    kit = WorkloadKit("raytrace", num_threads, seed=seed)
    scene = kit.space.new_array("scene", 192)
    counter = kit.space.new_var("ray_counter")
    for tid in range(num_threads):
        for __ in range(2):
            atomic_reduce(kit, tid, counter)
            mixed_accesses(kit, tid, scene, ops=_scaled(50, scale),
                           store_frac=0.0)
            dependent_chase(kit, tid, scene, hops=_scaled(8, scale))
    kit.barrier_all()
    return kit.finish("Raytrace-like: read-mostly scene + atomic work counter")


def volrend(num_threads: int = 16, scale: float = 1.0, seed: int = 22) -> Workload:
    kit = WorkloadKit("volrend", num_threads, seed=seed)
    octree = kit.space.new_array("octree", 128)
    image = kit.space.new_array("image", num_threads * 4, stride=16)
    counter = kit.space.new_var("tile_counter")
    for tid in range(num_threads):
        atomic_reduce(kit, tid, counter)
        mixed_accesses(kit, tid, octree, ops=_scaled(40, scale),
                       store_frac=0.02)
        dependent_chase(kit, tid, octree, hops=_scaled(6, scale))
        mixed_accesses(kit, tid, partition(image, tid, num_threads),
                       ops=_scaled(40, scale), store_frac=0.6,
                       sequential=True)
    kit.barrier_all()
    return kit.finish("Volrend-like: octree reads + packed image writes")


def water_nsquared(num_threads: int = 16, scale: float = 1.0,
                   seed: int = 23) -> Workload:
    kit = WorkloadKit("water_nsquared", num_threads, seed=seed)
    molecules = kit.space.new_array("molecules", num_threads * 6, stride=32)
    locks = kit.space.new_array("mol_locks", 8)
    for __ in range(2):
        for tid in range(num_threads):
            # All-pairs: read everyone's molecules.
            mixed_accesses(kit, tid, molecules, ops=_scaled(60, scale),
                           store_frac=0.02)
            locked_update(kit, tid, locks[tid % len(locks)],
                          partition(molecules, tid, num_threads)[:3],
                          updates=2)
        kit.barrier_all()
    return kit.finish("Water-nsquared-like: all-pairs reads + locked updates")


def water_spatial(num_threads: int = 16, scale: float = 1.0,
                  seed: int = 24) -> Workload:
    kit = WorkloadKit("water_spatial", num_threads, seed=seed)
    cells = kit.space.new_array("cells", num_threads * 8, stride=32)
    for __ in range(2):
        for tid in range(num_threads):
            mixed_accesses(kit, tid, partition(cells, tid, num_threads),
                           ops=_scaled(50, scale), store_frac=0.4,
                           sequential=True)
            mixed_accesses(kit, tid,
                           neighbour_partition(cells, tid, num_threads),
                           ops=_scaled(16, scale), store_frac=0.05)
        kit.barrier_all()
    return kit.finish("Water-spatial-like: cell partitions + neighbour reads")


SPLASH_WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "barnes": barnes,
    "cholesky": cholesky,
    "fft": fft,
    "fmm": fmm,
    "lu_cb": lu_cb,
    "lu_ncb": lu_ncb,
    "ocean_cp": ocean_cp,
    "ocean_ncp": ocean_ncp,
    "radiosity": radiosity,
    "radix": radix,
    "raytrace": raytrace,
    "volrend": volrend,
    "water_nsquared": water_nsquared,
    "water_spatial": water_spatial,
}
