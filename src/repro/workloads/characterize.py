"""Static workload characterization.

Downstream users tuning workloads want to know the instruction mix and
sharing structure *before* burning simulation time; these helpers
summarize a :class:`Workload` analytically.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Set

from ..common.types import InstrType
from .trace import Workload


@dataclass
class WorkloadProfile:
    """Static mix and sharing summary of one workload."""

    name: str
    num_threads: int
    total_instructions: int
    mix: Dict[str, float]  # itype -> fraction of static instructions
    static_loads: int
    static_stores: int
    static_atomics: int
    static_branches: int
    #: Lines referenced by >1 thread / all referenced lines.
    shared_line_fraction: float
    #: Lines with static accesses from both a reader and a writer thread
    #: where the threads differ (invalidation traffic candidates).
    rw_shared_lines: int
    distinct_lines: int

    def summary(self) -> str:
        mix = ", ".join(f"{k}={v:.0%}" for k, v in sorted(self.mix.items()))
        return (f"{self.name}: {self.num_threads} threads, "
                f"{self.total_instructions} static instrs ({mix}); "
                f"{self.distinct_lines} lines, "
                f"{self.shared_line_fraction:.0%} shared, "
                f"{self.rw_shared_lines} read-write shared")


def characterize(workload: Workload, *, line_bytes: int = 64) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` from static traces.

    Dynamic behaviour (spin iterations, squashes) is not captured —
    this is the *static* shape, cheap enough to call in a loop.
    """
    counts: Counter = Counter()
    readers: Dict[int, Set[int]] = {}
    writers: Dict[int, Set[int]] = {}
    total = 0
    for tid, trace in enumerate(workload.traces):
        for instr in trace:
            total += 1
            counts[instr.itype] += 1
            if instr.is_mem and instr.addr is not None:
                line = instr.addr // line_bytes
                if instr.itype is InstrType.LOAD:
                    readers.setdefault(line, set()).add(tid)
                elif instr.itype is InstrType.STORE:
                    writers.setdefault(line, set()).add(tid)
                else:  # atomic: both
                    readers.setdefault(line, set()).add(tid)
                    writers.setdefault(line, set()).add(tid)
    lines = set(readers) | set(writers)
    shared = {
        line for line in lines
        if len(readers.get(line, set()) | writers.get(line, set())) > 1
    }
    rw_shared = sum(
        1 for line in lines
        if writers.get(line)
        and len(readers.get(line, set()) | writers.get(line, set())) > 1
    )
    mix = {itype.value: counts[itype] / max(total, 1) for itype in InstrType
           if counts[itype]}
    return WorkloadProfile(
        name=workload.name,
        num_threads=workload.num_threads,
        total_instructions=total,
        mix=mix,
        static_loads=counts[InstrType.LOAD],
        static_stores=counts[InstrType.STORE],
        static_atomics=counts[InstrType.ATOMIC],
        static_branches=counts[InstrType.BRANCH],
        shared_line_fraction=len(shared) / max(len(lines), 1),
        rw_shared_lines=rw_shared,
        distinct_lines=len(lines),
    )
