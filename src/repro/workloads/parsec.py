"""PARSEC-3.0-like synthetic workloads.

As with :mod:`repro.workloads.splash`, each generator reproduces its
namesake's *sharing pattern*:

=============  =======================================================
blackscholes   read-mostly option table, private compute, own results
bodytrack      barrier phases over a shared model + deep miss chains
canneal        random two-element swaps behind fine-grained locks
dedup          pipeline stages through lock-protected shared queues
ferret         read-mostly database chase + pipeline queue
fluidanimate   stencil cells with per-cell locks and false sharing
freqmine       deep read-mostly FP-tree chases (most tear-off reads)
streamcluster  hot shared centres table with frequent writes (most
               blocked writes in the paper)
swaptions      almost fully private Monte-Carlo paths
vips           partitioned image sweep + boundary reads
x264           producer-consumer rows through flags (flag/data races)
=============  =======================================================
"""

from __future__ import annotations

from typing import Callable, Dict

from .generators import (
    WorkloadKit,
    atomic_reduce,
    dependent_chase,
    locked_update,
    mixed_accesses,
    neighbour_partition,
    partition,
)
from .synchronization import spin_until_set
from .trace import Workload


def _scaled(base: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(base * scale)))


def blackscholes(num_threads: int = 16, scale: float = 1.0,
                 seed: int = 31) -> Workload:
    kit = WorkloadKit("blackscholes", num_threads, seed=seed)
    options = kit.space.new_array("options", 96, stride=32)
    results = kit.space.new_array("results", num_threads * 2, stride=16)
    for tid in range(num_threads):
        for __ in range(2):
            mixed_accesses(kit, tid, options, ops=_scaled(40, scale),
                           store_frac=0.0, compute_max=6)
            mixed_accesses(kit, tid, partition(results, tid, num_threads),
                           ops=_scaled(24, scale), store_frac=0.8,
                           sequential=True)
    kit.barrier_all()
    return kit.finish("Blackscholes-like: read-mostly table, private results")


def bodytrack(num_threads: int = 16, scale: float = 1.0,
              seed: int = 32) -> Workload:
    kit = WorkloadKit("bodytrack", num_threads, seed=seed)
    model = kit.space.new_array("model", 128)
    particles = kit.space.new_array("particles", num_threads * 6, stride=16)
    counter = kit.space.new_var("pt_counter")
    for __ in range(2):
        for tid in range(num_threads):
            atomic_reduce(kit, tid, counter)
            # Deep dependent miss chains: the ROB-head-blocking pattern
            # out-of-order commit helps most (paper: bodytrack +41.9%).
            dependent_chase(kit, tid, model, hops=_scaled(10, scale),
                            compute_latency=4)
            mixed_accesses(kit, tid, model, ops=_scaled(30, scale),
                           store_frac=0.02)
            mixed_accesses(kit, tid, partition(particles, tid, num_threads),
                           ops=_scaled(40, scale), store_frac=0.5)
        kit.barrier_all()
    return kit.finish("Bodytrack-like: barrier phases + deep miss chains")


def canneal(num_threads: int = 16, scale: float = 1.0,
            seed: int = 33) -> Workload:
    kit = WorkloadKit("canneal", num_threads, seed=seed)
    elements = kit.space.new_array("elements", 128, stride=32)
    locks = kit.space.new_array("elem_locks", 12)
    for tid in range(num_threads):
        for __ in range(_scaled(8, scale)):
            rng = kit.rngs[tid]
            a = rng.randrange(len(elements))
            b = rng.randrange(len(elements))
            locked_update(kit, tid, locks[a % len(locks)],
                          [elements[a], elements[b]], updates=2)
            mixed_accesses(kit, tid, elements, ops=8, store_frac=0.0)
    kit.barrier_all()
    return kit.finish("Canneal-like: random swap pairs behind element locks")


def dedup(num_threads: int = 16, scale: float = 1.0, seed: int = 34) -> Workload:
    kit = WorkloadKit("dedup", num_threads, seed=seed)
    queues = kit.space.new_array("queues", 8, stride=32)
    qlocks = kit.space.new_array("qlocks", 4)
    hashes = kit.space.new_array("hashes", 96, stride=16)
    for tid in range(num_threads):
        stage = tid % 3
        for __ in range(2):
            locked_update(kit, tid, qlocks[stage % len(qlocks)],
                          partition(queues, stage, 3), updates=2)
            mixed_accesses(kit, tid, hashes, ops=_scaled(40, scale),
                           store_frac=0.3 if stage == 1 else 0.05)
    kit.barrier_all()
    return kit.finish("Dedup-like: staged pipeline through locked queues")


def ferret(num_threads: int = 16, scale: float = 1.0, seed: int = 35) -> Workload:
    kit = WorkloadKit("ferret", num_threads, seed=seed)
    database = kit.space.new_array("database", 160)
    queue_lock = kit.space.new_var("fq_lock")
    queue = kit.space.new_array("fqueue", 4, stride=16)
    for tid in range(num_threads):
        for __ in range(2):
            locked_update(kit, tid, queue_lock, queue, updates=1)
            dependent_chase(kit, tid, database, hops=_scaled(6, scale))
            mixed_accesses(kit, tid, database, ops=_scaled(40, scale),
                           store_frac=0.0)
    kit.barrier_all()
    return kit.finish("Ferret-like: similarity-search chase + pipeline queue")


def fluidanimate(num_threads: int = 16, scale: float = 1.0,
                 seed: int = 36) -> Workload:
    kit = WorkloadKit("fluidanimate", num_threads, seed=seed)
    cells = kit.space.new_array("cells", num_threads * 8, stride=16)
    locks = kit.space.new_array("cell_locks", num_threads)
    for __ in range(2):
        for tid in range(num_threads):
            mixed_accesses(kit, tid, partition(cells, tid, num_threads),
                           ops=_scaled(50, scale), store_frac=0.5,
                           sequential=True)
            locked_update(kit, tid, locks[(tid + 1) % num_threads],
                          neighbour_partition(cells, tid, num_threads)[:2],
                          updates=2)
        kit.barrier_all()
    return kit.finish("Fluidanimate-like: stencil + per-cell neighbour locks")


def freqmine(num_threads: int = 16, scale: float = 1.0,
             seed: int = 37) -> Workload:
    kit = WorkloadKit("freqmine", num_threads, seed=seed)
    fp_tree = kit.space.new_array("fp_tree", 160)
    counts = kit.space.new_array("counts", 48, stride=16)
    results = kit.space.new_array("fm_results", num_threads * 2, stride=16)
    for tid in range(num_threads):
        for __ in range(2):
            mixed_accesses(kit, tid, fp_tree, ops=_scaled(40, scale),
                           store_frac=0.02)
            dependent_chase(kit, tid, fp_tree, hops=_scaled(8, scale),
                            compute_latency=2)
            # Occasional writers invalidate recently chased nodes, which
            # is what drives tear-off reads (paper: freqmine worst case).
            mixed_accesses(kit, tid, counts, ops=_scaled(8, scale),
                           store_frac=0.25)
            mixed_accesses(kit, tid, partition(results, tid, num_threads),
                           ops=_scaled(10, scale), store_frac=0.7,
                           sequential=True)
    kit.barrier_all()
    return kit.finish("Freqmine-like: deep FP-tree chases + count updates")


def streamcluster(num_threads: int = 16, scale: float = 1.0,
                  seed: int = 38) -> Workload:
    kit = WorkloadKit("streamcluster", num_threads, seed=seed)
    centres = kit.space.new_array("centres", 48, stride=16)
    points = kit.space.new_array("points", num_threads * 2, stride=32)
    cost = kit.space.new_var("total_cost")
    for __ in range(2):
        for tid in range(num_threads):
            # Every thread reads the hot centres table...
            mixed_accesses(kit, tid, centres, ops=_scaled(40, scale),
                           store_frac=0.0, compute_max=2)
            mixed_accesses(kit, tid, partition(points, tid, num_threads),
                           ops=_scaled(30, scale), store_frac=0.4,
                           sequential=True)
            # ...and frequently writes it (centre updates): these writes
            # land on other cores' just-read lines — the paper's worst
            # case for blocked writes.
            mixed_accesses(kit, tid, centres, ops=_scaled(3, scale),
                           store_frac=1.0, compute_max=0)
            atomic_reduce(kit, tid, cost)
        kit.barrier_all()
    return kit.finish("Streamcluster-like: hot shared centres, frequent writes")


def swaptions(num_threads: int = 16, scale: float = 1.0,
              seed: int = 39) -> Workload:
    kit = WorkloadKit("swaptions", num_threads, seed=seed)
    paths = kit.space.new_array("paths", num_threads * 8, stride=16)
    for tid in range(num_threads):
        for __ in range(3):
            mixed_accesses(kit, tid, partition(paths, tid, num_threads),
                           ops=_scaled(50, scale), store_frac=0.5,
                           sequential=True, compute_max=6)
    kit.barrier_all()
    return kit.finish("Swaptions-like: private Monte-Carlo paths")


def vips(num_threads: int = 16, scale: float = 1.0, seed: int = 40) -> Workload:
    kit = WorkloadKit("vips", num_threads, seed=seed)
    image = kit.space.new_array("image", num_threads * 8, stride=32)
    for __ in range(2):
        for tid in range(num_threads):
            mixed_accesses(kit, tid, partition(image, tid, num_threads),
                           ops=_scaled(50, scale), store_frac=0.5,
                           sequential=True)
            mixed_accesses(kit, tid,
                           neighbour_partition(image, tid, num_threads)[:3],
                           ops=_scaled(12, scale), store_frac=0.0)
        kit.barrier_all()
    return kit.finish("Vips-like: partitioned image sweep + boundary reads")


def x264(num_threads: int = 16, scale: float = 1.0, seed: int = 41) -> Workload:
    kit = WorkloadKit("x264", num_threads, seed=seed)
    rows = kit.space.new_array("rows", num_threads * 4, stride=32)
    flags = kit.space.new_array("row_flags", num_threads)
    for tid in range(num_threads):
        t = kit.builders[tid]
        if tid > 0:
            # Wait for the previous row (flag/data message passing).
            spin_until_set(t, flags[tid - 1])
            mixed_accesses(kit, tid,
                           partition(rows, tid - 1, num_threads),
                           ops=_scaled(16, scale), store_frac=0.0)
        mixed_accesses(kit, tid, partition(rows, tid, num_threads),
                       ops=_scaled(40, scale), store_frac=0.6,
                       sequential=True)
        t.store(flags[tid], 1)
    kit.barrier_all()
    return kit.finish("X264-like: row producer-consumer through flags")


PARSEC_WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "blackscholes": blackscholes,
    "bodytrack": bodytrack,
    "canneal": canneal,
    "dedup": dedup,
    "ferret": ferret,
    "fluidanimate": fluidanimate,
    "freqmine": freqmine,
    "streamcluster": streamcluster,
    "swaptions": swaptions,
    "vips": vips,
    "x264": x264,
}
