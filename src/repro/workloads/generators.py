"""Shared building blocks for the synthetic SPLASH/PARSEC-like workloads.

Each benchmark-named generator composes these blocks with its own mix:
partitioned array sweeps (private locality), boundary/neighbour sharing
(stencils), all-to-all exchange phases (transpose-style), lock-protected
updates, atomic reductions, and read-mostly shared tables.  The blocks
are what create the paper-relevant behaviour: private hits under shared
misses reorder loads, and concurrent writers to recently-read lines make
invalidations land on M-speculative loads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .synchronization import Barrier, lock_acquire, lock_release
from .trace import AddressSpace, TraceBuilder, Workload


class WorkloadKit:
    """SPMD workload under construction: one builder per thread."""

    def __init__(self, name: str, num_threads: int, *, seed: int = 1234,
                 line_bytes: int = 64) -> None:
        self.name = name
        self.num_threads = num_threads
        self.space = AddressSpace(line_bytes)
        self.builders = [TraceBuilder() for __ in range(num_threads)]
        self.rngs = [random.Random(seed * 1_000_003 + tid)
                     for tid in range(num_threads)]
        self._barrier = Barrier(self.space, f"{name}.bar", num_threads)

    def barrier_all(self) -> None:
        """Emit one barrier episode into every thread."""
        episode = self._barrier.next_episode()
        for builder in self.builders:
            episode.emit(builder)

    def finish(self, description: str = "", **metadata) -> Workload:
        return Workload(
            name=self.name,
            traces=[builder.build() for builder in self.builders],
            space=self.space,
            description=description,
            metadata=metadata,
        )


# ------------------------------------------------------------------ blocks
def mixed_accesses(kit: WorkloadKit, tid: int, addrs: Sequence[int], *,
                   ops: int, store_frac: float = 0.3,
                   compute_max: int = 4, computes: int = 2,
                   sequential: bool = False) -> None:
    """Loads/stores over *addrs* with interspersed independent compute.

    ``sequential`` walks the addresses in order (streaming locality);
    otherwise accesses are uniform-random over *addrs*.  ``computes``
    independent ALU ops follow each access, giving the commit stage
    retirable work behind outstanding misses (the ILP that out-of-order
    commit converts into performance).
    """
    t = kit.builders[tid]
    rng = kit.rngs[tid]
    for i in range(ops):
        addr = addrs[i % len(addrs)] if sequential else rng.choice(addrs)
        if rng.random() < store_frac:
            t.store(addr, rng.randrange(1, 1 << 16))
        else:
            t.load(t.reg(), addr)
        for __ in range(computes):
            if compute_max:
                t.compute(latency=rng.randrange(1, compute_max + 1))


def dependent_chase(kit: WorkloadKit, tid: int, addrs: Sequence[int], *,
                    hops: int, compute_latency: int = 3) -> None:
    """Pointer-chase-like dependent loads (serialized misses).

    Each load's address depends on the previous load's value via a
    compute, so the loads cannot overlap — classic latency-bound phase.
    """
    t = kit.builders[tid]
    rng = kit.rngs[tid]
    prev: Optional[int] = None
    for __ in range(hops):
        addr = rng.choice(addrs)
        reg = t.reg()
        if prev is None:
            t.load(reg, addr)
        else:
            # The next load's address becomes resolvable only once the
            # previous load's value arrives (gate: imm=0 offset).
            gate = t.reg()
            t.gate(gate, srcs=(prev,), latency=compute_latency)
            t.load(reg, addr, addr_reg=gate)
        prev = reg


def locked_update(kit: WorkloadKit, tid: int, lock_addr: int,
                  protected: Sequence[int], *, updates: int = 2) -> None:
    """Acquire a spin lock, read-modify-write protected variables."""
    t = kit.builders[tid]
    rng = kit.rngs[tid]
    lock_acquire(t, lock_addr)
    for __ in range(updates):
        addr = rng.choice(protected)
        r_old = t.reg()
        r_new = t.reg()
        t.load(r_old, addr)
        t.addi(r_new, r_old, 1)
        t.store(addr, value_reg=r_new)
    lock_release(t, lock_addr)


def atomic_reduce(kit: WorkloadKit, tid: int, counter_addr: int, *,
                  times: int = 1) -> None:
    """Atomic fetch-and-add into a shared accumulator."""
    t = kit.builders[tid]
    for __ in range(times):
        t.faa(t.reg(), counter_addr, 1)


def partition(addrs: Sequence[int], tid: int, num_threads: int) -> List[int]:
    """The contiguous slice of *addrs* owned by thread *tid*."""
    n = len(addrs)
    lo = tid * n // num_threads
    hi = (tid + 1) * n // num_threads
    return list(addrs[lo:hi]) or [addrs[tid % n]]


def neighbour_partition(addrs: Sequence[int], tid: int, num_threads: int,
                        offset: int = 1) -> List[int]:
    """A neighbouring thread's partition (stencil boundary exchange)."""
    return partition(addrs, (tid + offset) % num_threads, num_threads)


# ------------------------------------------------- differential fuzzing
def random_shared_program(seed: int, *, num_threads: int = 2,
                          max_ops: int = 5, num_locations: int = 3,
                          p_store: float = 0.4, p_atomic: float = 0.15):
    """Small racy straight-line program over a few shared locations.

    Returns abstract ``(kind, loc, payload)`` tuples — ``("ld", loc,
    reg)``, ``("st", loc, value)``, or ``("tas", loc, reg)`` — so the
    same program can be lowered onto the cycle-level simulator *and*
    onto the operational x86-TSO reference machine
    (:mod:`repro.consistency.operational`).  ``tas`` is the one atomic
    both worlds model identically (old value into ``reg``, memory
    becomes 1); store values are globally unique and never 1, so every
    load observation discriminates exactly one writer.

    Deterministic in *seed*: the differential fuzz battery
    (``tests/integration/test_differential_fuzz.py``) replays failures
    by seed alone.
    """
    rng = random.Random(0xD1FF ^ (seed * 2_654_435_761))
    locs = [f"v{i}" for i in range(num_locations)]
    value = 2  # stores write 2, 3, ... (1 is reserved for tas)
    reg = 0
    threads = []
    for __ in range(num_threads):
        ops = []
        for __ in range(rng.randint(1, max_ops)):
            loc = rng.choice(locs)
            roll = rng.random()
            if roll < p_atomic:
                ops.append(("tas", loc, f"r{reg}"))
                reg += 1
            elif roll < p_atomic + p_store:
                ops.append(("st", loc, value))
                value += 1
            else:
                ops.append(("ld", loc, f"r{reg}"))
                reg += 1
        threads.append(ops)
    return threads
