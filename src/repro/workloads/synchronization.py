"""Synchronization idioms built from trace primitives.

Locks are test-and-test-and-set spin locks; barriers are sense-reversing
(one fresh counter+flag pair per episode, so traces stay straight-line).
Spin back-edges are statically predicted taken: staying in the loop is
free of mispredicts and the single exit pays one squash, matching how
loop predictors behave.
"""

from __future__ import annotations

from .trace import AddressSpace, TraceBuilder


def lock_acquire(t: TraceBuilder, lock_addr: int) -> None:
    """Test-and-test-and-set acquire."""
    r_read = t.reg()
    r_got = t.reg()
    retry = t.here
    t.load(r_read, lock_addr)
    # While held (non-zero), spin on the cached copy.
    t.bnez(r_read, retry, predict_taken=False)
    t.tas(r_got, lock_addr)
    t.bnez(r_got, retry, predict_taken=False)


def lock_release(t: TraceBuilder, lock_addr: int) -> None:
    t.store(lock_addr, 0)


def spin_until_set(t: TraceBuilder, flag_addr: int, expected: int = 1,
                   poll_delay: int = 8) -> None:
    """Spin until ``*flag == expected`` (expected must be non-zero).

    ``poll_delay`` inserts compute latency into the loop body so the spin
    polls every ~poll_delay cycles instead of saturating the pipeline.
    """
    r_flag = t.reg()
    r_slow = t.reg()
    r_cmp = t.reg()
    spin = t.here
    t.load(r_flag, flag_addr)
    t.compute(r_slow, srcs=(r_flag,), latency=poll_delay)
    t.xori(r_cmp, r_slow, expected)
    t.bnez(r_cmp, spin, predict_taken=True)


class Barrier:
    """Allocates one counter+flag pair per episode."""

    def __init__(self, space: AddressSpace, name: str, num_threads: int) -> None:
        self.space = space
        self.name = name
        self.num_threads = num_threads
        self._episode = 0

    def next_episode(self) -> "BarrierEpisode":
        episode = BarrierEpisode(
            count_addr=self.space.new_var(f"{self.name}.count{self._episode}"),
            flag_addr=self.space.new_var(f"{self.name}.flag{self._episode}"),
            num_threads=self.num_threads,
        )
        self._episode += 1
        return episode


class BarrierEpisode:
    """One use of the barrier: every thread calls :meth:`emit` once."""

    def __init__(self, count_addr: int, flag_addr: int, num_threads: int) -> None:
        self.count_addr = count_addr
        self.flag_addr = flag_addr
        self.num_threads = num_threads

    def emit(self, t: TraceBuilder) -> None:
        r_old = t.reg()
        r_last = t.reg()
        t.faa(r_old, self.count_addr, 1)
        t.xori(r_last, r_old, self.num_threads - 1)
        branch = t.bnez(r_last, 0, predict_taken=True)  # not last -> wait
        t.store(self.flag_addr, 1)  # last arrival releases everyone
        skip = t.jump(0)
        wait = t.here
        t.fix_target(branch, wait)
        spin_until_set(t, self.flag_addr)
        t.fix_target(skip, t.here)
