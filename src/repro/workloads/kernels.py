"""Verified parallel kernels.

Unlike the synthetic benchmark generators (which mimic sharing patterns),
these kernels compute *checkable results* through the simulated memory
system: lock-protected reductions, atomic histograms, producer-consumer
pipelines, and token-passing sum chains.  Their verifiers assert the
functional outcome, so a consistency bug that survives the TSO checker
would still surface as a wrong answer — and they double as end-to-end
determinism probes across commit modes.

Each builder returns ``(Workload, verifier)`` where
``verifier(system, result)`` raises AssertionError on a wrong answer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .synchronization import lock_acquire, lock_release, spin_until_set
from .trace import AddressSpace, TraceBuilder, Workload

Verifier = Callable[[object, object], None]


def _final_value(result, addr: int) -> int:
    """Last value written to *addr* in coherence order (0 if never)."""
    log = result.log
    co = log.coherence_order.get(addr, [])
    return log.value_of(co[-1]) if co else 0


def locked_sum(num_threads: int = 4, per_thread: int = 6,
               increment: int = 3) -> Tuple[Workload, Verifier]:
    """Each thread adds ``increment`` to a shared total ``per_thread``
    times under a spin lock.  Expected total: n * per_thread * inc."""
    space = AddressSpace()
    lock = space.new_var("lock")
    total = space.new_var("total")
    traces = []
    for __ in range(num_threads):
        t = TraceBuilder()
        for __i in range(per_thread):
            lock_acquire(t, lock)
            old = t.reg()
            new = t.reg()
            t.load(old, total)
            t.addi(new, old, increment)
            t.store(total, value_reg=new)
            lock_release(t, lock)
        traces.append(t.build())
    expected = num_threads * per_thread * increment

    def verify(system, result):
        assert _final_value(result, total) == expected, (
            f"locked sum: {_final_value(result, total)} != {expected}")

    workload = Workload(name="kernel-locked-sum", traces=traces, space=space,
                        description="lock-protected shared accumulator")
    return workload, verify


def atomic_histogram(num_threads: int = 4,
                     buckets: int = 4,
                     per_thread: int = 8) -> Tuple[Workload, Verifier]:
    """Threads scatter fetch-and-adds over shared buckets; the bucket
    totals must equal the (deterministic) scatter pattern."""
    space = AddressSpace()
    bucket_addrs = space.new_array("bucket", buckets)
    counts = [0] * buckets
    traces = []
    for tid in range(num_threads):
        t = TraceBuilder()
        for i in range(per_thread):
            which = (tid * 3 + i * 5) % buckets
            counts[which] += 1
            t.faa(t.reg(), bucket_addrs[which], 1)
        traces.append(t.build())

    def verify(system, result):
        for which, addr in enumerate(bucket_addrs):
            got = _final_value(result, addr)
            assert got == counts[which], (
                f"bucket {which}: {got} != {counts[which]}")

    workload = Workload(name="kernel-histogram", traces=traces, space=space,
                        description="atomic scatter histogram")
    return workload, verify


def pipeline_sum(stages: int = 3, items: int = 5) -> Tuple[Workload, Verifier]:
    """A chain of threads: stage 0 produces 1..items; each later stage
    consumes its predecessor's stream (flag/data), adds 10, re-publishes.
    The sink total is sum(1..items) + items * 10 * (stages - 1)."""
    space = AddressSpace()
    slots = [space.new_array(f"s{stage}", items)
             for stage in range(stages)]
    flags = [space.new_array(f"f{stage}", items)
             for stage in range(stages)]
    traces = []
    for stage in range(stages):
        t = TraceBuilder()
        acc = t.reg()
        t.mov(acc, 0)
        for i in range(items):
            if stage == 0:
                t.store(slots[0][i], i + 1)
                t.store(flags[0][i], 1)
            else:
                spin_until_set(t, flags[stage - 1][i], poll_delay=4)
                value = t.reg()
                t.load(value, slots[stage - 1][i])
                bumped = t.reg()
                t.addi(bumped, value, 10)
                t.store(slots[stage][i], value_reg=bumped)
                t.store(flags[stage][i], 1)
                if stage == stages - 1:
                    next_acc = t.reg()
                    t.addi(next_acc, acc, 0)  # keep acc chain alive
                    acc = next_acc
        traces.append(t.build())
    expected_last = [i + 1 + 10 * (stages - 1) for i in range(items)]

    def verify(system, result):
        for i in range(items):
            got = _final_value(result, slots[stages - 1][i])
            assert got == expected_last[i], (
                f"pipeline item {i}: {got} != {expected_last[i]}")

    workload = Workload(name="kernel-pipeline", traces=traces, space=space,
                        description="flag/data pipeline with per-stage +10")
    return workload, verify


def running_sum_chain(num_threads: int = 4,
                      per_thread: int = 5) -> Tuple[Workload, Verifier]:
    """A token-passing chain: thread ``i`` waits for thread ``i-1``'s
    flag, loads the running sum, adds its own (build-time) contribution
    through real register arithmetic, publishes, and flags the next
    thread.  The final sum is fully determined — and the values flow
    through loads, so a stale read anywhere corrupts the answer."""
    space = AddressSpace()
    token = space.new_array("token", num_threads)
    running = space.new_array("running", num_threads)
    contributions = [
        sum(((tid * 7 + i * 13) % 97) + 1 for i in range(per_thread))
        for tid in range(num_threads)
    ]
    traces = []
    for tid in range(num_threads):
        t = TraceBuilder()
        if tid > 0:
            spin_until_set(t, token[tid - 1], poll_delay=4)
            prev = t.reg()
            t.load(prev, running[tid - 1])
        else:
            prev = t.reg()
            t.mov(prev, 0)
        acc = prev
        # Accumulate the contribution in per_thread register steps so
        # the dataflow is a real dependence chain, not one constant.
        for i in range(per_thread):
            nxt = t.reg()
            t.addi(nxt, acc, ((tid * 7 + i * 13) % 97) + 1)
            acc = nxt
        t.store(running[tid], value_reg=acc)
        t.store(token[tid], 1)
        traces.append(t.build())
    expected = sum(contributions)

    def verify(system, result):
        got = _final_value(result, running[num_threads - 1])
        assert got == expected, f"running sum: {got} != {expected}"

    workload = Workload(name="kernel-running-sum", traces=traces,
                        space=space,
                        description="token-passing running sum chain")
    return workload, verify


ALL_KERNELS: Dict[str, Callable[[], Tuple[Workload, Verifier]]] = {
    "locked-sum": locked_sum,
    "histogram": atomic_histogram,
    "pipeline": pipeline_sum,
    "running-sum": running_sum_chain,
}
