"""Trace-program construction: a tiny assembler for core traces.

:class:`TraceBuilder` builds one core's instruction list; register 0 is
reserved and always holds zero (used for unconditional jumps).
:class:`AddressSpace` hands out variable addresses, by default one cache
line apart; packing two variables into one line models false sharing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import ConfigError
from ..common.types import InstrType
from ..core.instruction import Instruction

ZERO_REG = 0


class AddressSpace:
    """Allocates byte addresses for named shared variables."""

    def __init__(self, line_bytes: int = 64, base: int = 0x1000) -> None:
        self.line_bytes = line_bytes
        self._next_line = base // line_bytes
        self.vars: Dict[str, int] = {}

    def new_var(self, name: str, *, share_line_with: Optional[str] = None,
                offset: int = 0) -> int:
        """Allocate *name*; ``share_line_with`` packs it into another
        variable's cache line (false sharing)."""
        if name in self.vars:
            raise ConfigError(f"variable {name!r} already allocated")
        if share_line_with is not None:
            base_line = self.vars[share_line_with] // self.line_bytes
            addr = base_line * self.line_bytes + offset
        else:
            addr = self._next_line * self.line_bytes
            self._next_line += 1
        self.vars[name] = addr
        return addr

    def new_array(self, name: str, count: int, *,
                  stride: Optional[int] = None) -> List[int]:
        """Allocate *count* elements.

        With the default stride (one line) each element gets its own
        cache line; a smaller stride packs elements into shared lines,
        which is how array workloads get spatial locality (and false
        sharing at partition boundaries).
        """
        stride = stride or self.line_bytes
        if stride >= self.line_bytes:
            return [self.new_var(f"{name}[{i}]") for i in range(count)]
        per_line = self.line_bytes // stride
        addrs: List[int] = []
        base = 0
        for i in range(count):
            if i % per_line == 0:
                base = self.new_var(f"{name}@{i}")
            addrs.append(base + (i % per_line) * stride)
        return addrs

    def __getitem__(self, name: str) -> int:
        return self.vars[name]


class TraceBuilder:
    """Assembles one core's trace; every method returns the new index."""

    def __init__(self) -> None:
        self._instrs: List[Instruction] = []
        self._next_reg = 1  # register 0 is the constant zero

    # ------------------------------------------------------------- registers
    def reg(self) -> int:
        """Allocate a fresh register."""
        reg = self._next_reg
        self._next_reg += 1
        return reg

    # ---------------------------------------------------------------- labels
    @property
    def here(self) -> int:
        """Index of the next instruction to be appended."""
        return len(self._instrs)

    def fix_target(self, branch_idx: int, target: int) -> None:
        """Patch a forward branch's target."""
        instr = self._instrs[branch_idx]
        if instr.itype is not InstrType.BRANCH:
            raise ConfigError(f"instruction {branch_idx} is not a branch")
        self._instrs[branch_idx] = dataclasses.replace(instr, target=target)

    # ----------------------------------------------------------- primitives
    def _append(self, instr: Instruction) -> int:
        self._instrs.append(instr)
        return len(self._instrs) - 1

    def load(self, dst: int, addr: Optional[int] = None, *,
             addr_reg: Optional[int] = None, latency: int = 1) -> int:
        return self._append(Instruction(InstrType.LOAD, dst=dst, addr=addr,
                                        addr_reg=addr_reg, latency=latency))

    def store(self, addr: Optional[int] = None, value: int = 0, *,
              value_reg: Optional[int] = None,
              addr_reg: Optional[int] = None, latency: int = 1) -> int:
        return self._append(Instruction(InstrType.STORE, addr=addr, imm=value,
                                        value_reg=value_reg, addr_reg=addr_reg,
                                        latency=latency))

    def mov(self, dst: int, imm: int) -> int:
        return self._append(Instruction(InstrType.ALU, dst=dst, op="mov",
                                        imm=imm))

    def addi(self, dst: int, src: int, imm: int = 0, *, latency: int = 1) -> int:
        return self._append(Instruction(InstrType.ALU, dst=dst, srcs=(src,),
                                        op="addi", imm=imm, latency=latency))

    def xori(self, dst: int, src: int, imm: int) -> int:
        return self._append(Instruction(InstrType.ALU, dst=dst, srcs=(src,),
                                        op="xori", imm=imm))

    def compute(self, dst: Optional[int] = None, srcs: tuple = (), *,
                latency: int = 1, imm: int = 0) -> int:
        """Latency-only work carrying optional register dependences.

        With sources, the result passes src0's value through (a slow
        copy); without sources it produces ``imm``.
        """
        return self._append(Instruction(InstrType.ALU, dst=dst, srcs=srcs,
                                        op="compute", imm=imm, latency=latency))

    def gate(self, dst: int, srcs: tuple, *, latency: int = 1,
             imm: int = 0) -> int:
        """Produce ``imm`` only after *srcs* are ready (timing dependency
        without value coupling — e.g. unresolved load addresses)."""
        return self._append(Instruction(InstrType.ALU, dst=dst, srcs=srcs,
                                        op="gate", imm=imm, latency=latency))

    def beqz(self, src: int, target: int, *, predict_taken: bool = False,
             latency: int = 1) -> int:
        return self._append(Instruction(InstrType.BRANCH, srcs=(src,),
                                        op="beqz", target=target,
                                        predict_taken=predict_taken,
                                        latency=latency))

    def bnez(self, src: int, target: int, *, predict_taken: bool = False,
             latency: int = 1) -> int:
        return self._append(Instruction(InstrType.BRANCH, srcs=(src,),
                                        op="bnez", target=target,
                                        predict_taken=predict_taken,
                                        latency=latency))

    def jump(self, target: int) -> int:
        """Unconditional jump (always-taken branch on the zero register)."""
        return self.beqz(ZERO_REG, target, predict_taken=True)

    def tas(self, dst: int, addr: int) -> int:
        """Atomic test-and-set: dst = old value; memory = 1."""
        return self._append(Instruction(InstrType.ATOMIC, dst=dst, addr=addr,
                                        op="tas"))

    def faa(self, dst: int, addr: int, imm: int = 1) -> int:
        """Atomic fetch-and-add: dst = old value; memory += imm."""
        return self._append(Instruction(InstrType.ATOMIC, dst=dst, addr=addr,
                                        op="faa", imm=imm))

    def nop(self) -> int:
        return self._append(Instruction(InstrType.NOP))

    def build(self) -> List[Instruction]:
        for idx, instr in enumerate(self._instrs):
            if instr.itype is InstrType.BRANCH:
                if not 0 <= instr.target <= len(self._instrs):
                    raise ConfigError(
                        f"branch at {idx} targets {instr.target}, "
                        f"outside 0..{len(self._instrs)}"
                    )
        return list(self._instrs)


@dataclass
class Workload:
    """A named multi-core program plus its address map."""

    name: str
    traces: List[List[Instruction]]
    space: Optional[AddressSpace] = None
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)
