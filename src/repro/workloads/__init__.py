"""Workload construction: trace DSL, synchronization, benchmark suites."""

from . import parsec, splash
from .characterize import WorkloadProfile, characterize
from .generators import WorkloadKit
from .kernels import ALL_KERNELS
from .parsec import PARSEC_WORKLOADS
from .splash import SPLASH_WORKLOADS
from .synchronization import (
    Barrier,
    BarrierEpisode,
    lock_acquire,
    lock_release,
    spin_until_set,
)
from .trace import AddressSpace, TraceBuilder, Workload, ZERO_REG

#: All benchmark generators by name (SPLASH-3-like + PARSEC-like).
ALL_WORKLOADS = {**SPLASH_WORKLOADS, **PARSEC_WORKLOADS}

__all__ = [
    "ALL_KERNELS",
    "ALL_WORKLOADS",
    "PARSEC_WORKLOADS",
    "SPLASH_WORKLOADS",
    "WorkloadKit",
    "WorkloadProfile",
    "characterize",
    "parsec",
    "splash",
    "Barrier",
    "BarrierEpisode",
    "lock_acquire",
    "lock_release",
    "spin_until_set",
    "AddressSpace",
    "TraceBuilder",
    "Workload",
    "ZERO_REG",
]
