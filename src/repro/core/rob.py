"""Collapsible reorder buffer.

Out-of-order commit removes entries from arbitrary positions; the
collapsible design closes the gap immediately so program order is kept
implicitly by position (the design Bell & Lipasti settled on, paper §4.1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..common.errors import SimulationError
from .instruction import DynInstr


class ReorderBuffer:
    """Program-ordered window of in-flight instructions."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: List[DynInstr] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInstr]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> DynInstr:
        return self._entries[index]

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[DynInstr]:
        return self._entries[0] if self._entries else None

    def push(self, dyn: DynInstr) -> None:
        if self.full:
            raise SimulationError("ROB overflow")
        self._entries.append(dyn)

    def commit(self, dyn: DynInstr) -> None:
        """Remove *dyn* from any position (collapse the gap)."""
        self._entries.remove(dyn)

    def squash_younger_than(self, dyn: Optional[DynInstr]) -> List[DynInstr]:
        """Remove and return everything younger than *dyn*.

        With ``dyn=None`` the whole ROB is squashed.  *dyn* itself stays.
        """
        if dyn is None:
            squashed, self._entries = self._entries, []
            return squashed
        try:
            pos = self._entries.index(dyn)
        except ValueError:
            raise SimulationError(f"{dyn!r} not in ROB")
        squashed = self._entries[pos + 1:]
        del self._entries[pos + 1:]
        return squashed

    def squash_from(self, dyn: DynInstr) -> List[DynInstr]:
        """Remove and return *dyn* and everything younger."""
        pos = self._entries.index(dyn)
        squashed = self._entries[pos:]
        del self._entries[pos:]
        return squashed
