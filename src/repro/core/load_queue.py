"""Collapsible load queue with SoS / M-speculative tracking.

Terminology (paper Table 4):

* a load is **performed** once it has its data;
* it is **ordered** (w.r.t. loads) when every older load is performed;
* the unique oldest non-performed load is the **SoS load** (all loads
  before it are performed, so it is ordered but not performed);
* a performed-but-unordered load is **M-speculative** and holds a
  *lockdown* until it becomes ordered (or is squashed).

Because the LQ is collapsible, committed loads leave from any position;
their lockdowns migrate to the LDT (see :mod:`repro.core.lockdowns`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set

from ..common.errors import SimulationError
from ..common.types import LineAddr
from .instruction import DynInstr


@dataclass(slots=True, eq=False)
class LQEntry:
    """One in-flight load."""

    dyn: DynInstr
    line: Optional[LineAddr] = None  # known once the address resolves
    performed: bool = False
    forwarded: bool = False  # value came from the local SQ/SB
    #: This entry holds a Nacked invalidation's deferred ack ("seen" bit).
    seen: bool = False
    #: LDT indices this entry must release when performed *and* ordered.
    guards: Set[int] = field(default_factory=set)
    #: The ordered-sweep already lifted this entry's lockdown.
    ordered_done: bool = False
    #: The load already retired (in-order ECL cores retire loads early,
    #: keeping the LQ entry alive until performed and ordered).
    retired: bool = False

    def __repr__(self) -> str:
        flags = ("P" if self.performed else "") + ("S" if self.seen else "")
        return f"<LQ {self.dyn!r} {self.line!r} {flags} g={sorted(self.guards)}>"


class LoadQueue:
    """Program-ordered, collapsible queue of loads."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: List[LQEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LQEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, dyn: DynInstr) -> LQEntry:
        if self.full:
            raise SimulationError("LQ overflow")
        entry = LQEntry(dyn=dyn)
        self._entries.append(entry)
        return entry

    def entry_for(self, dyn: DynInstr) -> Optional[LQEntry]:
        for entry in self._entries:
            if entry.dyn is dyn:
                return entry
        return None

    def remove(self, entry: LQEntry) -> None:
        self._entries.remove(entry)

    def position(self, entry: LQEntry) -> int:
        return self._entries.index(entry)

    # ------------------------------------------------------------- ordering
    def first_nonperformed(self) -> Optional[LQEntry]:
        """The SoS load: oldest entry without data (None if all performed)."""
        for entry in self._entries:
            if not entry.performed:
                return entry
        return None

    def is_sos(self, entry: LQEntry) -> bool:
        return self.first_nonperformed() is entry

    def is_ordered(self, entry: LQEntry) -> bool:
        """All older loads performed (the entry itself may or may not be)."""
        for other in self._entries:
            if other is entry:
                return True
            if not other.performed:
                return False
        raise SimulationError(f"{entry!r} not in LQ")

    def is_mspeculative(self, entry: LQEntry) -> bool:
        """Performed out-of-order w.r.t. an older non-performed load.

        Forwarded loads count too: once the forwarding store drains, a
        remote write can make the forwarded value stale relative to the
        load's program-order point, so the reordering is observable and
        must be protected like any other (found by the cross-mode
        fuzzer; see tests/integration/test_random_programs.py).
        """
        return entry.performed and not self.is_ordered(entry)

    def mspeculative_on_line(self, line: LineAddr) -> List[LQEntry]:
        """All current M-speculative entries whose address is on *line*."""
        first_np = self.first_nonperformed()
        if first_np is None:
            return []
        found: List[LQEntry] = []
        past_first_np = False
        for entry in self._entries:
            if entry is first_np:
                past_first_np = True
                continue
            if past_first_np and entry.performed and entry.line == line:
                found.append(entry)
        return found

    def nearest_older_nonperformed(self, entry: LQEntry) -> Optional[LQEntry]:
        """The youngest non-performed entry older than *entry* (paper §4.2)."""
        candidate: Optional[LQEntry] = None
        for other in self._entries:
            if other is entry:
                return candidate
            if not other.performed:
                candidate = other
        raise SimulationError(f"{entry!r} not in LQ")

    def has_lockdown_on(self, line: LineAddr) -> bool:
        return bool(self.mspeculative_on_line(line))

    def active_lockdowns(self) -> int:
        """How many entries currently hold a lockdown: performed past
        the SoS load and not yet lifted by the ordered-sweep."""
        first_np = self.first_nonperformed()
        if first_np is None:
            return 0
        count = 0
        past_first_np = False
        for entry in self._entries:
            if entry is first_np:
                past_first_np = True
                continue
            if past_first_np and entry.performed and not entry.ordered_done:
                count += 1
        return count
