"""Trace instructions (static) and their dynamic instances.

Workloads are per-core linear traces of :class:`Instruction`.  The core
model executes them as a small register machine: ALU ops compute real
values, branches compare real register contents (so spin loops on shared
flags behave dynamically), and memory operations move versioned values
through the coherence protocol.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..common.errors import ConfigError
from ..common.types import InstrType

#: ALU operations understood by the execute stage.
#: "compute" passes src0's value through (latency carrier); "gate"
#: depends on its sources but always produces ``imm`` (used to make one
#: memory access's *timing* depend on another without perturbing its
#: address).
ALU_OPS = ("mov", "addi", "xori", "compute", "gate")
#: Atomic read-modify-write flavours.
ATOMIC_OPS = ("tas", "faa")
#: Branch conditions.
BRANCH_OPS = ("beqz", "bnez")


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static trace entry.

    ``addr``/``addr_reg``: memory ops address = ``addr`` plus the value of
    ``addr_reg`` (if given); an ``addr_reg`` whose producer is slow gives
    the paper's *unresolved address* case.
    ``op`` selects the ALU/atomic/branch flavour; ``imm`` is its literal.
    ``target`` is the trace index a branch jumps to when taken;
    ``predict_taken`` is the static prediction.
    """

    itype: InstrType
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    op: str = ""
    imm: int = 0
    addr: Optional[int] = None
    addr_reg: Optional[int] = None
    value_reg: Optional[int] = None  # stores: register holding the value
    latency: int = 1
    target: Optional[int] = None
    predict_taken: bool = False

    def __post_init__(self) -> None:
        if self.itype is InstrType.ALU and self.op not in ALU_OPS:
            raise ConfigError(f"unknown ALU op {self.op!r}")
        if self.itype is InstrType.ATOMIC and self.op not in ATOMIC_OPS:
            raise ConfigError(f"unknown atomic op {self.op!r}")
        if self.itype is InstrType.BRANCH:
            if self.op not in BRANCH_OPS:
                raise ConfigError(f"unknown branch op {self.op!r}")
            if self.target is None:
                raise ConfigError("branch needs a target")
        if self.itype in (InstrType.LOAD, InstrType.STORE, InstrType.ATOMIC):
            if self.addr is None and self.addr_reg is None:
                raise ConfigError(f"{self.itype.value} needs an address")

    @property
    def is_mem(self) -> bool:
        return self.itype in (InstrType.LOAD, InstrType.STORE, InstrType.ATOMIC)


_dyn_uids = itertools.count(1)


@dataclass(slots=True, eq=False)
class DynInstr:
    """A dynamic instance of a trace instruction."""

    instr: Instruction
    trace_idx: int
    seq: int  # per-core dynamic program-order sequence number
    uid: int = field(default_factory=lambda: next(_dyn_uids))

    # Pipeline state
    dispatched_cycle: int = -1
    issued: bool = False
    executed: bool = False  # value computed / branch resolved
    performed: bool = False  # memory ops: data read or written globally
    committed: bool = False
    squashed: bool = False

    # Dataflow
    producers: Tuple[Optional["DynInstr"], ...] = ()
    src_values: Tuple[Optional[int], ...] = ()  # captured when no producer
    value: Optional[int] = None  # result (ALU, load, atomic old value)

    # Memory
    resolved_addr: Optional[int] = None
    version_read: Optional[int] = None  # loads: store version observed
    version_written: Optional[int] = None  # stores/atomics
    mem_inflight: bool = False
    used_tearoff: bool = False
    retry_when_ordered: bool = False
    forwarded_load: bool = False
    performed_cycle: int = -1

    # Branch
    mispredicted: bool = False

    # Source-layout positions (set at dispatch)
    addr_src_idx: Optional[int] = None
    value_src_idx: Optional[int] = None
    #: Direct links to this instruction's LQ/SQ entry (set at dispatch).
    lq_entry: Optional[object] = None
    sq_entry: Optional[object] = None
    #: SoS load launched an extra uncacheable read past a blocked write.
    bypass_launched: bool = False

    @property
    def itype(self) -> InstrType:
        return self.instr.itype

    def sources_ready(self) -> bool:
        for producer in self.producers:
            if producer is not None and not producer.executed:
                return False
        return True

    def source_value(self, index: int) -> int:
        producer = self.producers[index]
        if producer is not None:
            if not producer.executed:
                raise ConfigError("reading a source before it is ready")
            return producer.value or 0
        captured = self.src_values[index]
        return captured or 0

    def address_ready(self) -> bool:
        if not self.instr.is_mem:
            return True
        if self.instr.addr_reg is None:
            return True
        return self.resolved_addr is not None or self.sources_ready()

    def __repr__(self) -> str:
        flags = "".join(
            flag
            for flag, on in (
                ("I", self.issued),
                ("X", self.executed),
                ("P", self.performed),
                ("C", self.committed),
                ("Q", self.squashed),
            )
            if on
        )
        return f"<{self.itype.value}#{self.seq}@{self.trace_idx} {flags}>"
