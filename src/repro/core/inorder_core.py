"""In-order, stall-on-use core with optional Early Commit of Loads (ECL).

The paper's first motivation (§1) for non-speculative load-load
reordering: stall-on-use in-order cores — like the DEC Alpha 21164 EV5 —
that continue executing after a miss *without a checkpoint* and commit
loads early.  Such a core cannot squash-and-re-execute, so under TSO it
classically has two options:

* ``ecl=False`` (the "wait for it" baseline): a load may not bind while
  an older load is unperformed — loads serialize, no memory-level
  parallelism across loads;
* ``ecl=True`` + WritersBlock: loads bind (and retire) immediately,
  out of order; the lockdown/WritersBlock machinery hides any observed
  reordering, so TSO holds with zero squash capability.

The pipeline is deliberately simple: one-wide in-order issue with a
register scoreboard (stall-on-use), a small in-flight window, branches
resolved at issue (no control speculation, hence no squash paths at
all), the same FIFO SQ/SB store path as the OoO core, and the same
LoadQueue/LockdownUnit/PrivateCache machinery underneath.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common.errors import SimulationError
from ..common.event_queue import EventQueue
from ..common.params import SystemParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, InstrType, LineAddr, line_of
from ..coherence.private_cache import LoadRequest, PrivateCache
from ..consistency.execution import ExecutionLog
from ..mem.store_buffer import SBEntry, StoreBuffer
from ..obs.events import EventBus, Kind
from .instruction import DynInstr, Instruction
from .ldt import LockdownTable
from .load_queue import LoadQueue, LQEntry
from .lockdowns import LockdownUnit
from .store_queue import StoreQueue


class InOrderCore:
    """EV5-flavoured in-order core; plug-compatible with OoOCore."""

    def __init__(self, core_id: int, params: SystemParams,
                 cache: PrivateCache, events: EventQueue,
                 stats: StatsRegistry, log: ExecutionLog, *,
                 ecl: bool, bus: Optional[EventBus] = None) -> None:
        self.core_id = core_id
        self.params = params
        self.cache = cache
        self.events = events
        self.log = log
        self.ecl = ecl
        self.bus = bus if bus is not None else EventBus(events)
        cp = params.core
        self.lq = LoadQueue(cp.lq_entries)
        self.sq = StoreQueue(cp.sq_entries)
        self.sb = StoreBuffer(cp.sb_entries)
        self.ldt = LockdownTable(cp.ldt_entries)
        self.lockdowns = LockdownUnit(self.lq, self.ldt,
                                      cache.send_deferred_ack, stats,
                                      bus=self.bus, tile=core_id)
        #: In-flight (issued, unretired) instructions in program order.
        self.window: List[DynInstr] = []
        self.window_size = max(cp.iq_entries, 8)
        self.trace: List[Instruction] = []
        self.pc = 0
        self._seq = 0
        self.reg_values: Dict[int, int] = {}
        self._scoreboard: Dict[int, DynInstr] = {}
        self.done = False
        self.done_cycle: Optional[int] = None

        cache.invalidation_hook = self._on_invalidation
        cache.lockdown_query = self._lockdown_query
        cache.eviction_hook = lambda line: None

        prefix = f"core{core_id}"
        self._stat_committed = stats.counter(f"{prefix}.committed")
        self._stat_cycles = stats.counter(f"{prefix}.active_cycles")
        self._stat_commits_total = stats.counter("core.committed")
        self._stat_loads = stats.counter("core.loads_performed")
        self._stat_stores = stats.counter("core.stores_performed")
        self._stat_use_stalls = stats.counter("core.inorder_use_stalls")
        self._stat_order_stalls = stats.counter("core.inorder_order_stalls")

    # ----------------------------------------------------------------- setup
    def load_trace(self, trace: List[Instruction]) -> None:
        self.trace = trace
        self.pc = 0
        self.done = not trace

    def snapshot(self) -> str:
        head = self.window[0] if self.window else None
        return (f"core{self.core_id}(inorder): pc={self.pc}/{len(self.trace)} "
                f"window={len(self.window)} head={head!r} lq={len(self.lq)} "
                f"sb={len(self.sb)}")

    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler.

        The in-flight window plays the ROB's role on this core, so it
        reports under the same ``rob`` key — one gauge catalog covers
        both core types.
        """
        return {
            "rob": len(self.window),
            "lq": len(self.lq),
            "sq": len(self.sq),
            "sb": len(self.sb),
            "ldt": len(self.ldt),
            "lockdowns": self.lq.active_lockdowns() + len(self.ldt),
        }

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        if self.done:
            return
        self._stat_cycles.add()
        self._retire()
        self._memory_stage()
        self._sb_drain()
        self._issue()
        self._check_done()

    # ----------------------------------------------------------------- issue
    def _issue(self) -> None:
        """Issue (at most) one instruction per cycle, strictly in order."""
        if self.pc >= len(self.trace) or len(self.window) >= self.window_size:
            return
        instr = self.trace[self.pc]
        if instr.itype is InstrType.LOAD and self.lq.full:
            return
        if instr.itype is InstrType.STORE and self.sq.full:
            return
        regs = self._source_regs(instr)
        for reg in regs:
            producer = self._scoreboard.get(reg)
            if producer is not None and not producer.executed:
                self._stat_use_stalls.add()
                return  # stall-on-use
        dyn = DynInstr(instr=instr, trace_idx=self.pc, seq=self._seq)
        self._seq += 1
        values = [self._read_reg(reg) for reg in regs]
        self.window.append(dyn)
        itype = instr.itype
        if itype is InstrType.ALU:
            self._execute_alu(dyn, values)
        elif itype is InstrType.BRANCH:
            self._execute_branch(dyn, values)
            return  # pc already redirected
        elif itype is InstrType.LOAD:
            entry = self.lq.allocate(dyn)
            dyn.lq_entry = entry
            dyn.resolved_addr = (instr.addr or 0) + (
                values[0] if instr.addr_reg is not None else 0)
            entry.line = line_of(dyn.resolved_addr,
                                 self.params.cache.line_bytes)
            dyn.issued = True
        elif itype is InstrType.STORE:
            self._execute_store(dyn, values)
        elif itype is InstrType.ATOMIC:
            dyn.resolved_addr = (instr.addr or 0) + (
                values[0] if instr.addr_reg is not None else 0)
            dyn.issued = True
        else:  # NOP
            dyn.executed = True
        if instr.dst is not None and itype is not InstrType.ALU:
            self._scoreboard[instr.dst] = dyn
        self.pc += 1

    @staticmethod
    def _source_regs(instr: Instruction):
        if instr.itype in (InstrType.ALU, InstrType.BRANCH):
            if instr.op in ("addi", "xori", "beqz", "bnez"):
                return (instr.srcs[0],)
            return tuple(instr.srcs)
        regs = []
        if instr.addr_reg is not None:
            regs.append(instr.addr_reg)
        if instr.itype is InstrType.STORE and instr.value_reg is not None:
            regs.append(instr.value_reg)
        return tuple(regs)

    def _read_reg(self, reg: int) -> int:
        producer = self._scoreboard.get(reg)
        if producer is not None:
            if not producer.executed:
                raise SimulationError("issued past a busy register")
            return producer.value or 0
        return self.reg_values.get(reg, 0)

    def _execute_alu(self, dyn: DynInstr, values) -> None:
        op, imm = dyn.instr.op, dyn.instr.imm
        dyn.issued = True
        if dyn.instr.dst is not None:
            self._scoreboard[dyn.instr.dst] = dyn

        def finish():
            if op == "mov":
                dyn.value = imm
            elif op == "addi":
                dyn.value = values[0] + imm
            elif op == "xori":
                dyn.value = values[0] ^ imm
            elif op == "compute" and values:
                dyn.value = values[0]
            else:
                dyn.value = imm
            dyn.executed = True

        self.events.schedule(dyn.instr.latency, finish)

    def _execute_branch(self, dyn: DynInstr, values) -> None:
        """Branches resolve at issue: no control speculation at all."""
        value = values[0]
        taken = (value == 0) if dyn.instr.op == "beqz" else (value != 0)
        dyn.value = int(taken)
        dyn.issued = True
        dyn.executed = True
        self.pc = dyn.instr.target if taken else self.pc + 1

    def _execute_store(self, dyn: DynInstr, values) -> None:
        instr = dyn.instr
        idx = 0
        addr = instr.addr or 0
        if instr.addr_reg is not None:
            addr += values[idx]
            idx += 1
        value = values[idx] if instr.value_reg is not None else instr.imm
        entry = self.sq.allocate(dyn)
        dyn.sq_entry = entry
        entry.addr = addr
        entry.value = value
        entry.version = self.log.new_version(self.core_id, dyn.seq, addr,
                                             value)
        dyn.resolved_addr = addr
        dyn.value = value
        dyn.version_written = entry.version
        dyn.issued = True
        dyn.executed = True
        line = line_of(addr, self.params.cache.line_bytes)
        if self.cache.line_state(line) not in (CacheState.M, CacheState.E):
            self.cache.request_write(line, _noop)

    # ---------------------------------------------------------- memory stage
    def _memory_stage(self) -> None:
        for entry in list(self.lq):
            self._try_load(entry)
        self._try_atomic()

    def _try_load(self, entry: LQEntry) -> None:
        dyn = entry.dyn
        if entry.performed or dyn.mem_inflight or not dyn.issued:
            if dyn.mem_inflight and not self.params.disable_sos_bypass \
                    and self.lq.is_sos(entry) and not dyn.bypass_launched \
                    and self.cache.write_blocked(entry.line):
                request = self._make_request(entry)
                if self.cache.load(request, sos_bypass=True) != "retry":
                    dyn.bypass_launched = True
            return
        if dyn.retry_when_ordered and not self.lq.is_sos(entry):
            return
        if not self.ecl and not self.lq.is_sos(entry):
            # Baseline: a load may not bind while an older one is
            # unperformed ("wait for it", paper §1 option 3).
            self._stat_order_stalls.add()
            return
        if self.sq.unresolved_older_than(dyn.seq):
            return
        if self._older_unperformed_atomic(dyn.seq):
            return
        fwd = self.sq.forward_for(dyn.resolved_addr, dyn.seq)
        if fwd is not None:
            if fwd.value_ready:
                self._emit_load_issue(entry)
                self._perform_load(entry, fwd.version, fwd.value,
                                   forwarded=True)
            return
        sb_entry = self.sb.forward(dyn.resolved_addr, dyn.seq)
        if sb_entry is not None:
            self._emit_load_issue(entry)
            self._perform_load(entry, sb_entry.version, sb_entry.value,
                               forwarded=True)
            return
        if self.lockdowns.line_pending_inv(entry.line) \
                and not self.lq.is_sos(entry):
            return
        request = self._make_request(entry)
        sos_bypass = (not self.params.disable_sos_bypass
                      and self.lq.is_sos(entry)
                      and self.cache.write_blocked(entry.line))
        if self.cache.load(request, sos_bypass=sos_bypass) != "retry":
            dyn.mem_inflight = True
            dyn.retry_when_ordered = False
            if sos_bypass:
                dyn.bypass_launched = True
            self._emit_load_issue(entry)

    def _emit_load_issue(self, entry: LQEntry) -> None:
        bus = self.bus
        if bus.active:
            dyn = entry.dyn
            bus.emit(Kind.LOAD_ISSUE, self.core_id, uid=dyn.uid, seq=dyn.seq,
                     line=int(entry.line) if entry.line is not None else -1,
                     addr=dyn.resolved_addr)

    def _make_request(self, entry: LQEntry) -> LoadRequest:
        dyn = entry.dyn

        def is_ordered() -> bool:
            return (not dyn.performed
                    and self.lq.first_nonperformed() is entry)

        def on_value(versioned, uncacheable: bool) -> None:
            if dyn.performed:
                return
            version, value = versioned
            dyn.used_tearoff = uncacheable
            self._perform_load(entry, version, value, uncacheable=uncacheable)

        def on_must_retry(wait_for_sos: bool) -> None:
            if dyn.performed:
                return
            dyn.mem_inflight = False
            dyn.bypass_launched = False
            dyn.retry_when_ordered = wait_for_sos

        return LoadRequest(byte_addr=dyn.resolved_addr, is_ordered=is_ordered,
                           on_value=on_value, on_must_retry=on_must_retry)

    def _perform_load(self, entry: LQEntry, version: int, value: int, *,
                      forwarded: bool = False,
                      uncacheable: bool = False) -> None:
        dyn = entry.dyn
        dyn.performed = True
        dyn.executed = True
        dyn.mem_inflight = False
        dyn.value = value
        dyn.version_read = version
        dyn.performed_cycle = self.events.now
        dyn.forwarded_load = forwarded
        entry.performed = True
        entry.forwarded = forwarded
        self._stat_loads.add()
        if dyn.committed and dyn.instr.dst is not None:
            # The load retired early (ECL): complete the architectural
            # write now that the value is bound.
            self.reg_values[dyn.instr.dst] = value
        bus = self.bus
        if bus.active:
            line = int(entry.line) if entry.line is not None else -1
            bus.emit(Kind.LOAD_PERFORM, self.core_id, uid=dyn.uid, line=line,
                     forwarded=forwarded, uncacheable=uncacheable)
            if not self.lq.is_ordered(entry):
                bus.emit(Kind.LOCKDOWN_BEGIN, self.core_id, uid=dyn.uid,
                         line=line)
        self.lockdowns.sweep_ordered()
        self._purge_completed_loads()

    def _purge_completed_loads(self) -> None:
        """Release LQ entries that retired, performed, and are ordered
        (their lockdown, if any, was lifted by the ordered sweep)."""
        while True:
            entries = list(self.lq)
            if not entries:
                return
            head = entries[0]
            if not (getattr(head, "retired", False) and head.performed):
                return
            dyn = head.dyn
            self.lq.remove(head)
            bus = self.bus
            if bus.active:
                bus.emit(Kind.LOAD_COMMIT, self.core_id, uid=dyn.uid,
                         line=int(head.line) if head.line is not None else -1)
            self.log.record_load(self.core_id, dyn.seq, dyn.resolved_addr,
                                 dyn.version_read, dyn.performed_cycle,
                                 forwarded=dyn.forwarded_load,
                                 uncacheable=dyn.used_tearoff)

    def _older_unperformed_atomic(self, seq: int) -> bool:
        return any(d.itype is InstrType.ATOMIC and d.seq < seq
                   and not d.performed for d in self.window)

    def _try_atomic(self) -> None:
        if not self.window:
            return
        dyn = self.window[0]
        if dyn.itype is not InstrType.ATOMIC or dyn.performed \
                or not dyn.issued or not self.sb.empty:
            return
        # An RMW is a full fence: with ECL, older loads may have retired
        # unperformed — the atomic must still wait for every older load
        # to perform (its load part may not reorder, paper §3.7).
        for entry in self.lq:
            if entry.dyn.seq < dyn.seq and not entry.performed:
                return
        line = line_of(dyn.resolved_addr, self.params.cache.line_bytes)
        state = self.cache.line_state(line)
        if state is CacheState.E:
            self.cache.request_write(line, _noop)
            state = self.cache.line_state(line)
        if state is CacheState.M:
            addr = dyn.resolved_addr
            offset = addr % self.params.cache.line_bytes
            old_version, old_value = \
                self.cache.line_entry(line).data.read(offset)
            new_value = (1 if dyn.instr.op == "tas"
                         else old_value + dyn.instr.imm)
            version = self.log.new_version(self.core_id, dyn.seq, addr,
                                           new_value)
            self.cache.perform_atomic(addr, version, new_value)
            self.log.store_performed(version)
            self.log.record_atomic(self.core_id, dyn.seq, addr, old_version,
                                   version, self.events.now)
            dyn.value = old_value
            dyn.version_read = old_version
            dyn.version_written = version
            dyn.performed = True
            dyn.executed = True
            self._stat_loads.add()
            self._stat_stores.add()
        elif not self.cache.has_write_mshr(line):
            self.cache.request_write(line, _noop)

    # ---------------------------------------------------------------- stores
    def _sb_drain(self) -> None:
        head = self.sb.head()
        if head is None:
            return
        # TSO load->store order: with ECL a store can reach the SB while
        # an older (early-retired) load is still unperformed; it must
        # not become globally visible before that load binds.
        for entry in self.lq:
            if entry.dyn.seq < head.seq and not entry.performed:
                return
        state = self.cache.line_state(head.line)
        if state is CacheState.E:
            self.cache.request_write(head.line, _noop)
            state = self.cache.line_state(head.line)
        if state is CacheState.M:
            self.cache.perform_store(head.byte_addr, head.version, head.value)
            self.log.store_performed(head.version)
            self.log.record_store(self.core_id, head.seq, head.byte_addr,
                                  head.version, self.events.now)
            self.sb.pop_head()
            self._stat_stores.add()
        elif not self.cache.has_write_mshr(head.line):
            self.cache.request_write(head.line, _noop)

    # ---------------------------------------------------------------- retire
    def _retire(self) -> None:
        retired = 0
        width = self.params.core.commit_width
        while self.window and retired < width:
            dyn = self.window[0]
            itype = dyn.itype
            if itype is InstrType.LOAD:
                entry = dyn.lq_entry
                if self.ecl:
                    # Early Commit of Loads (EV5-style): the load retires
                    # *now*, even unperformed — it is irrevocably bound.
                    # Its LQ entry stays alive to carry the lockdown
                    # until the load performs and becomes ordered
                    # (paper Figure 2.B); users stall on the scoreboard.
                    entry.retired = True
                    self._purge_completed_loads()
                else:
                    if not dyn.performed or not self.lq.is_ordered(entry):
                        break
                    entry.retired = True
                    self._purge_completed_loads()
            elif itype is InstrType.STORE:
                if not dyn.executed or self.sb.full:
                    break
                # TSO load->store: all older loads have retired already
                # (in-order retirement), so the order is safe.
                sq_entry = dyn.sq_entry
                line = line_of(sq_entry.addr, self.params.cache.line_bytes)
                self.sb.push(SBEntry(
                    byte_addr=sq_entry.addr, line=line,
                    offset=sq_entry.addr % self.params.cache.line_bytes,
                    version=sq_entry.version, value=sq_entry.value,
                    seq=dyn.seq))
                self.sq.remove(sq_entry)
            elif not dyn.executed and not dyn.performed:
                break
            elif itype is InstrType.ATOMIC and not dyn.performed:
                break
            self.window.pop(0)
            dyn.committed = True
            if dyn.instr.dst is not None and dyn.executed:
                self.reg_values[dyn.instr.dst] = dyn.value or 0
            retired += 1
            self._stat_committed.add()
            self._stat_commits_total.add()

    # ------------------------------------------------------------ coherence
    def _on_invalidation(self, line: LineAddr) -> bool:
        """No squash capability: lockdowns are the only option (ECL);
        the baseline never reorders, so it never has lockdowns."""
        if not self.ecl:
            return False
        return self.lockdowns.on_invalidation(line)

    def _lockdown_query(self, line: LineAddr) -> bool:
        return self.ecl and self.lockdowns.has_lockdown(line)

    # ------------------------------------------------------------------ done
    def _check_done(self) -> None:
        if self.pc >= len(self.trace) and not self.window \
                and not len(self.lq) and self.sb.empty:
            self.done = True
            self.done_cycle = self.events.now


def _noop() -> None:
    """Placeholder grant callback for polled write permission."""
