"""Commit policies: in-order, Bell-Lipasti safe OoO, OoO + WritersBlock.

The Bell-Lipasti conditions (paper §4) gate out-of-order commit:

1. completed; 2. register WAR resolved (proxied here by "all older
instructions have issued", i.e. have read their sources); 3. no older
unresolved branch; 4. no older store with an unresolved address;
5. no older instruction can raise an exception (inactive, as in the
paper's experiments); 6. consistency — a load may not commit while an
older load is unperformed.

``OOO_WB`` relaxes condition 6 for loads: a performed M-speculative load
commits immediately, exporting its lockdown to the LDT (unless the LDT
is full).  ``OOO_UNSAFE`` (ablation) drops condition 6 with no lockdown
export — it demonstrably violates TSO and exists to validate the checker.
"""

from __future__ import annotations

from ..common.types import CommitMode, InstrType
from ..obs.events import Kind


class ScanState:
    """Facts about the instructions older than the current scan point."""

    __slots__ = ("war_ok", "branch_ok", "stores_resolved",
                 "older_loads_performed", "older_store_uncommitted")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.war_ok = True  # all older instructions issued (WAR proxy)
        self.branch_ok = True  # no older unresolved branch
        self.stores_resolved = True  # no older store with unknown address
        self.older_loads_performed = True  # condition 6 ingredient
        self.older_store_uncommitted = False  # SQ->SB FIFO order

    def absorb(self, core, dyn) -> None:
        """Update the facts after skipping (not committing) *dyn*."""
        if not dyn.issued:
            self.war_ok = False
        itype = dyn.instr.itype
        if itype is InstrType.BRANCH and not dyn.executed:
            self.branch_ok = False
        if itype is InstrType.STORE:
            entry = dyn.sq_entry
            if entry is None or not entry.resolved:
                self.stores_resolved = False
            self.older_store_uncommitted = True
        if itype is InstrType.ATOMIC:
            self.older_store_uncommitted = True
            if not dyn.performed:
                self.older_loads_performed = False
                if dyn.resolved_addr is None:
                    self.stores_resolved = False
        if itype is InstrType.LOAD and not dyn.performed:
            self.older_loads_performed = False


class CommitUnit:
    """Per-core commit stage; drives the core's structures directly."""

    __slots__ = ("mode", "width", "_state", "_impl", "_squash_mode",
                 "_unsafe", "_wb")

    def __init__(self, mode: CommitMode, width: int = 4) -> None:
        self.mode = mode
        self.width = width
        # One reusable scan state per core: the commit stage runs every
        # cycle, and allocating a fresh state each time showed up in
        # profiles.  reset() at the top of each scan keeps it correct.
        self._state = ScanState()
        self._impl = (self._run_in_order if mode is CommitMode.IN_ORDER
                      else self._run_ooo)
        self._squash_mode = mode is CommitMode.OOO
        self._unsafe = mode is CommitMode.OOO_UNSAFE
        self._wb = mode is CommitMode.OOO_WB

    def run(self, core) -> int:
        """Commit up to ``commit_width`` instructions; returns the count."""
        committed = self._impl(core)
        if committed:
            bus = core.bus
            if bus.active:
                bus.emit(Kind.COMMIT_WINDOW, core.core_id, count=committed)
        return committed

    def _run_in_order(self, core) -> int:
        committed = 0
        width = self.width
        state = self._state
        state.reset()
        while committed < width and not core.rob.empty:
            head = core.rob.head()
            if not self._eligible(core, head, state):
                break
            core.do_commit(head)
            committed += 1
        return committed

    def _run_ooo(self, core) -> int:
        committed = 0
        width = self.width
        state = self._state
        state.reset()
        eligible = self._eligible
        do_commit = core.do_commit
        entries = core.rob._entries
        idx = 0
        while idx < len(entries) and committed < width:
            dyn = entries[idx]
            if eligible(core, dyn, state):
                do_commit(dyn)
                committed += 1
                # The collapsible ROB closed the gap; same idx is next.
            else:
                state.absorb(core, dyn)
                idx += 1
                # Conditions 2-4 never recover within one scan: once an
                # older instruction is unissued, an older branch is
                # unresolved, or an older store address is unknown,
                # nothing younger can commit this cycle.
                if not (state.war_ok and state.branch_ok
                        and state.stores_resolved):
                    break
        return committed

    # ------------------------------------------------------------ predicate
    def _eligible(self, core, dyn, state: ScanState) -> bool:
        # Callers guarantee conditions 2-4 still hold when this runs: both
        # scan loops stop as soon as war_ok/branch_ok/stores_resolved go
        # false, so there is no need to re-check them per instruction.
        itype = dyn.instr.itype
        if itype in (InstrType.ALU, InstrType.NOP, InstrType.BRANCH):
            if not dyn.executed:
                return False
            # Under squash-based consistency enforcement (plain OOO), an
            # unperformed older load means a younger performed load may
            # yet be consistency-squashed, re-executing this region:
            # nothing younger than the SoS load may irrevocably commit.
            # WritersBlock removes exactly this restriction (loads are
            # never consistency-squashed), which is where most of its
            # commit benefit comes from.  OOO_UNSAFE ignores the hazard.
            if self._squash_mode:
                return state.older_loads_performed
            return True
        if itype is InstrType.ATOMIC:
            return dyn.performed
        if itype is InstrType.STORE:
            if not dyn.executed or state.older_store_uncommitted:
                return False
            if not state.older_loads_performed:  # TSO load->store order
                return False
            return not core.sb.full
        if itype is InstrType.LOAD:
            if not dyn.performed:
                return False
            if state.older_loads_performed:
                return True
            # The load is M-speculative: condition 6 normally blocks it.
            if self._unsafe:
                return True
            if self._wb:
                # Forwarded loads export a lockdown too (their value can
                # go stale once the forwarding store drains).
                return not core.ldt.full
            return False
        raise AssertionError(f"unhandled itype {itype}")
