"""Lockdown lifecycle: LQ lockdowns, LDT export, deferred invalidation acks.

This unit owns the interaction the paper's §3.2 and §4.2 describe:

* an invalidation that finds M-speculative loads (LQ) or exported
  lockdowns (LDT) on its line is Nacked; the "seen" bits are set and the
  deferred ack is owed;
* a lockdown is *lifted* when its load becomes ordered, and *ended* when
  its load is squashed; either way, once the **last** lockdown for the
  line is gone the deferred ack goes out;
* an M-speculative load committing out-of-order exports its lockdown to
  the LDT and hands release responsibility to its nearest older
  non-performed load (the ``guards`` set), which may hand it on again.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ..common.errors import SimulationError
from ..common.stats import StatsRegistry
from ..common.types import LineAddr
from ..obs.events import NULL_BUS, EventBus, Kind
from .ldt import LockdownTable
from .load_queue import LoadQueue, LQEntry

HolderKey = Tuple[str, int]  # ("lq", dyn uid) or ("ldt", table index)


class LockdownUnit:
    """Coordinates the LQ, the LDT, and pending deferred acks."""

    def __init__(self, lq: LoadQueue, ldt: LockdownTable,
                 send_deferred_ack: Callable[[LineAddr], None],
                 stats: StatsRegistry, *,
                 bus: Optional[EventBus] = None, tile: int = 0) -> None:
        self.lq = lq
        self.ldt = ldt
        self.tile = tile
        self.bus = bus if bus is not None else NULL_BUS
        self._send_deferred_ack = send_deferred_ack
        self._pending: Dict[LineAddr, Set[HolderKey]] = {}
        self._stat_lockdown_hits = stats.counter("core.lockdown_invalidations")
        self._stat_exports = stats.counter("core.ldt_exports")
        self._stat_deferred = stats.counter("core.deferred_acks_sent")

    # -------------------------------------------------------------- queries
    def has_lockdown(self, line: LineAddr) -> bool:
        return self.lq.has_lockdown_on(line) or self.ldt.has_line(line)

    def line_pending_inv(self, line: LineAddr) -> bool:
        """Line under a Nacked invalidation: no new lockdowns, and new
        unordered loads should not even issue for it (paper §3.4)."""
        return line in self._pending

    # -------------------------------------------------------- invalidation
    def on_invalidation(self, line: LineAddr) -> bool:
        """Record the lockdown holders for an arriving invalidation.

        Returns True when at least one lockdown exists (the cache Nacks
        and this unit owes a deferred ack later).
        """
        lq_holders = self.lq.mspeculative_on_line(line)
        ldt_holders = self.ldt.entries_on_line(line)
        if not lq_holders and not ldt_holders:
            return False
        if line in self._pending:
            raise SimulationError(
                f"second invalidation for {line!r} while one is pending"
            )
        self._stat_lockdown_hits.add()
        keys: Set[HolderKey] = set()
        for entry in lq_holders:
            entry.seen = True
            keys.add(("lq", entry.dyn.uid))
        for ldt_entry in ldt_holders:
            ldt_entry.seen = True
            keys.add(("ldt", ldt_entry.index))
        self._pending[line] = keys
        bus = self.bus
        if bus.active:
            bus.emit(Kind.INV_NACKED, self.tile, line=int(line),
                     holders=len(keys), lq=len(lq_holders),
                     ldt=len(ldt_holders))
        return True

    def _release_holder(self, line: LineAddr, key: HolderKey) -> None:
        holders = self._pending.get(line)
        if holders is None:
            return
        holders.discard(key)
        if not holders:
            del self._pending[line]
            self._stat_deferred.add()
            bus = self.bus
            if bus.active:
                bus.emit(Kind.DEFERRED_ACK, self.tile, line=int(line),
                         via_kind=key[0], via_id=key[1])
            self._send_deferred_ack(line)

    # ------------------------------------------------------------ lifecycle
    def sweep_ordered(self) -> None:
        """Lift the lockdown of every load that just became ordered.

        Called whenever ordering may have advanced (a load performed,
        a commit or squash removed LQ entries).
        """
        bus = self.bus
        for entry in self.lq:
            if not entry.performed:
                break
            if not entry.ordered_done:
                entry.ordered_done = True
                if bus.active:
                    bus.emit(Kind.LOAD_ORDERED, self.tile, uid=entry.dyn.uid,
                             line=int(entry.line) if entry.line is not None
                             else -1)
                self._lift(entry)

    def _lift(self, entry: LQEntry) -> None:
        if entry.seen:
            entry.seen = False
            self._release_holder(entry.line, ("lq", entry.dyn.uid))
        for index in sorted(entry.guards):
            self._release_ldt(index)
        entry.guards.clear()

    def _release_ldt(self, index: int) -> None:
        ldt_entry = self.ldt.release(index)
        bus = self.bus
        if bus.active:
            bus.emit(Kind.LDT_RELEASE, self.tile, index=index,
                     line=int(ldt_entry.line))
        if ldt_entry.seen:
            self._release_holder(ldt_entry.line, ("ldt", index))

    def on_squash(self, entry: LQEntry) -> None:
        """A C-/D-speculative squash *ends* the lockdown (paper §3.2)."""
        if entry.seen:
            entry.seen = False
            self._release_holder(entry.line, ("lq", entry.dyn.uid))
        if entry.guards:
            heir = self.lq.nearest_older_nonperformed(entry)
            if heir is not None:
                heir.guards |= entry.guards
            else:
                for index in sorted(entry.guards):
                    self._release_ldt(index)
            entry.guards.clear()

    def export_on_commit(self, entry: LQEntry) -> bool:
        """Export an M-speculative load's lockdown to the LDT (paper §4.2).

        Returns False (commit must wait) when the LDT is full.  On
        success the caller removes *entry* from the LQ.
        """
        if self.ldt.full:
            return False
        guard = self.lq.nearest_older_nonperformed(entry)
        if guard is None:
            raise SimulationError(f"exporting an ordered load: {entry!r}")
        ldt_entry = self.ldt.allocate(entry.line, seen=entry.seen)
        self._stat_exports.add()
        bus = self.bus
        if bus.active:
            bus.emit(Kind.LOCKDOWN_EXPORT, self.tile, uid=entry.dyn.uid,
                     line=int(entry.line), index=ldt_entry.index)
        if entry.seen:
            holders = self._pending.get(entry.line)
            if holders is None:
                raise SimulationError(f"seen bit without pending inv: {entry!r}")
            holders.discard(("lq", entry.dyn.uid))
            holders.add(("ldt", ldt_entry.index))
            entry.seen = False
        guard.guards |= entry.guards | {ldt_entry.index}
        entry.guards.clear()
        return True
