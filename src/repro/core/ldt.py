"""Lockdown Table (LDT), paper §4.2.

When an M-speculative load commits out-of-order (OOO_WB mode), it leaves
the collapsible LQ but its lockdown must survive until the load *would
have become ordered*.  The lockdown is exported to this small table; the
responsibility to release it is handed to the load's nearest older
non-performed LQ entry (its ``guards`` set).

Invalidations search the LDT associatively by line address and set the
"seen" bit; the deferred ack goes out only when the last lockdown for
that line is released.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.errors import SimulationError
from ..common.types import LineAddr


@dataclass
class LDTEntry:
    """One exported lockdown."""

    index: int
    line: LineAddr
    seen: bool = False


class LockdownTable:
    """Fixed-capacity table of exported lockdowns."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[int, LDTEntry] = {}
        self._next_index = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, line: LineAddr, *, seen: bool = False) -> LDTEntry:
        if self.full:
            raise SimulationError("LDT overflow")
        entry = LDTEntry(index=self._next_index, line=line, seen=seen)
        self._entries[entry.index] = entry
        self._next_index += 1
        return entry

    def get(self, index: int) -> LDTEntry:
        return self._entries[index]

    def release(self, index: int) -> LDTEntry:
        """Free the entry; the caller handles any deferred ack."""
        entry = self._entries.pop(index, None)
        if entry is None:
            raise SimulationError(f"LDT release of unknown index {index}")
        return entry

    def entries_on_line(self, line: LineAddr) -> List[LDTEntry]:
        return [entry for entry in self._entries.values() if entry.line == line]

    def has_line(self, line: LineAddr) -> bool:
        return any(entry.line == line for entry in self._entries.values())

    def entries(self) -> List[LDTEntry]:
        return list(self._entries.values())
