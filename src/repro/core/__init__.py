"""The out-of-order core model: pipeline, queues, lockdowns, commit."""

from .commit import CommitUnit, ScanState
from .instruction import ALU_OPS, ATOMIC_OPS, BRANCH_OPS, DynInstr, Instruction
from .ldt import LDTEntry, LockdownTable
from .load_queue import LoadQueue, LQEntry
from .lockdowns import LockdownUnit
from .ooo_core import OoOCore
from .rob import ReorderBuffer
from .store_queue import SQEntry, StoreQueue

__all__ = [
    "CommitUnit",
    "ScanState",
    "ALU_OPS",
    "ATOMIC_OPS",
    "BRANCH_OPS",
    "DynInstr",
    "Instruction",
    "LDTEntry",
    "LockdownTable",
    "LoadQueue",
    "LQEntry",
    "LockdownUnit",
    "OoOCore",
    "ReorderBuffer",
    "SQEntry",
    "StoreQueue",
]
