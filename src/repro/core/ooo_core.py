"""The out-of-order core model.

A mechanistic OoO pipeline driven by a per-core instruction trace:
dispatch (width-limited, resource-checked) → dataflow issue → execute /
memory → commit (policy-pluggable).  Branches compare real register
values, so spin loops on shared memory behave dynamically; loads and
stores move versioned values through the coherence protocol.

Consistency enforcement is the configurable part (paper §4/§5):

* ``IN_ORDER`` / ``OOO``: M-speculative loads are squashed when an
  invalidation hits them (classic TSO enforcement); commit is in-order
  or Bell-Lipasti-safe out-of-order respectively.
* ``OOO_WB``: no consistency squashes — M-speculative loads enter
  lockdown, Nack invalidations, and may commit out-of-order exporting
  their lockdown to the LDT.
* ``OOO_UNSAFE``: ablation; reordered loads commit with no protection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..common.errors import SimulationError
from ..common.event_queue import EventQueue
from ..common.params import SystemParams
from ..common.stats import StatsRegistry
from ..common.types import CacheState, CommitMode, InstrType, LineAddr, line_of
from ..coherence.private_cache import LoadRequest, PrivateCache
from ..consistency.execution import ExecutionLog
from ..mem.store_buffer import SBEntry, StoreBuffer
from ..obs.events import EventBus, Kind
from .commit import CommitUnit
from .instruction import DynInstr, Instruction
from .ldt import LockdownTable
from .load_queue import LoadQueue, LQEntry
from .lockdowns import LockdownUnit
from .rob import ReorderBuffer
from .store_queue import StoreQueue


class OoOCore:
    """One core: pipeline structures plus commit policy."""

    def __init__(self, core_id: int, params: SystemParams, cache: PrivateCache,
                 events: EventQueue, stats: StatsRegistry,
                 log: ExecutionLog, *,
                 bus: Optional[EventBus] = None) -> None:
        self.core_id = core_id
        self.params = params
        self.cache = cache
        self.events = events
        self.bus = bus if bus is not None else EventBus(events)
        self.log = log
        self.mode = params.commit_mode
        cp = params.core
        self.rob = ReorderBuffer(cp.rob_entries)
        self.iq: List[DynInstr] = []
        self.lq = LoadQueue(cp.lq_entries)
        self.sq = StoreQueue(cp.sq_entries)
        self.sb = StoreBuffer(cp.sb_entries)
        self.ldt = LockdownTable(cp.ldt_entries)
        # Hot-loop copies of run-invariant parameters: the tick path runs
        # every cycle and chained params lookups dominate it otherwise.
        self._issue_width = cp.issue_width
        self._iq_cap = cp.iq_entries
        self._line_bytes = params.cache.line_bytes
        self._sos_bypass = not params.disable_sos_bypass
        self._trace_len = 0
        self.lockdowns = LockdownUnit(self.lq, self.ldt,
                                      cache.send_deferred_ack, stats,
                                      bus=self.bus, tile=core_id)
        self.commit_unit = CommitUnit(self.mode, cp.commit_width)
        self._commit_run = self.commit_unit.run

        self.trace: List[Instruction] = []
        self.pc = 0
        self._seq = 0
        self.fetch_stall_until = 0
        self.done = False
        self.done_cycle: Optional[int] = None
        self.reg_values: Dict[int, int] = {}
        self.reg_producer: Dict[int, DynInstr] = {}
        self._pending_atomics: List[DynInstr] = []

        # Wire the coherence-side hooks.
        cache.invalidation_hook = self._on_invalidation
        cache.lockdown_query = self._lockdown_query
        cache.eviction_hook = self._on_nonsilent_eviction

        prefix = f"core{core_id}"
        self._stat_committed = stats.counter(f"{prefix}.committed")
        self._stat_cycles = stats.counter(f"{prefix}.active_cycles")
        self._stat_squashes = stats.counter("core.consistency_squashes")
        self._stat_mispredicts = stats.counter("core.branch_mispredicts")
        self._stat_stores = stats.counter("core.stores_performed")
        self._stat_loads = stats.counter("core.loads_performed")
        self._stat_stalls = {
            reason: stats.counter(f"{prefix}.stall_{reason}")
            for reason in ("sq", "lq", "rob", "other")
        }
        self._agg_stalls = {
            reason: stats.counter(f"core.stall_{reason}")
            for reason in ("sq", "lq", "rob", "other")
        }
        self._stat_commits_total = stats.counter("core.committed")

    # ----------------------------------------------------------------- setup
    def load_trace(self, trace: List[Instruction]) -> None:
        self.trace = trace
        self._trace_len = len(trace)
        self.pc = 0
        self.done = not trace

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        if self.done:
            return
        self._stat_cycles.value += 1
        if self._commit_run(self) == 0:
            self._account_stall()
        # Guard each stage inline: an empty structure costs one attribute
        # load instead of a method call.
        if self.iq:
            self._issue()
        if self.lq._entries or self._pending_atomics:
            self._memory_stage()
        if self.sb._entries:
            self._sb_drain()
        if self.pc < self._trace_len:
            self._dispatch()
        elif not self.rob._entries and not self.sb._entries:
            self.done = True
            self.done_cycle = self.events.now

    def _account_stall(self) -> None:
        sq = self.sq
        if len(sq._entries) >= sq.capacity:
            reason = "sq"
        else:
            lq = self.lq
            if len(lq._entries) >= lq.capacity:
                reason = "lq"
            else:
                rob = self.rob
                reason = "rob" if len(rob._entries) >= rob.capacity else "other"
        self._stat_stalls[reason].value += 1
        self._agg_stalls[reason].value += 1
        bus = self.bus
        if bus.active:
            cause, line = self._stall_cause()
            bus.emit(Kind.COMMIT_STALL, self.core_id, reason=reason,
                     cause=cause, line=line)

    def _stall_cause(self) -> Tuple[str, int]:
        """Classify why the ROB head (or draining SB) cannot make
        progress this cycle.  Observability-only: called when the commit
        stage retired nothing and the bus has subscribers, so cost does
        not matter and the classification may probe cache/lockdown state
        freely.  The blame layer maps these hints onto the stall
        taxonomy (docs/observability.md)."""
        head = self.rob.head()
        if head is None:
            # ROB empty: the core is draining its store buffer (or idle).
            sb_head = self.sb.head()
            if sb_head is not None:
                return self._store_cause(sb_head.line)
            return "none", -1
        itype = head.itype
        if itype is InstrType.LOAD:
            entry = head.lq_entry
            line = int(entry.line) if entry.line is not None else -1
            if head.performed:
                # Performed M-spec load held back: OOO_WB needs LDT room.
                if self.ldt.full:
                    return "ldt_full", line
                return "exec", line
            if head.mem_inflight:
                return "load_inflight", line
            if entry.line is not None:
                if self.lockdowns.line_pending_inv(entry.line):
                    return "lockdown_pending", line
                if not self.cache.mshrs.can_allocate():
                    return "mshr_full", line
            return "exec", line
        if itype is InstrType.STORE:
            if not head.executed:
                return "exec", -1
            if self.sb.full:
                sb_head = self.sb.head()
                if sb_head is not None:
                    return self._store_cause(sb_head.line)
            return "exec", -1
        if itype is InstrType.ATOMIC:
            if head.resolved_addr is None:
                return "exec", -1
            line = line_of(head.resolved_addr, self._line_bytes)
            return self._store_cause(line)
        return "exec", -1

    def _store_cause(self, line: LineAddr) -> Tuple[str, int]:
        """Why is a store (or atomic) to *line* not globally performed?"""
        cache = self.cache
        if cache.write_blocked(line):
            return "write_blocked", int(line)
        if cache.has_write_mshr(line):
            return "store_inflight", int(line)
        if not cache.mshrs.can_allocate():
            return "mshr_full", int(line)
        return "exec", int(line)

    # -------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        # The stall window and clock cannot change mid-dispatch, so one
        # up-front check covers the whole group.
        if self.pc >= self._trace_len or self.events.now < self.fetch_stall_until:
            return
        width = self._issue_width
        iq_cap = self._iq_cap
        trace = self.trace
        trace_len = self._trace_len
        dispatched = 0
        while dispatched < width:
            if self.pc >= trace_len:
                break
            instr = trace[self.pc]
            if self.rob.full or len(self.iq) >= iq_cap:
                break
            itype = instr.itype
            if itype is InstrType.LOAD and self.lq.full:
                break
            if itype is InstrType.STORE and self.sq.full:
                break
            self._dispatch_one(instr)
            dispatched += 1

    def _dispatch_one(self, instr: Instruction) -> None:
        dyn = DynInstr(instr=instr, trace_idx=self.pc, seq=self._seq)
        self._seq += 1
        regs, addr_idx, value_idx = self._source_regs(instr)
        producers: List[Optional[DynInstr]] = []
        captured: List[Optional[int]] = []
        for reg in regs:
            producer = self.reg_producer.get(reg)
            producers.append(producer)
            captured.append(None if producer else self.reg_values.get(reg, 0))
        dyn.producers = tuple(producers)
        dyn.src_values = tuple(captured)
        dyn.addr_src_idx = addr_idx
        dyn.value_src_idx = value_idx
        if instr.dst is not None:
            self.reg_producer[instr.dst] = dyn
        self.rob.push(dyn)
        self.iq.append(dyn)
        if instr.itype is InstrType.LOAD:
            dyn.lq_entry = self.lq.allocate(dyn)
        elif instr.itype is InstrType.STORE:
            dyn.sq_entry = self.sq.allocate(dyn)
        elif instr.itype is InstrType.ATOMIC:
            self._pending_atomics.append(dyn)
        dyn.dispatched_cycle = self.events.now
        # Follow the static prediction; execute() redirects on mispredict.
        if instr.itype is InstrType.BRANCH and instr.predict_taken:
            self.pc = instr.target
        else:
            self.pc += 1

    @staticmethod
    def _source_regs(instr: Instruction):
        """Register list read by *instr*, plus addr/value positions."""
        if instr.itype in (InstrType.ALU, InstrType.BRANCH):
            if instr.op in ("addi", "xori", "beqz", "bnez"):
                return (instr.srcs[0],), None, None
            return tuple(instr.srcs), None, None  # mov/compute/gate
        regs: List[int] = []
        addr_idx = value_idx = None
        if instr.addr_reg is not None:
            addr_idx = len(regs)
            regs.append(instr.addr_reg)
        if instr.itype is InstrType.STORE and instr.value_reg is not None:
            value_idx = len(regs)
            regs.append(instr.value_reg)
        return tuple(regs), addr_idx, value_idx

    # ----------------------------------------------------------------- issue
    def _issue(self) -> None:
        iq = self.iq
        if not iq:
            return
        width = self._issue_width
        issued = 0
        idx = 0
        while idx < len(iq) and issued < width:
            dyn = iq[idx]
            # Inlined dyn.sources_ready(): this scan runs for every IQ
            # entry every cycle.
            for producer in dyn.producers:
                if producer is not None and not producer.executed:
                    idx += 1
                    break
            else:
                del iq[idx]
                self._start_execution(dyn)
                issued += 1

    def _start_execution(self, dyn: DynInstr) -> None:
        dyn.issued = True
        itype = dyn.itype
        if itype in (InstrType.ALU, InstrType.NOP):
            self.events.schedule(dyn.instr.latency,
                                 lambda: self._execute_alu(dyn))
        elif itype is InstrType.BRANCH:
            self.events.schedule(dyn.instr.latency,
                                 lambda: self._execute_branch(dyn))
        elif itype is InstrType.LOAD:
            self._resolve_address(dyn)
            dyn.lq_entry.line = line_of(dyn.resolved_addr,
                                        self._line_bytes)
        elif itype is InstrType.STORE:
            self.events.schedule(dyn.instr.latency,
                                 lambda: self._execute_store(dyn))
        elif itype is InstrType.ATOMIC:
            self._resolve_address(dyn)

    def _resolve_address(self, dyn: DynInstr) -> None:
        base = dyn.instr.addr or 0
        if dyn.addr_src_idx is not None:
            base += dyn.source_value(dyn.addr_src_idx)
        dyn.resolved_addr = base

    def _execute_alu(self, dyn: DynInstr) -> None:
        if dyn.squashed:
            return
        op, imm = dyn.instr.op, dyn.instr.imm
        if op == "mov":
            dyn.value = imm
        elif op == "addi":
            dyn.value = dyn.source_value(0) + imm
        elif op == "xori":
            dyn.value = dyn.source_value(0) ^ imm
        elif op == "compute" and dyn.producers:
            dyn.value = dyn.source_value(0)  # latency-adding passthrough
        else:  # "gate", or compute with no sources
            dyn.value = imm
        dyn.executed = True

    def _execute_branch(self, dyn: DynInstr) -> None:
        if dyn.squashed:
            return
        value = dyn.source_value(0)
        taken = (value == 0) if dyn.instr.op == "beqz" else (value != 0)
        dyn.executed = True
        dyn.value = int(taken)
        if taken == dyn.instr.predict_taken:
            return
        dyn.mispredicted = True
        self._stat_mispredicts.add()
        self._squash(self.rob.squash_younger_than(dyn))
        self.pc = dyn.instr.target if taken else dyn.trace_idx + 1
        self.fetch_stall_until = (self.events.now
                                  + self.params.core.mispredict_penalty)

    def _execute_store(self, dyn: DynInstr) -> None:
        if dyn.squashed:
            return
        self._resolve_address(dyn)
        entry = dyn.sq_entry
        if entry is None:
            raise SimulationError(f"store {dyn!r} missing from SQ")
        entry.addr = dyn.resolved_addr
        if dyn.value_src_idx is not None:
            entry.value = dyn.source_value(dyn.value_src_idx)
        else:
            entry.value = dyn.instr.imm
        entry.version = self.log.new_version(self.core_id, dyn.seq,
                                             entry.addr, entry.value)
        dyn.value = entry.value
        dyn.version_written = entry.version
        dyn.executed = True
        # Prefetch write permission as early as the address is known
        # (paper §3.1.2); failure to get an MSHR just skips the prefetch.
        line = line_of(entry.addr, self._line_bytes)
        if self.cache.line_state(line) not in (CacheState.M, CacheState.E):
            self.cache.request_write(line, _noop)

    # ---------------------------------------------------------- memory stage
    def _memory_stage(self) -> None:
        entries = self.lq._entries
        if entries:
            budget = self._issue_width
            for entry in entries[:]:
                # Inlined _try_load early-outs: most LQ entries are
                # already performed (or unissued) on any given cycle.
                if entry.performed or not entry.dyn.issued:
                    continue
                if budget == 0:
                    break
                if self._try_load(entry):
                    budget -= 1
        if self._pending_atomics:
            self._try_atomics()

    def _try_load(self, entry: LQEntry) -> bool:
        dyn = entry.dyn
        if entry.performed or not dyn.issued:
            return False
        line = entry.line
        lq = self.lq
        if dyn.mem_inflight:
            # Already accessing; if we are the SoS load piggybacked on a
            # write that the directory hinted is blocked, launch a fresh
            # uncacheable read on a (possibly reserved) MSHR (§3.5.2).
            if (self._sos_bypass
                    and lq.first_nonperformed() is entry
                    and not dyn.used_tearoff
                    and not dyn.bypass_launched
                    and self.cache.write_blocked(line)):
                request = self._make_request(entry)
                if self.cache.load(request, sos_bypass=True) != "retry":
                    dyn.bypass_launched = True
                    return True
            return False
        # One SoS scan covers every check below: nothing in between can
        # perform another load of this queue.
        is_sos = lq.first_nonperformed() is entry
        if dyn.retry_when_ordered and not is_sos:
            return False
        if self.sq.unresolved_older_than(dyn.seq):
            return False
        if self._older_unperformed_atomic(dyn.seq):
            return False
        # Store-to-load forwarding: youngest older exact-address match.
        fwd = self.sq.forward_for(dyn.resolved_addr, dyn.seq)
        if fwd is not None:
            if not fwd.value_ready:
                return False  # wait for the store's value
            self._emit_load_issue(entry)
            self._perform_load(entry, fwd.version, fwd.value, forwarded=True)
            return True
        sb_entry = self.sb.forward(dyn.resolved_addr, dyn.seq)
        if sb_entry is not None:
            self._emit_load_issue(entry)
            self._perform_load(entry, sb_entry.version, sb_entry.value,
                               forwarded=True)
            return True
        # §3.4 optimization: don't issue unordered loads for a line whose
        # lockdown has already been seen by an invalidation.
        if not is_sos and self.lockdowns.line_pending_inv(line):
            return False
        request = self._make_request(entry)
        sos_bypass = (self._sos_bypass and is_sos
                      and self.cache.write_blocked(line))
        result = self.cache.load(request, sos_bypass=sos_bypass)
        if result == "retry":
            return False
        dyn.mem_inflight = True
        dyn.retry_when_ordered = False
        self._emit_load_issue(entry)
        if sos_bypass:
            dyn.bypass_launched = True
        return True

    def _make_request(self, entry: LQEntry) -> LoadRequest:
        dyn = entry.dyn

        def is_ordered() -> bool:
            return (not dyn.squashed and not dyn.performed
                    and self.lq.first_nonperformed() is entry)

        def on_value(versioned, uncacheable: bool) -> None:
            if dyn.squashed or dyn.performed:
                return
            version, value = versioned
            dyn.used_tearoff = uncacheable
            self._perform_load(entry, version, value, uncacheable=uncacheable)

        def on_must_retry(wait_for_sos: bool) -> None:
            if dyn.squashed or dyn.performed:
                return
            dyn.mem_inflight = False
            dyn.bypass_launched = False
            dyn.retry_when_ordered = wait_for_sos

        return LoadRequest(byte_addr=dyn.resolved_addr, is_ordered=is_ordered,
                           on_value=on_value, on_must_retry=on_must_retry)

    def _emit_load_issue(self, entry: LQEntry) -> None:
        bus = self.bus
        if bus.active:
            dyn = entry.dyn
            bus.emit(Kind.LOAD_ISSUE, self.core_id, uid=dyn.uid, seq=dyn.seq,
                     line=int(entry.line), addr=dyn.resolved_addr)

    def _perform_load(self, entry: LQEntry, version: int, value: int, *,
                      forwarded: bool = False, uncacheable: bool = False) -> None:
        dyn = entry.dyn
        dyn.performed = True
        dyn.executed = True
        dyn.mem_inflight = False
        dyn.value = value
        dyn.version_read = version
        entry.performed = True
        entry.forwarded = forwarded
        dyn.forwarded_load = forwarded
        dyn.performed_cycle = self.events.now
        self._stat_loads.add()
        bus = self.bus
        if bus.active:
            bus.emit(Kind.LOAD_PERFORM, self.core_id, uid=dyn.uid,
                     line=int(entry.line), forwarded=forwarded,
                     uncacheable=uncacheable)
            if not self.lq.is_ordered(entry):
                # Performed past an older non-performed load: this is the
                # start of an M-speculative lockdown window (paper §3.2).
                bus.emit(Kind.LOCKDOWN_BEGIN, self.core_id, uid=dyn.uid,
                         line=int(entry.line))
        self.lockdowns.sweep_ordered()

    def _older_unperformed_atomic(self, seq: int) -> bool:
        if not self._pending_atomics:
            return False
        return any(a.seq < seq and not a.performed and not a.squashed
                   for a in self._pending_atomics)

    # ---------------------------------------------------------------- atomic
    def _try_atomics(self) -> None:
        head = self.rob.head()
        if head is None or head.itype is not InstrType.ATOMIC:
            return
        dyn = head
        if dyn.performed or not dyn.issued or not self.sb.empty:
            return
        line = line_of(dyn.resolved_addr, self._line_bytes)
        state = self.cache.line_state(line)
        if state is CacheState.E:
            self.cache.request_write(line, _noop)  # silent E->M
            state = self.cache.line_state(line)
        if state is CacheState.M:
            self._perform_atomic(dyn, line)
        elif not self.cache.has_write_mshr(line):
            self.cache.request_write(line, _noop)

    def _perform_atomic(self, dyn: DynInstr, line: LineAddr) -> None:
        addr = dyn.resolved_addr
        offset = addr % self._line_bytes
        line_entry = self.cache.line_entry(line)
        old_version, old_value = line_entry.data.read(offset)
        new_value = 1 if dyn.instr.op == "tas" else old_value + dyn.instr.imm
        version = self.log.new_version(self.core_id, dyn.seq, addr, new_value)
        self.cache.perform_atomic(addr, version, new_value)
        self.log.store_performed(version)
        self.log.record_atomic(self.core_id, dyn.seq, addr,
                               old_version, version, self.events.now)
        dyn.value = old_value
        dyn.version_read = old_version
        dyn.version_written = version
        dyn.performed = True
        dyn.executed = True
        self._pending_atomics.remove(dyn)
        self._stat_loads.add()
        self._stat_stores.add()

    # ---------------------------------------------------------------- stores
    def _sb_drain(self) -> None:
        head = self.sb.head()
        if head is None:
            return
        state = self.cache.line_state(head.line)
        if state is CacheState.E:
            self.cache.request_write(head.line, _noop)  # silent E->M
            state = self.cache.line_state(head.line)
        if state is CacheState.M:
            self.cache.perform_store(head.byte_addr, head.version, head.value)
            self.log.store_performed(head.version)
            self.log.record_store(self.core_id, head.seq, head.byte_addr,
                                  head.version, self.events.now)
            self.sb.pop_head()
            self._stat_stores.add()
        elif not self.cache.has_write_mshr(head.line):
            self.cache.request_write(head.line, _noop)

    # ---------------------------------------------------------------- commit
    def do_commit(self, dyn: DynInstr) -> None:
        """Retire *dyn* (called by the commit unit after eligibility)."""
        self.rob.commit(dyn)
        dyn.committed = True
        itype = dyn.itype
        if itype is InstrType.LOAD:
            entry = dyn.lq_entry
            if self.mode is CommitMode.OOO_WB and self.lq.is_mspeculative(entry):
                if not self.lockdowns.export_on_commit(entry):
                    raise SimulationError("commit of M-spec load with full LDT")
            self.lq.remove(entry)
            bus = self.bus
            if bus.active:
                bus.emit(Kind.LOAD_COMMIT, self.core_id, uid=dyn.uid,
                         line=int(entry.line) if entry.line is not None
                         else -1)
            # Loads are logged at commit so squashed (re-executed) loads
            # never pollute the consistency checker's event set.
            self.log.record_load(self.core_id, dyn.seq, dyn.resolved_addr,
                                 dyn.version_read, dyn.performed_cycle,
                                 forwarded=dyn.forwarded_load,
                                 uncacheable=dyn.used_tearoff)
        elif itype is InstrType.STORE:
            sq_entry = dyn.sq_entry
            line = line_of(sq_entry.addr, self._line_bytes)
            self.sb.push(SBEntry(byte_addr=sq_entry.addr, line=line,
                                 offset=sq_entry.addr % self._line_bytes,
                                 version=sq_entry.version,
                                 value=sq_entry.value, seq=dyn.seq))
            self.sq.remove(sq_entry)
        if dyn.instr.dst is not None:
            self.reg_values[dyn.instr.dst] = dyn.value or 0
            if self.reg_producer.get(dyn.instr.dst) is dyn:
                del self.reg_producer[dyn.instr.dst]
        self._stat_committed.add()
        self._stat_commits_total.add()

    # ---------------------------------------------------------------- squash
    def _squash(self, squashed: List[DynInstr]) -> None:
        if not squashed:
            return
        bus = self.bus
        for dyn in squashed:  # oldest first: heirs for guards survive
            dyn.squashed = True
            if dyn.itype is InstrType.LOAD:
                entry = dyn.lq_entry
                if entry is not None:
                    if bus.active:
                        bus.emit(Kind.LOAD_SQUASH, self.core_id, uid=dyn.uid,
                                 line=int(entry.line) if entry.line is not None
                                 else -1)
                    self.lockdowns.on_squash(entry)
                    self.lq.remove(entry)
                    dyn.lq_entry = None
            elif dyn.itype is InstrType.STORE:
                sq_entry = dyn.sq_entry
                if sq_entry is not None:
                    self.sq.remove(sq_entry)
                    dyn.sq_entry = None
            elif dyn.itype is InstrType.ATOMIC:
                if dyn in self._pending_atomics:
                    self._pending_atomics.remove(dyn)
        self.iq = [d for d in self.iq if not d.squashed]
        self._rebuild_rename()
        self.lockdowns.sweep_ordered()

    def _rebuild_rename(self) -> None:
        self.reg_producer = {}
        for dyn in self.rob:
            if dyn.instr.dst is not None and not dyn.committed:
                self.reg_producer[dyn.instr.dst] = dyn

    # ------------------------------------------------------------ coherence
    def _on_invalidation(self, line: LineAddr) -> bool:
        """Cache hook: an invalidation must be answered for *line*."""
        if self.mode is CommitMode.OOO_WB:
            return self.lockdowns.on_invalidation(line)
        if self.mode is CommitMode.OOO_UNSAFE:
            return False
        victims = self.lq.mspeculative_on_line(line)
        if victims:
            self._consistency_squash(victims[0])
        return False

    def _on_nonsilent_eviction(self, line: LineAddr) -> None:
        """A non-silent shared eviction loses future invalidations for
        *line*: squash-mode cores must squash M-speculative loads now
        (paper §3.8)."""
        if self.mode in (CommitMode.OOO_WB, CommitMode.OOO_UNSAFE):
            return
        victims = self.lq.mspeculative_on_line(line)
        if victims:
            self._consistency_squash(victims[0])

    def _consistency_squash(self, entry: LQEntry) -> None:
        dyn = entry.dyn
        self._stat_squashes.add()
        self._squash(self.rob.squash_from(dyn))
        self.pc = dyn.trace_idx
        self.fetch_stall_until = (self.events.now
                                  + self.params.core.mispredict_penalty)

    def _lockdown_query(self, line: LineAddr) -> bool:
        if self.mode is not CommitMode.OOO_WB:
            return False
        return self.lockdowns.has_lockdown(line)

    def snapshot(self) -> str:
        """One-line diagnostic used in deadlock reports."""
        head = self.rob.head()
        return (f"core{self.core_id}: pc={self.pc}/{len(self.trace)} "
                f"rob={len(self.rob)} head={head!r} lq={len(self.lq)} "
                f"sq={len(self.sq)} sb={len(self.sb)} iq={len(self.iq)} "
                f"ldt={len(self.ldt)}")

    def gauges(self) -> Dict[str, int]:
        """Instantaneous occupancy gauges for the metrics sampler."""
        return {
            "rob": len(self.rob),
            "lq": len(self.lq),
            "sq": len(self.sq),
            "sb": len(self.sb),
            "ldt": len(self.ldt),
            "lockdowns": self.lq.active_lockdowns() + len(self.ldt),
        }


def _noop() -> None:
    """Placeholder grant callback for polled write permission."""
