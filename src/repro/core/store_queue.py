"""Store queue (pre-commit stores) with store-to-load forwarding.

Stores sit here from dispatch until commit, at which point they move to
the FIFO store buffer.  Loads search older stores for an exact-address
match (TSO forwarding, paper footnote 5); an older store with an
*unresolved* address conservatively blocks younger loads from issuing
(this model does not speculate on memory dependences — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..common.errors import SimulationError
from .instruction import DynInstr


@dataclass
class SQEntry:
    """One in-flight (uncommitted) store."""

    dyn: DynInstr
    addr: Optional[int] = None  # byte address, once resolved
    value: Optional[int] = None
    version: Optional[int] = None  # assigned when the value is ready

    @property
    def resolved(self) -> bool:
        return self.addr is not None

    @property
    def value_ready(self) -> bool:
        return self.version is not None


class StoreQueue:
    """Program-ordered queue of uncommitted stores."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: List[SQEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SQEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def allocate(self, dyn: DynInstr) -> SQEntry:
        if self.full:
            raise SimulationError("SQ overflow")
        entry = SQEntry(dyn=dyn)
        self._entries.append(entry)
        return entry

    def entry_for(self, dyn: DynInstr) -> Optional[SQEntry]:
        for entry in self._entries:
            if entry.dyn is dyn:
                return entry
        return None

    def remove(self, entry: SQEntry) -> None:
        self._entries.remove(entry)

    def oldest(self) -> Optional[SQEntry]:
        return self._entries[0] if self._entries else None

    def unresolved_older_than(self, load_seq: int) -> bool:
        """Any older store whose address is still unknown?"""
        return any(
            entry.dyn.seq < load_seq and not entry.resolved
            for entry in self._entries
        )

    def forward_for(self, byte_addr: int, load_seq: int) -> Optional[SQEntry]:
        """Youngest older store matching *byte_addr* exactly.

        Returns the entry even if its value is not ready yet — the load
        then waits for the value rather than reading the cache.
        """
        best: Optional[SQEntry] = None
        for entry in self._entries:
            if entry.dyn.seq >= load_seq:
                continue
            if entry.resolved and entry.addr == byte_addr:
                best = entry
        return best
