"""The multicore system: cores, private caches, mesh, directory banks.

Tiles are numbered 0..N-1; each hosts a core + private cache and one
LLC/directory bank.  A line's home bank is ``line % N`` (address
interleaving).  The run loop advances a global clock: deliver due events
(network messages, latency callbacks), tick every core, repeat.  A
watchdog raises :class:`DeadlockError` if no instruction commits
system-wide for ``watchdog_cycles`` — the deadlock-scenario tests rely
on this to prove the safe-passage rules are load-bearing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..coherence import get_backend
from ..common.errors import DeadlockError, SimulationError
from ..common.event_queue import EventQueue
from ..common.params import SystemParams
from ..common.stats import StatsRegistry
from ..consistency.execution import ExecutionLog
from ..core.inorder_core import InOrderCore
from ..core.instruction import Instruction
from ..core.ooo_core import OoOCore
from ..network.mesh import MeshNetwork
from ..obs.coverage import CoverageObserver
from ..obs.events import EventBus
from ..obs.metrics import DEFAULT_PERIOD, MetricsSampler
from ..obs.spans import SpanTracker
from .results import SimResult


class MulticoreSystem:
    """Builds and runs one simulated multicore."""

    def __init__(self, params: SystemParams) -> None:
        params.validate()
        self.backend = get_backend(params.backend)
        self.backend.validate_params(params)
        self.params = params
        self.events = EventQueue()
        self.stats = StatsRegistry()
        self.log = ExecutionLog(params.record_execution)
        #: System-wide observability bus; inert (near-zero cost) until
        #: something subscribes — e.g. :meth:`observe` or a ProtocolTracer.
        self.bus = EventBus(self.events)
        self.tracker: Optional[SpanTracker] = None
        self.sampler: Optional[MetricsSampler] = None
        self.coverage: Optional[CoverageObserver] = None
        #: Per-cycle callback (e.g. an invariant probe from
        #: ``repro.coherence.invariants.attach_probe``); inert when None.
        self.probe = None
        self.network = MeshNetwork(params.num_cores, params.network,
                                   self.events, self.stats, bus=self.bus)
        self.directories: List = [
            self.backend.build_directory(
                tile, params.cache, self.network, self.events, self.stats,
                writers_block=params.writers_block, bus=self.bus)
            for tile in range(params.num_cores)
        ]
        self.caches: List = [
            self.backend.build_cache(
                tile, params.cache, self.network, self.events, self.stats,
                writers_block=params.writers_block, bus=self.bus)
            for tile in range(params.num_cores)
        ]
        self.cores: List = [self._build_core(tile)
                            for tile in range(params.num_cores)]

    def _build_core(self, tile: int):
        if self.params.core_type == "ooo":
            return OoOCore(tile, self.params, self.caches[tile], self.events,
                           self.stats, self.log, bus=self.bus)
        return InOrderCore(tile, self.params, self.caches[tile], self.events,
                           self.stats, self.log,
                           ecl=self.params.core_type == "inorder-ecl",
                           bus=self.bus)

    def observe(self) -> SpanTracker:
        """Attach (once) and return a span tracker for this system's run.

        Call before :meth:`run`; the resulting spans and per-category
        summaries land on the returned :class:`SimResult`.
        """
        if self.tracker is None:
            self.tracker = SpanTracker(self.bus, self.stats)
        return self.tracker

    def sample_metrics(self, period: int = DEFAULT_PERIOD) -> MetricsSampler:
        """Attach (once) and return a telemetry sampler for this run.

        Call before :meth:`run`; the ``repro-metrics/1`` payload lands
        on the result's ``telemetry`` field.
        """
        if self.sampler is None:
            self.sampler = MetricsSampler(self, period)
        return self.sampler

    def observe_coverage(self, *, source: str = "run") -> CoverageObserver:
        """Attach (once) and return a transition-coverage observer.

        Call before :meth:`run`; transition tuples land on the observer
        (``to_map()`` for the mergeable ``repro-coverage/1`` form).
        """
        if self.coverage is None:
            observer = CoverageObserver(self.params.backend, source=source)
            observer.attach(*self.caches, *self.directories)
            self.coverage = observer
        return self.coverage

    def load_program(self, traces: Sequence[List[Instruction]]) -> None:
        """Assign per-core traces (shorter list leaves extra cores idle)."""
        if len(traces) > len(self.cores):
            raise SimulationError(
                f"{len(traces)} traces for {len(self.cores)} cores"
            )
        for core, trace in zip(self.cores, traces):
            core.load_trace(list(trace))
        for core in self.cores[len(traces):]:
            core.load_trace([])

    # ------------------------------------------------------------------- run
    def run(self) -> SimResult:
        """Simulate until all cores finish (or watchdog/cycle-cap fires)."""
        commit_counter = self.stats.counter("core.committed")
        last_commits = commit_counter.value
        last_progress_cycle = self.events.now
        watchdog = self.params.watchdog_cycles
        max_cycles = self.params.max_cycles
        events = self.events
        # Cores leave this list permanently once done (idle cores with an
        # empty trace never enter it), so the per-cycle loop only visits
        # cores that can still make progress.
        running = [core for core in self.cores if not core.done]
        sampler = self.sampler
        probe = self.probe
        while True:
            events.run_due()
            if sampler is not None and events.now >= sampler.next_cycle:
                sampler.take(events.now)
            if probe is not None:
                probe(events.now)
            if not running:
                if events.empty:
                    break
                events.advance_to_next_event()
                continue
            finished = False
            for core in running:
                core.tick()
                if core.done:
                    finished = True
            if finished:
                running = [core for core in running if not core.done]
            if commit_counter.value != last_commits:
                last_commits = commit_counter.value
                last_progress_cycle = events.now
            elif events.now - last_progress_cycle > watchdog:
                raise DeadlockError(events.now, self._snapshot())
            if max_cycles and events.now >= max_cycles:
                raise SimulationError(f"cycle cap {max_cycles} exceeded")
            events.advance()
        return self._result()

    def _snapshot(self) -> str:
        lines = [core.snapshot() for core in self.cores if not core.done]
        lines += [d.snapshot() for d in self.directories]
        return "\n".join(lines)

    def _result(self) -> SimResult:
        done_cycles = [core.done_cycle or 0 for core in self.cores]
        spans: List = []
        span_summaries = {}
        if self.tracker is not None:
            self.tracker.finish(self.events.now)
            spans = self.tracker.spans
            span_summaries = self.tracker.summaries()
        telemetry = None
        if self.sampler is not None:
            self.sampler.finish(self.events.now)
            telemetry = self.sampler.payload()
        return SimResult(
            params=self.params,
            cycles=max(done_cycles) if done_cycles else self.events.now,
            stats=self.stats.as_dict(),
            log=self.log,
            per_core_cycles=done_cycles,
            histograms=self.stats.histogram_summaries(),
            spans=spans,
            span_summaries=span_summaries,
            telemetry=telemetry,
        )
