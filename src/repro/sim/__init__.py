"""System assembly and run loop."""

from .results import SimResult
from .runner import compare_commit_modes, run_traces, run_workload
from .system import MulticoreSystem
from .tracing import ProtocolTracer, TraceRecord

__all__ = [
    "SimResult",
    "compare_commit_modes",
    "run_traces",
    "run_workload",
    "MulticoreSystem",
    "ProtocolTracer",
    "TraceRecord",
]
