"""Simulation results container and derived metrics."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.params import SystemParams, system_params_from_dict
from ..consistency.execution import ExecutionLog


@dataclass
class SimResult:
    """Everything a benchmark needs from one simulation run."""

    params: SystemParams
    cycles: int
    stats: Dict[str, int]
    log: ExecutionLog
    per_core_cycles: List[int] = field(default_factory=list)
    #: {histogram name: {total, mean, min, max, p50, p99}}
    #: (e.g. WritersBlock durations).
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Observability spans (``repro.obs.spans.Span``), populated when the
    #: run was observed with a SpanTracker; empty otherwise.
    spans: List = field(default_factory=list)
    #: {span category: {count, mean, min, max, p50, p99}} duration summary.
    span_summaries: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Host wall-clock profile ({wall_seconds, components, calls}) when the
    #: run was made through ``repro.obs.profile.profiled_run``.
    profile: Optional[Dict] = None
    #: Causal stall attribution (schema ``repro-blame/1``), populated by
    #: ``repro.sim.runner.run_blamed`` / observed engine cells.
    blame: Optional[Dict] = None
    #: Sampled time-series telemetry (schema ``repro-metrics/1``),
    #: populated when the run was sampled via
    #: ``MulticoreSystem.sample_metrics`` / ``repro.sim.runner.run_sampled``.
    telemetry: Optional[Dict] = None

    # ----------------------------------------------------------- raw counters
    def counter(self, name: str, default: int = 0) -> int:
        return self.stats.get(name, default)

    @property
    def committed(self) -> int:
        return self.counter("core.committed")

    @property
    def loads_performed(self) -> int:
        return self.counter("core.loads_performed")

    @property
    def stores_performed(self) -> int:
        return self.counter("core.stores_performed")

    @property
    def consistency_squashes(self) -> int:
        return self.counter("core.consistency_squashes")

    @property
    def network_flit_hops(self) -> int:
        """Traffic metric: flits x links traversed."""
        return self.counter("network.flit_hops")

    @property
    def writes_blocked(self) -> int:
        """Write requests delayed by WritersBlock (Nacked or queued)."""
        return (self.counter("dir.writersblock_entered")
                + self.counter("dir.writes_blocked"))

    @property
    def uncacheable_reads(self) -> int:
        return self.counter("dir.uncacheable_reads")

    @property
    def writersblock_mean_duration(self) -> float:
        """Mean cycles a write spent held in WritersBlock (footnote 2)."""
        return self.histograms.get("dir.writersblock_duration",
                                   {}).get("mean", 0.0)

    @property
    def writersblock_max_duration(self) -> float:
        return self.histograms.get("dir.writersblock_duration",
                                   {}).get("max", 0.0)

    # --------------------------------------------------------- paper metrics
    @property
    def writes_blocked_per_kilostore(self) -> float:
        """Figure 8 (top): blocked write requests per 1000 stores."""
        stores = max(self.stores_performed, 1)
        return 1000.0 * self.writes_blocked / stores

    @property
    def uncacheable_per_kiloload(self) -> float:
        """Figure 8 (bottom): uncacheable data responses per 1000 loads."""
        loads = max(self.loads_performed, 1)
        return 1000.0 * self.uncacheable_reads / loads

    def stall_fraction(self, reason: str) -> float:
        """Figure 10 (top): fraction of active cycles stalled for *reason*."""
        total = sum(
            self.counter(f"core{i}.active_cycles")
            for i in range(self.params.num_cores)
        )
        return self.counter(f"core.stall_{reason}") / max(total, 1)

    def speedup_over(self, baseline: "SimResult") -> float:
        """Execution-time improvement vs *baseline* (>1 means faster)."""
        return baseline.cycles / max(self.cycles, 1)

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> Dict:
        """JSON-serializable snapshot (stats + headline metrics).

        The execution log and raw span objects are not included (they can
        be huge); persist the numbers a benchmark or paper table needs.
        Span durations survive as ``span_summaries``; the full spans go
        to a Chrome trace via ``repro.obs.export`` instead.
        """
        params = dataclasses.asdict(self.params)
        params["commit_mode"] = self.params.commit_mode.value
        if self.params.backend == "baseline":
            # Same contract as the blame/telemetry keys below: only
            # non-default backends serialize their selection (and the
            # tardis-only lease knob), so pre-backend digests (goldens)
            # stay unchanged.  ``system_params_from_dict`` restores the
            # defaults on load.
            del params["backend"]
            del params["cache"]["tardis_lease"]
        payload = {
            "params": params,
            "cycles": self.cycles,
            "per_core_cycles": list(self.per_core_cycles),
            "stats": dict(self.stats),
            "metrics": {
                "committed": self.committed,
                "loads_performed": self.loads_performed,
                "stores_performed": self.stores_performed,
                "consistency_squashes": self.consistency_squashes,
                "network_flit_hops": self.network_flit_hops,
                "writes_blocked": self.writes_blocked,
                "uncacheable_reads": self.uncacheable_reads,
                "writes_blocked_per_kilostore":
                    self.writes_blocked_per_kilostore,
                "uncacheable_per_kiloload": self.uncacheable_per_kiloload,
                "writersblock_mean_duration":
                    self.writersblock_mean_duration,
                "writersblock_max_duration": self.writersblock_max_duration,
            },
            "histograms": dict(self.histograms),
            "span_summaries": dict(self.span_summaries),
            "profile": self.profile,
        }
        if self.blame is not None:
            # Only observed runs carry a blame payload; omitting the key
            # otherwise keeps unobserved digests (goldens) unchanged.
            payload["blame"] = self.blame
        if self.telemetry is not None:
            # Same contract as blame: only sampled runs carry telemetry,
            # so unsampled digests stay unchanged.
            payload["telemetry"] = self.telemetry
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimResult":
        """Rebuild a result from :meth:`to_json` output.

        The execution log and raw spans are not serialized, so the
        reconstructed result carries an empty log and no span objects —
        everything in :meth:`to_dict` round-trips exactly.
        """
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output (the experiment
        engine's normalization/caching unit)."""
        return cls(
            params=system_params_from_dict(payload["params"]),
            cycles=payload["cycles"],
            stats=dict(payload["stats"]),
            log=ExecutionLog(False),
            per_core_cycles=list(payload["per_core_cycles"]),
            histograms=dict(payload.get("histograms", {})),
            span_summaries=dict(payload.get("span_summaries", {})),
            profile=payload.get("profile"),
            blame=payload.get("blame"),
            telemetry=payload.get("telemetry"),
        )

    def save_json(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def summary(self) -> str:
        return (
            f"cycles={self.cycles} committed={self.committed} "
            f"loads={self.loads_performed} stores={self.stores_performed} "
            f"wb_blocked={self.writes_blocked} "
            f"uncacheable={self.uncacheable_reads} "
            f"squashes={self.consistency_squashes} "
            f"traffic={self.network_flit_hops}"
        )
