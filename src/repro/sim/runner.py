"""High-level entry points: run a workload under a configuration."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.params import SystemParams, table6_system
from ..common.types import CommitMode
from ..consistency.tso_checker import check_tso
from ..core.instruction import Instruction
from ..obs.events import Event, EventRecorder
from .results import SimResult
from .system import MulticoreSystem


def run_traces(traces: Sequence[List[Instruction]],
               params: Optional[SystemParams] = None, *,
               check: bool = True, observe: bool = False) -> SimResult:
    """Run raw per-core traces; optionally verify TSO afterwards.

    With ``observe=True`` a span tracker rides along and the result
    carries ``spans`` / ``span_summaries``.
    """
    if params is None:
        params = table6_system("SLM")
    system = MulticoreSystem(params)
    if observe:
        system.observe()
    system.load_program(traces)
    result = system.run()
    if check and params.record_execution:
        check_tso(result.log)
    return result


def run_observed(traces: Sequence[List[Instruction]],
                 params: Optional[SystemParams] = None, *,
                 check: bool = True,
                 kinds: Optional[Iterable[str]] = None
                 ) -> Tuple[SimResult, List[Event]]:
    """Run with span tracking *and* raw event recording.

    Returns ``(result, events)`` — the result has spans attached (for
    the Chrome-trace exporter), the raw events suit the JSONL dump.
    *kinds* narrows what the recorder keeps (default: everything).
    """
    if params is None:
        params = table6_system("SLM")
    system = MulticoreSystem(params)
    system.observe()
    recorder = EventRecorder(system.bus, kinds=kinds)
    system.load_program(traces)
    result = system.run()
    if check and params.record_execution:
        check_tso(result.log)
    return result, recorder.events


def run_blamed(traces: Sequence[List[Instruction]],
               params: Optional[SystemParams] = None, *,
               check: bool = True):
    """Run with the causal observer; attach stall attribution.

    Returns ``(result, graph)``; the result carries the blame payload
    (``result.blame``, schema ``repro-blame/1``) through serialization,
    so engine-routed cells keep it across pool and cache replays.
    """
    from ..obs.blame import build_blame
    from ..obs.causal import CausalObserver

    if params is None:
        params = table6_system("SLM")
    system = MulticoreSystem(params)
    system.observe()
    observer = CausalObserver(system.bus)
    system.load_program(traces)
    result = system.run()
    if check and params.record_execution:
        check_tso(result.log)
    result.blame = build_blame(observer.graph, cycles=result.cycles)
    return result, observer.graph


def run_sampled(traces: Sequence[List[Instruction]],
                params: Optional[SystemParams] = None, *,
                period: Optional[int] = None,
                check: bool = True) -> SimResult:
    """Run with the telemetry sampler attached.

    The result carries the ``repro-metrics/1`` payload on
    ``result.telemetry`` (serializable, so engine-routed cells keep it
    across pool and cache replays).  *period* defaults to
    :data:`repro.obs.metrics.DEFAULT_PERIOD`.
    """
    from ..obs.metrics import DEFAULT_PERIOD

    if params is None:
        params = table6_system("SLM")
    system = MulticoreSystem(params)
    system.sample_metrics(DEFAULT_PERIOD if period is None else period)
    system.load_program(traces)
    result = system.run()
    if check and params.record_execution:
        check_tso(result.log)
    return result


def run_workload(workload, params: Optional[SystemParams] = None, *,
                 check: bool = True, observe: bool = False) -> SimResult:
    """Run a :class:`repro.workloads.trace.Workload`."""
    return run_traces(workload.traces, params, check=check, observe=observe)


def compare_commit_modes(workload, base_params: SystemParams,
                         modes: Iterable[CommitMode], *,
                         check: bool = True,
                         engine=None) -> Dict[CommitMode, SimResult]:
    """Run *workload* once per commit mode (paper Figure 10 setup).

    Routed through the experiment engine (serial unless an
    :class:`~repro.exp.engine.ExperimentEngine` with workers and/or a
    cache is passed), shipping the workload's explicit traces so custom
    programs work too.  Mode results are engine-normalized: byte-stable
    across serial, pooled, and cache-replay execution.
    """
    from ..exp.cells import Cell
    from ..exp.engine import ExperimentEngine

    modes = list(modes)
    cells = [
        Cell.from_traces(f"compare/{workload.name}/{mode.value}",
                         workload.name, workload.traces,
                         base_params.with_commit(mode), check=check)
        for mode in modes
    ]
    engine = engine if engine is not None else ExperimentEngine()
    results = engine.run(cells).results()
    return {mode: results[f"compare/{workload.name}/{mode.value}"]
            for mode in modes}
