"""Protocol tracing: record / print coherence messages as they flow.

Attach a :class:`ProtocolTracer` to a built system to capture every
network message (optionally filtered by type or line), as structured
records and/or live-printed lines.  Used by the examples and by
protocol tests that assert on transaction *sequences* rather than just
end states.

The tracer is a subscriber on the system's observability bus (the mesh
emits one ``net.send`` event per message), so any number of tracers can
stack on one system and detach in any order — nothing is monkeypatched.

Example::

    system = MulticoreSystem(params)
    with ProtocolTracer(system, types={"Inv", "Nack", "DeferredAck"}) as tracer:
        system.load_program(traces)
        system.run()
    assert tracer.sequence("Inv", "Nack", "DeferredAck")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set

from ..common.types import LineAddr
from ..obs.events import Event, Kind


@dataclass(frozen=True)
class TraceRecord:
    """One captured message."""

    cycle: int
    msg_type: str
    src: int
    dst: int
    dst_port: str
    line: int
    arrival: int

    def __str__(self) -> str:
        return (f"cycle {self.cycle:6d}  {self.msg_type:12s} "
                f"tile{self.src} -> tile{self.dst}:{self.dst_port:5s} "
                f"L{self.line:#x} (arrives {self.arrival})")


class ProtocolTracer:
    """Subscribes to the system bus's ``net.send`` events."""

    def __init__(self, system, *, types: Optional[Iterable[str]] = None,
                 lines: Optional[Iterable[LineAddr]] = None,
                 live: bool = False,
                 sink: Callable[[str], None] = print) -> None:
        self.records: List[TraceRecord] = []
        self._types: Optional[Set[str]] = set(types) if types else None
        self._lines: Optional[Set[int]] = (
            {int(line) for line in lines} if lines else None)
        self._live = live
        self._sink = sink
        self._sub = system.network.bus.subscribe(self._on_event,
                                                 kinds=(Kind.NET_SEND,))

    def detach(self) -> None:
        """Stop capturing; idempotent and safe in any stacking order."""
        if self._sub is not None:
            self._sub.close()
            self._sub = None

    def __enter__(self) -> "ProtocolTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    def _on_event(self, event: Event) -> None:
        args = event.args
        if self._types is not None and args["msg_type"] not in self._types:
            return
        if self._lines is not None and args["line"] not in self._lines:
            return
        record = TraceRecord(
            cycle=event.cycle, msg_type=args["msg_type"],
            src=event.tile, dst=args["dst"], dst_port=args["dst_port"],
            line=args["line"], arrival=args["arrival"])
        self.records.append(record)
        if self._live:
            self._sink(str(record))

    # ---------------------------------------------------------------- query
    def count(self, msg_type: str) -> int:
        return sum(1 for r in self.records if r.msg_type == msg_type)

    def of_type(self, msg_type: str) -> List[TraceRecord]:
        return [r for r in self.records if r.msg_type == msg_type]

    def sequence(self, *msg_types: str) -> bool:
        """True if messages of *msg_types* appear in that relative order
        (not necessarily adjacent)."""
        wanted = list(msg_types)
        idx = 0
        for record in self.records:
            if idx < len(wanted) and record.msg_type == wanted[idx]:
                idx += 1
        return idx == len(wanted)

    def render(self) -> str:
        return "\n".join(str(r) for r in self.records)
