"""Protocol tracing: record / print coherence messages as they flow.

Attach a :class:`ProtocolTracer` to a built system to capture every
network message (optionally filtered by type or line), as structured
records and/or live-printed lines.  Used by the examples and by
protocol tests that assert on transaction *sequences* rather than just
end states.

Example::

    system = MulticoreSystem(params)
    tracer = ProtocolTracer(system, types={"Inv", "Nack", "DeferredAck"})
    system.load_program(traces)
    system.run()
    assert tracer.sequence("Inv", "Nack", "DeferredAck")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set

from ..common.types import LineAddr
from ..network.message import Message


@dataclass(frozen=True)
class TraceRecord:
    """One captured message."""

    cycle: int
    msg_type: str
    src: int
    dst: int
    dst_port: str
    line: int
    arrival: int

    def __str__(self) -> str:
        return (f"cycle {self.cycle:6d}  {self.msg_type:12s} "
                f"tile{self.src} -> tile{self.dst}:{self.dst_port:5s} "
                f"L{self.line:#x} (arrives {self.arrival})")


class ProtocolTracer:
    """Wraps a system's network ``send`` to capture messages."""

    def __init__(self, system, *, types: Optional[Iterable[str]] = None,
                 lines: Optional[Iterable[LineAddr]] = None,
                 live: bool = False,
                 sink: Callable[[str], None] = print) -> None:
        self.records: List[TraceRecord] = []
        self._types: Optional[Set[str]] = set(types) if types else None
        self._lines: Optional[Set[int]] = (
            {int(line) for line in lines} if lines else None)
        self._live = live
        self._sink = sink
        self._system = system
        self._original_send = system.network.send
        system.network.send = self._traced_send

    def detach(self) -> None:
        """Restore the original network send."""
        self._system.network.send = self._original_send

    def _traced_send(self, msg: Message) -> int:
        arrival = self._original_send(msg)
        if self._types is not None and msg.msg_type.value not in self._types:
            return arrival
        if self._lines is not None and int(msg.line) not in self._lines:
            return arrival
        record = TraceRecord(
            cycle=self._system.events.now, msg_type=msg.msg_type.value,
            src=msg.src, dst=msg.dst, dst_port=msg.dst_port,
            line=int(msg.line), arrival=arrival)
        self.records.append(record)
        if self._live:
            self._sink(str(record))
        return arrival

    # ---------------------------------------------------------------- query
    def count(self, msg_type: str) -> int:
        return sum(1 for r in self.records if r.msg_type == msg_type)

    def of_type(self, msg_type: str) -> List[TraceRecord]:
        return [r for r in self.records if r.msg_type == msg_type]

    def sequence(self, *msg_types: str) -> bool:
        """True if messages of *msg_types* appear in that relative order
        (not necessarily adjacent)."""
        wanted = list(msg_types)
        idx = 0
        for record in self.records:
            if idx < len(wanted) and record.msg_type == wanted[idx]:
                idx += 1
        return idx == len(wanted)

    def render(self) -> str:
        return "\n".join(str(r) for r in self.records)
