"""Timeout-guarded liveness: WritersBlock shapes must terminate.

The simulator has its own cycle watchdog (``DeadlockError``), but a
scheduling bug could also hang the *host* — an event loop that stops
making simulated progress, or a retry storm that never advances the
clock.  These tests wrap the paper's three risky shapes in a wall-clock
``SIGALRM`` guard so either failure mode surfaces as a crisp test
failure in bounded time:

1. an SoS load forced into WritersBlock (the Figure 5.B shape) still
   completes via the §3.5.2 uncacheable bypass;
2. a directory eviction landing on a WritersBlock entry (tiny LLC)
   still completes via the §3.5.1 eviction-buffer passage;
3. the same contended sharing under near-zero MSHR capacity (2 entries,
   1 reserved for SoS) completes — back-pressure may stall, never wedge.
"""

import dataclasses
import signal
from contextlib import contextmanager

import pytest

from repro.coherence.invariants import check_quiescent
from repro.common.params import CacheParams, table6_system
from repro.common.types import CommitMode
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder

from .test_deadlock_scenarios import mshr_deadlock_program


@contextmanager
def time_limit(seconds):
    """Fail (don't hang) if the body exceeds *seconds* of wall clock.

    SIGALRM-based because pytest-timeout isn't a dependency; this only
    needs to work on the POSIX CI runners.
    """

    def on_alarm(signum, frame):
        raise TimeoutError(f"liveness guard tripped after {seconds}s")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def run_system(traces, params):
    system = MulticoreSystem(params)
    system.load_program(traces)
    result = system.run()
    # Liveness means *fully* wound down: coherence invariants hold, the
    # event queue is empty, and every pooled message was released.
    check_quiescent(system)
    return system, result


def contended_sharing_program(num_writers=3):
    """One reader chasing two lines that *num_writers* cores keep
    storing to — every read is likely to meet a locked-down line."""
    space = AddressSpace()
    x = space.new_var("x")
    y = space.new_var("y")
    reader = TraceBuilder()
    for __ in range(6):
        reader.load(reader.reg(), x)
        reader.load(reader.reg(), y)
    traces = [reader.build()]
    for w in range(num_writers):
        t = TraceBuilder()
        t.compute(latency=10 + 17 * w)
        for i in range(4):
            t.store(x, 10 * (w + 1) + i)
            t.store(y, 100 * (w + 1) + i)
        traces.append(t.build())
    return traces


def test_sos_load_completes_under_forced_writersblock():
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    with time_limit(60):
        __, result = run_system(mshr_deadlock_program(), params)
    # The shape actually exercised the risky path — and resolved it.
    assert result.counter("dir.writersblock_entered") >= 1
    assert result.counter("dir.uncacheable_reads") >= 1


def test_eviction_of_locked_line_completes():
    """Tiny LLC: a capacity eviction recalls a line a core holds in
    lockdown.  The recall is Nacked, the entry parks in the eviction
    buffer (§3.5.1), a writer queues behind it — and everything still
    drains once the lockdown lifts."""
    params = table6_system("SLM", num_cores=4, commit_mode=CommitMode.OOO_WB)
    params = dataclasses.replace(
        params, cache=dataclasses.replace(
            params.cache, llc_sets_per_bank=1, llc_ways=2,
            dir_eviction_buffer=2))
    space = AddressSpace()
    x = space.new_var("x")  # line 0: home bank 0
    z = space.new_var("z")
    # Core 0: SoS load of z (address resolves late) with a younger load
    # of x that hits — committing it locks line x down for ~400 cycles.
    t0 = TraceBuilder()
    warm = t0.reg()
    t0.load(warm, x)
    gate = t0.reg()
    t0.gate(gate, srcs=(warm,), latency=400)
    t0.load(t0.reg(), z, addr_reg=gate)
    t0.load(t0.reg(), x)
    # Core 1: streams two more bank-0 lines into the 1-set x 2-way bank
    # while the lockdown holds, evicting x's directory entry.  The
    # address gate keeps the streams from racing x's initial fetch.
    t1 = TraceBuilder()
    wait1 = t1.reg()
    t1.gate(wait1, srcs=(), latency=260)
    for i in (4, 8):  # line % 4 == 0 -> home bank 0
        t1.load(t1.reg(), i * 64, addr_reg=wait1)
    # Core 2: writes x mid-eviction; must wait, then complete.
    t2 = TraceBuilder()
    slow_val = t2.reg()
    t2.gate(slow_val, srcs=(), latency=320, imm=9)
    t2.store(x, value_reg=slow_val)
    with time_limit(60):
        __, result = run_system([t0.build(), t1.build(), t2.build()],
                                params)
    assert result.counter("dir.llc_evictions") >= 1
    assert result.counter("cache.nacks_sent") >= 1
    assert result.counter("core.consistency_squashes") == 0


@pytest.mark.parametrize("mode", [CommitMode.OOO_WB, CommitMode.OOO])
def test_full_mshr_pressure_completes(mode):
    """Two MSHRs (one reserved for SoS) under the contended-sharing
    storm: misses queue, the system throttles, nothing wedges."""
    params = table6_system("SLM", num_cores=4, commit_mode=mode)
    params = dataclasses.replace(
        params, cache=dataclasses.replace(
            params.cache, mshr_entries=2, mshr_reserved_for_sos=1))
    with time_limit(60):
        __, result = run_system(contended_sharing_program(), params)
    assert result.cycles > 0
    if mode is CommitMode.OOO_WB:
        # WB hides invalidations instead of squashing.
        assert result.counter("core.consistency_squashes") == 0
