"""Differential fuzzing: simulator outcomes ⊆ operational x86-TSO.

``random_shared_program`` draws small racy programs (2-3 threads, a
handful of loads/stores/test-and-sets over 3 shared locations); each is
lowered both onto the cycle-level simulator (across commit modes and
timing skews) and onto the operational reference machine of
:mod:`repro.consistency.operational`.  Every register valuation the
simulator commits must be reachable by the reference — otherwise the
microarchitecture leaked a non-TSO reordering.

Unlike the Hypothesis battery in ``test_random_programs.py`` (which
checks the *axiomatic* witness of one execution), this compares against
the enumerated *architectural* outcome set, so it would catch a bug
where simulator and checker share a wrong assumption.

Battery size: ~200 programs tier-1 (seconds), scaled up under
``--slow``; ``REPRO_FUZZ_COUNT`` overrides (CI smoke uses 40).
Failures replay by seed alone.

The battery runs once per registered coherence backend (enumerated
from the registry, so a new backend joins automatically): the tardis
leg replays the same seeds on timestamp coherence (no OOO_WB mode —
leases stand in for invalidations), the rcp leg on reversible
coherence (speculative acquisitions rolled back by conflicting
writes), proving their reorderings stay inside x86-TSO too.
"""

import os

import pytest

from repro.coherence.backend import backend_names, get_backend
from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.operational import ld as o_ld
from repro.consistency.operational import outcome_reachable
from repro.consistency.operational import rmw as o_rmw
from repro.consistency.operational import st as o_st
from repro.sim.system import MulticoreSystem
from repro.workloads.generators import random_shared_program
from repro.workloads.trace import AddressSpace, TraceBuilder

MODES = (CommitMode.IN_ORDER, CommitMode.OOO, CommitMode.OOO_WB)


def _modes_for(backend):
    """The commit-mode rotation for one backend (capability-gated:
    tardis and rcp have no WritersBlock, hence no OOO_WB)."""
    supported = get_backend(backend).supported_commit_modes
    if supported is None:
        return MODES
    return tuple(mode for mode in MODES if mode in supported)


BACKEND_MODES = {name: _modes_for(name) for name in backend_names()}
DELAY_MENU = ((0, 0, 0), (0, 40, 0), (40, 0, 20), (15, 0, 55))


def default_count():
    return int(os.environ.get("REPRO_FUZZ_COUNT", "200"))


def to_operational(program):
    lowered = []
    for ops in program:
        thread = []
        for kind, loc, payload in ops:
            if kind == "ld":
                thread.append(o_ld(loc, payload))
            elif kind == "st":
                thread.append(o_st(loc, payload))
            else:  # tas: old value into reg, memory becomes 1
                thread.append(o_rmw(loc, payload, 1))
        lowered.append(thread)
    return lowered


def run_on_simulator(program, mode, delays, backend="baseline"):
    space = AddressSpace()
    addr = {}
    out_regs = []
    traces = []
    for tid, ops in enumerate(program):
        t = TraceBuilder()
        if delays[tid % len(delays)]:
            t.compute(latency=delays[tid % len(delays)])
        for kind, loc, payload in ops:
            if loc not in addr:
                addr[loc] = space.new_var(loc)
            if kind == "ld":
                reg = t.reg()
                t.load(reg, addr[loc])
                out_regs.append((tid, reg, f"t{tid}:{payload}"))
            elif kind == "st":
                t.store(addr[loc], payload)
            else:
                reg = t.reg()
                t.tas(reg, addr[loc])
                out_regs.append((tid, reg, f"t{tid}:{payload}"))
        traces.append(t.build())
    params = table6_system("SLM", num_cores=4, commit_mode=mode,
                           backend=backend)
    system = MulticoreSystem(params)
    system.load_program(traces)
    system.run()
    return {name: system.cores[tid].reg_values.get(reg, 0)
            for tid, reg, name in out_regs}


def check_seed(seed, backend="baseline"):
    """One fuzz case: a program, checked across modes and skews."""
    num_threads = 2 + seed % 2
    program = random_shared_program(seed, num_threads=num_threads)
    reference = to_operational(program)
    modes = BACKEND_MODES[backend]
    mode = modes[seed % len(modes)]
    delays = DELAY_MENU[(seed // len(modes)) % len(DELAY_MENU)]
    observed = run_on_simulator(program, mode, delays, backend)
    assert outcome_reachable(reference, observed), (
        f"seed {seed}: {program} under {mode.value} ({backend}) delays "
        f"{delays} produced {observed}, which x86-TSO cannot reach")


BATCHES = 8


@pytest.mark.parametrize("backend", backend_names())
@pytest.mark.parametrize("batch", range(BATCHES))
def test_differential_fuzz_battery(batch, backend, slow):
    """Seeded battery, split into batches so failures localize."""
    count = default_count() * (10 if slow else 1)
    lo = batch * count // BATCHES
    hi = (batch + 1) * count // BATCHES
    for seed in range(lo, hi):
        check_seed(seed, backend)


def test_known_racy_seed_is_admissible():
    """Pin one seed whose program races on a single line (regression
    anchor: its shape exercises tas + store + load on one location)."""
    check_seed(7)


def test_tardis_regression_seed_107():
    """Seed 107 once leaked a load bound from a superseded lease
    (advance-then-bind ordering); keep it pinned on the tardis leg."""
    check_seed(107, "tardis")


def test_rcp_regression_seed_49():
    """Seed 49 under OOO is the most reversal-heavy program in the
    tier-1 range (five speculative acquisitions rolled back under
    racing test-and-sets); keep it pinned on the rcp leg so the
    squash-on-reversal ordering stays inside x86-TSO."""
    check_seed(49, "rcp")
