"""Property-based cross-mode fuzzing.

Hypothesis generates small random multi-threaded programs (mixed loads,
stores, ALU ops, atomics over a handful of shared lines — including
false sharing) and every protected commit mode must produce a TSO-clean
execution.  This is the broadest net for protocol/core interaction bugs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.params import table6_system
from repro.common.types import CommitMode
from repro.consistency.tso_checker import check_tso
from repro.sim.system import MulticoreSystem
from repro.workloads.trace import AddressSpace, TraceBuilder

NUM_THREADS = 4
ADDRS = 6  # small shared footprint maximizes racing


def op_strategy():
    return st.tuples(
        st.sampled_from(["ld", "st", "alu", "at", "slow_ld"]),
        st.integers(0, ADDRS - 1),  # which shared location
        st.integers(0, 63),  # value / latency salt
    )


program_strategy = st.lists(
    st.lists(op_strategy(), min_size=1, max_size=12),
    min_size=NUM_THREADS, max_size=NUM_THREADS,
)


def build_traces(program):
    space = AddressSpace()
    # 6 locations over 3 lines: adjacent pairs false-share a line.
    addrs = []
    for i in range(0, ADDRS, 2):
        base = space.new_var(f"v{i}")
        addrs.append(base)
        addrs.append(base + 8)
    traces = []
    for thread in program:
        t = TraceBuilder()
        for kind, which, salt in thread:
            addr = addrs[which]
            if kind == "ld":
                t.load(t.reg(), addr)
            elif kind == "slow_ld":
                gate = t.reg()
                t.gate(gate, srcs=(), latency=20 + salt)
                t.load(t.reg(), addr, addr_reg=gate)
            elif kind == "st":
                t.store(addr, salt + 1)
            elif kind == "at":
                t.faa(t.reg(), addr, 1)
            else:
                t.compute(latency=1 + salt % 5)
        traces.append(t.build())
    return traces


@pytest.mark.parametrize("mode", [CommitMode.IN_ORDER, CommitMode.OOO,
                                  CommitMode.OOO_WB])
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_random_programs_are_tso_clean(mode, program):
    params = table6_system("SLM", num_cores=NUM_THREADS, commit_mode=mode)
    system = MulticoreSystem(params)
    system.load_program(build_traces(program))
    result = system.run()
    check_tso(result.log)
    # Sanity: every committed store eventually performed (drained SBs).
    for version, info in result.log.stores.items():
        co = result.log.coherence_order.get(info.addr, [])
        committed_versions = {e.version_written for e in result.log.events
                              if e.version_written is not None}
        if version in committed_versions:
            assert version in co


@pytest.mark.parametrize("core_type,wb", [("inorder", False),
                                          ("inorder", True),
                                          ("inorder-ecl", True)])
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_random_programs_tso_clean_on_inorder_cores(core_type, wb, program):
    """The stall-on-use in-order core (with and without ECL) must also
    stay TSO-clean on arbitrary programs."""
    import dataclasses

    params = table6_system("SLM", num_cores=NUM_THREADS)
    params = dataclasses.replace(params, core_type=core_type,
                                 writers_block=wb)
    system = MulticoreSystem(params)
    system.load_program(build_traces(program))
    result = system.run()
    check_tso(result.log)


def test_tearoff_to_owner_is_bounced_not_served_stale():
    """Regression: an SoS-bypass uncacheable GetS can reach the
    directory after ownership of the line was granted to the requester
    itself (the fresh data travels 3-hop, past the directory).  The
    directory's parked copy is stale at that point and must NOT be
    served as a tear-off; the read is bounced and replays locally.

    Hypothesis-discovered program (inorder-ecl, WritersBlock on): the
    stale tear-off let core 1's post-atomic ordered load read version 0
    of a location already at version 1, breaking the TSO global order.
    """
    import dataclasses

    program = [
        [("ld", 0, 0)],
        [("ld", 4, 0), ("ld", 0, 0), ("at", 4, 0), ("ld", 0, 0),
         ("st", 0, 0)],
        [("ld", 4, 0)],
        [("ld", 4, 0), ("st", 0, 0), ("st", 4, 0)],
    ]
    params = table6_system("SLM", num_cores=NUM_THREADS)
    params = dataclasses.replace(params, core_type="inorder-ecl",
                                 writers_block=True)
    system = MulticoreSystem(params)
    system.load_program(build_traces(program))
    result = system.run()
    check_tso(result.log)
